//! # dataflower-repro
//!
//! Umbrella crate of the DataFlower reproduction workspace. It re-exports
//! the member crates under stable names and hosts the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start with [`core`] (the DataFlower engine), [`workloads`] (the four
//! paper benchmarks and experiment harness) and [`rt`] (the live FLU/DLU
//! runtime). See `README.md` for the map of the workspace and
//! `EXPERIMENTS.md` for reproduced-figure results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dataflower as core;
pub use dataflower_baselines as baselines;
pub use dataflower_cluster as cluster;
pub use dataflower_metrics as metrics;
pub use dataflower_rt as rt;
pub use dataflower_sim as sim;
pub use dataflower_workflow as workflow;
pub use dataflower_workloads as workloads;
