//! Fault tolerance (§6.2): interrupt a function's data plane mid-request
//! and watch the engine ReDo it from the pipe connector's last
//! checkpoint.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use std::sync::Arc;

use dataflower::{CheckpointSchedule, DataFlowerConfig, DataFlowerEngine};
use dataflower_cluster::{run_to_idle, ClusterConfig, SpreadPlacement, World};
use dataflower_sim::SimTime;
use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder, MB};

fn main() {
    // A three-stage pipeline moving a few MB per hop.
    let mut b = WorkflowBuilder::new("etl");
    let extract = b.function("extract", WorkModel::fixed(0.02));
    let transform = b.function("transform", WorkModel::fixed(0.05));
    let load = b.function("load", WorkModel::fixed(0.02));
    b.client_input(extract, "rows", SizeModel::Fixed(4.0 * MB));
    b.edge(extract, transform, "parsed", SizeModel::ScaleOfInput(1.0));
    b.edge(transform, load, "clean", SizeModel::ScaleOfInput(0.8));
    b.client_output(load, "ack", SizeModel::Fixed(256.0));
    let wf = Arc::new(b.build().expect("valid workflow"));

    // Checkpoint math: a 3.2 MB transfer interrupted halfway re-sends
    // only the tail past the last 256 KiB checkpoint.
    let cp = CheckpointSchedule::default();
    let total = 0.8 * 4.0 * MB;
    let interrupted_at = total * 0.5;
    println!(
        "checkpointing: {:.1} KiB interval; a {:.2} MB transfer failing at 50% re-sends {:.2} MB",
        cp.interval_bytes() / 1024.0,
        total / MB,
        cp.resume_bytes(total, interrupted_at) / MB,
    );

    // Clean run for reference.
    let clean = {
        let mut world = World::new(ClusterConfig::default());
        let id = world.add_workflow(Arc::clone(&wf));
        world.submit_request(id, 4.0 * MB, SimTime::ZERO);
        let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
        run_to_idle(&mut world, &mut engine)
            .primary()
            .latency
            .mean()
    };

    // Faulted run: transform's data plane is interrupted once.
    let mut world = World::new(ClusterConfig::default());
    let id = world.add_workflow(Arc::clone(&wf));
    let req = world.submit_request(id, 4.0 * MB, SimTime::ZERO);
    let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
    engine.inject_fault(
        req,
        wf.function_by_name("transform").expect("transform exists"),
    );
    let report = run_to_idle(&mut world, &mut engine);

    println!("clean   latency: {clean:.3} s");
    println!(
        "faulted latency: {:.3} s (ReDo count: {})",
        report.primary().latency.mean(),
        engine.redo_count()
    );
    // The engine's fault timeline mirrors the live runtime's recovery
    // counters: one Fault event when the injected fault hit, one Redo
    // when the invocation was re-queued, in simulated-time order.
    for (at, ev) in engine.fault_timeline() {
        println!("  t={:.3}s  {ev:?}", at.as_secs_f64());
    }
    assert_eq!(report.primary().completed, 1, "request must still complete");
    assert_eq!(engine.redo_count(), 1);
    assert_eq!(engine.fault_timeline().len(), 2, "one fault, one redo");
    assert!(report.primary().latency.mean() > clean);
    println!("request completed despite the fault — at-least-once semantics hold");
}
