//! Pressure-aware elastic scaling on the live runtime (§5.2, Eq. 1): a
//! burst of WordCount requests backs the DLUs up behind a shaped fabric,
//! the autoscaler grows the FLU pools, and the drained pools shrink back
//! — with every output validated byte-for-byte against a straight-line
//! reference.
//!
//! ```text
//! cargo run --release --example elastic_scaling
//! ```

use dataflower_metrics::{fmt_f, Table};
use dataflower_workloads::{Benchmark, BurstyClusterConfig, Scenario, SkewedFanoutConfig};

fn main() {
    let cfg = BurstyClusterConfig::default();
    let auto = &cfg.rt.autoscale;
    println!(
        "bursty_cluster: {} warm-up + {} burst requests of {} KiB on {} nodes",
        cfg.base_requests,
        cfg.burst_requests,
        cfg.payload_bytes / 1024,
        cfg.nodes,
    );
    println!(
        "autoscaler: {}..{} replicas, threshold {:.1} ms, cooldown {:?}, drain estimate {:.0} MiB/s\n",
        auto.min_replicas,
        auto.max_replicas,
        auto.pressure_threshold_secs * 1e3,
        auto.cooldown,
        auto.drain_bw_bytes_per_sec / (1024.0 * 1024.0),
    );

    let report = Scenario::bursty_cluster(Benchmark::Wc, &cfg);
    println!(
        "completed {} requests in {:.0} ms ({} scale-outs, {} scale-ins, peak {} replicas)\n",
        report.requests,
        report.elapsed.as_secs_f64() * 1e3,
        report.scale_outs(),
        report.scale_ins(),
        report.peak_replicas(),
    );

    let mut t = Table::new(vec![
        "t (ms)",
        "function",
        "node",
        "event",
        "pool",
        "pressure (ms)",
    ]);
    for ev in &report.events {
        t.row(vec![
            fmt_f(ev.at.as_secs_f64() * 1e3, 1),
            ev.function.clone(),
            ev.node.to_string(),
            format!("{:?}", ev.direction),
            format!("{} -> {}", ev.from_replicas, ev.to_replicas),
            fmt_f(ev.pressure_secs * 1e3, 2),
        ]);
    }
    println!("scaling timeline:\n{}", t.render());

    let end = report.elapsed.as_secs_f64();
    println!(
        "replica series (integral = replica-seconds over the run):\n{}",
        report.timeline.summary_table(end).render()
    );

    let skew = Scenario::skewed_fanout(&SkewedFanoutConfig::default());
    println!(
        "skewed_fanout: {} requests over {} Zipf-skewed branches, {} KiB out, \
         {} scale-outs — outputs byte-identical to the reference",
        skew.requests,
        SkewedFanoutConfig::default().branches,
        skew.output_bytes / 1024,
        skew.scale_outs(),
    );
}
