//! Pressure-aware elastic scaling on the live runtime (§5.2, Eq. 1): a
//! burst of WordCount requests backs the DLUs up behind a shaped fabric,
//! the autoscaler grows the FLU pools, and the drained pools shrink back
//! — with every output validated byte-for-byte against a straight-line
//! reference.
//!
//! ```text
//! cargo run --release --example elastic_scaling
//! ```

use dataflower_metrics::{fmt_f, Table};
use dataflower_workloads::{
    Benchmark, BurstyClusterConfig, ReportDetail, SkewedFanoutConfig, WorkloadSpec,
};

fn main() {
    let cfg = BurstyClusterConfig::default();
    let auto = &cfg.rt.autoscale;
    println!(
        "bursty_cluster: {} warm-up + {} burst requests of {} KiB on {} nodes",
        cfg.base_requests,
        cfg.burst_requests,
        cfg.payload_bytes / 1024,
        cfg.nodes,
    );
    println!(
        "autoscaler: {}..{} replicas, threshold {:.1} ms, cooldown {:?}, drain estimate {:.0} MiB/s\n",
        auto.min_replicas,
        auto.max_replicas,
        auto.pressure_threshold_secs * 1e3,
        auto.cooldown,
        auto.drain_bw_bytes_per_sec / (1024.0 * 1024.0),
    );

    let report = WorkloadSpec::new()
        .benchmark(Benchmark::Wc)
        .nodes(cfg.nodes)
        .warmup(cfg.base_requests)
        .requests(cfg.burst_requests)
        .payload_bytes(cfg.payload_bytes)
        .settle(cfg.settle)
        .run();
    let ReportDetail::Elastic { events, timeline } = &report.detail else {
        unreachable!("a warmed-up run reports the elastic detail");
    };
    let peak_replicas = timeline
        .keys()
        .map(|k| timeline.max_value(k) as usize)
        .max()
        .unwrap_or(0);
    println!(
        "completed {} requests in {:.0} ms ({} scale-outs, {} scale-ins, peak {} replicas)\n",
        report.requests,
        report.elapsed.as_secs_f64() * 1e3,
        report.stats.scale_out_events,
        report.stats.scale_in_events,
        peak_replicas,
    );

    let mut t = Table::new(vec![
        "t (ms)",
        "function",
        "node",
        "event",
        "pool",
        "pressure (ms)",
    ]);
    for ev in events {
        t.row(vec![
            fmt_f(ev.at.as_secs_f64() * 1e3, 1),
            ev.function.clone(),
            ev.node.to_string(),
            format!("{:?}", ev.direction),
            format!("{} -> {}", ev.from_replicas, ev.to_replicas),
            fmt_f(ev.pressure_secs * 1e3, 2),
        ]);
    }
    println!("scaling timeline:\n{}", t.render());

    let end = report.elapsed.as_secs_f64();
    println!(
        "replica series (integral = replica-seconds over the run):\n{}",
        timeline.summary_table(end).render()
    );

    let skew_cfg = SkewedFanoutConfig::default();
    let skew = WorkloadSpec::new()
        .skewed_fanout(skew_cfg.branches, skew_cfg.zipf_exponent)
        .nodes(skew_cfg.nodes)
        .requests(skew_cfg.requests)
        .payload_bytes(skew_cfg.payload_bytes)
        .run();
    println!(
        "skewed_fanout: {} requests over {} Zipf-skewed branches, {} KiB out, \
         {} scale-outs — outputs byte-identical to the reference",
        skew.requests,
        skew_cfg.branches,
        skew.output_bytes / 1024,
        skew.stats.scale_out_events,
    );
}
