//! Bursty-load behaviour (§9.5 / Fig. 15): WordCount jumps from 10 rpm to
//! 100 rpm; compare the latency distributions of the three systems.
//!
//! ```text
//! cargo run --release --example bursty_load
//! ```

use dataflower_metrics::{fmt_f, Table};
use dataflower_workloads::{Benchmark, Scenario, SystemKind};

fn main() {
    let b = Benchmark::Wc;
    println!(
        "bursty load: {} at 10 rpm for 60 s, then 100 rpm for 60 s\n",
        b.name()
    );

    let mut t = Table::new(vec![
        "system", "n", "mean (s)", "p50", "p90", "p99", "sigma",
    ]);
    for sys in SystemKind::HEADLINE {
        let scenario = Scenario::seeded(777);
        let report = scenario.bursty(sys, b.workflow(), b.default_payload(), 10.0, 100.0);
        let lat = &report.primary().latency;
        t.row(vec![
            sys.label().into(),
            lat.len().to_string(),
            fmt_f(lat.mean(), 3),
            fmt_f(lat.p50(), 3),
            fmt_f(lat.percentile(0.90), 3),
            fmt_f(lat.p99(), 3),
            fmt_f(lat.std_dev(), 3),
        ]);
    }
    println!("{}", t.render());
    println!("CDF deciles (DataFlower):");
    let scenario = Scenario::seeded(777);
    let report = scenario.bursty(
        SystemKind::DataFlower,
        b.workflow(),
        b.default_payload(),
        10.0,
        100.0,
    );
    for k in 1..=9 {
        let q = k as f64 / 10.0;
        println!(
            "  p{:>2.0}  {:.3} s",
            q * 100.0,
            report.primary().latency.percentile(q)
        );
    }
}
