//! Quickstart: define a workflow by its data flows, run it on the
//! DataFlower engine over the simulated cluster, and inspect the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use dataflower::{DataFlowerConfig, DataFlowerEngine};
use dataflower_cluster::{run_to_idle, ClusterConfig, SpreadPlacement, World};
use dataflower_sim::SimTime;
use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder, WorkflowSpec, MB};

fn main() {
    // 1. Declare the workflow: a thumbnailing pipeline with a fan-out.
    //    Every edge is a *data* dependency — the data-flow graph is the
    //    program (paper Fig. 7).
    let mut b = WorkflowBuilder::new("thumbnails");
    let decode = b.function("decode", WorkModel::new(0.02, 0.01));
    let small = b.function("resize_small", WorkModel::new(0.01, 0.02));
    let large = b.function("resize_large", WorkModel::new(0.01, 0.03));
    let pack = b.function("pack", WorkModel::new(0.01, 0.005));
    b.client_input(decode, "image", SizeModel::Fixed(2.0 * MB));
    b.edge(decode, small, "bitmap", SizeModel::ScaleOfInput(0.8));
    b.edge(decode, large, "bitmap", SizeModel::ScaleOfInput(0.8));
    b.edge(small, pack, "thumb_s", SizeModel::ScaleOfInput(0.05));
    b.edge(large, pack, "thumb_l", SizeModel::ScaleOfInput(0.2));
    b.client_output(pack, "bundle", SizeModel::ScaleOfInput(0.3));
    let wf = Arc::new(b.build().expect("valid workflow"));

    // The definition round-trips through the on-disk spec language.
    let spec = WorkflowSpec::from_workflow(&wf);
    println!("--- workflow spec (JSON) ---\n{}\n", spec.to_json());

    // 2. Build a world (3 workers + storage/broker node, paper §9.1
    //    defaults) and submit a few requests.
    let mut world = World::new(ClusterConfig::default());
    let id = world.add_workflow(Arc::clone(&wf));
    for i in 0..5 {
        world.submit_request(id, 2.0 * MB, SimTime::from_secs(2 * i));
    }

    // 3. Run the DataFlower engine to completion.
    let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
    let report = run_to_idle(&mut world, &mut engine);

    let stats = report.primary();
    println!("--- run report ---");
    println!("engine:            {}", report.engine);
    println!(
        "completed:         {}/{}",
        stats.completed,
        stats.completed + stats.unfinished
    );
    println!("mean latency:      {:.3} s", stats.latency.mean());
    println!("p99 latency:       {:.3} s", stats.latency.p99());
    println!("memory cost:       {:.2} GB*s", report.memory_gb_s);
    println!("cold starts:       {}", report.cold_starts);
    println!("pressure blocks:   {}", engine.pressure_block_count());
    assert_eq!(stats.completed, 5);
}
