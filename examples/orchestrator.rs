//! The orchestrator control plane on the **live** runtime: keep-alive
//! heartbeats, permanent node loss healed by relocation, and a
//! voluntary live migration — all invisible in the outputs.
//!
//! A three-stage fan-out pipeline runs across three nodes. First a hot
//! function is live-migrated to the least-pressured node mid-stream;
//! then node 1 is crashed **permanently** and the controller thread
//! detects the heartbeat silence, relocates its functions to the
//! survivors, re-patches the links and replays the in-flight transfers
//! from the last acked checkpoint marks.
//!
//! ```text
//! cargo run --release --example orchestrator
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use dataflower_repro::rt::{ByLevel, Bytes, ClusterConfig, ClusterRuntimeBuilder, LinkConfig};
use dataflower_repro::workflow::{SizeModel, WorkModel, WorkflowBuilder, MB};

/// The fan-out width of the demo pipeline.
const FAN: usize = 4;

fn main() {
    // split --shard--> relay_i --echo--> join --out--> client
    let mut b = WorkflowBuilder::new("orchestrated-echo");
    let split = b.function("split", WorkModel::fixed(0.001));
    let join = b.function("join", WorkModel::fixed(0.001));
    b.client_input(split, "in", SizeModel::Fixed(1.0 * MB));
    for i in 0..FAN {
        let relay = b.function(format!("relay_{i}"), WorkModel::fixed(0.001));
        b.edge(
            split,
            relay,
            "shard",
            SizeModel::ScaleOfInput(1.0 / FAN as f64),
        );
        b.edge(relay, join, "echo", SizeModel::ScaleOfInput(1.0));
    }
    b.client_output(join, "out", SizeModel::ScaleOfInput(1.0));
    let wf = Arc::new(b.build().expect("valid workflow"));

    // The orchestrator knobs live in the same fluent builder as the
    // data-plane tuning: 10 ms heartbeats, loss declared after 3 missed
    // beats, §6.2 recovery so mid-stream transfers survive the moves.
    let cfg = ClusterConfig::new()
        .chunk_bytes(16 * 1024)
        .checkpoint_interval_bytes(64 * 1024)
        .link(LinkConfig {
            // Slow links so the kill reliably lands mid-stream.
            bandwidth_bytes_per_sec: Some(16.0 * 1024.0 * 1024.0),
            ..LinkConfig::default()
        })
        .recovery(Duration::from_millis(50))
        .heartbeat(Duration::from_millis(10), 3)
        .build();

    let mut builder = ClusterRuntimeBuilder::new(Arc::clone(&wf))
        .policy(ByLevel, 3)
        .config(cfg)
        .register("split", |ctx| {
            let data = ctx.input("in").expect("client payload").clone();
            let shard = data.len() / FAN;
            for i in 0..FAN {
                let lo = i * shard;
                let hi = if i + 1 == FAN { data.len() } else { lo + shard };
                ctx.put_to("shard", format!("relay_{i}"), data.slice(lo..hi));
            }
        });
    for i in 0..FAN {
        builder = builder.register(format!("relay_{i}"), |ctx| {
            let shard = ctx.input("shard").expect("shard").clone();
            ctx.put("echo", shard);
        });
    }
    let rt = builder
        .register("join", |ctx| {
            let out: Vec<u8> = ctx
                .inputs_named("echo")
                .into_iter()
                .flat_map(|b| b.iter().copied())
                .collect();
            ctx.put("out", Bytes::from(out));
        })
        .start()
        .expect("bodies cover the DAG");

    let payload: Vec<u8> = (0..1024 * 1024u32).map(|i| (i * 31 % 251) as u8).collect();

    // Act 1 — voluntary live migration: move `relay_0` to the node the
    // pressure gauges call least loaded, while its shard is in flight.
    let req = rt.invoke(vec![("in".into(), Bytes::from(payload.clone()))]);
    let to = rt.least_pressured_node();
    rt.migrate_function("relay_0", to)
        .expect("migrate a known function to a live node");
    let outputs = rt.wait(req, Duration::from_secs(30)).expect("migrated run");
    assert_eq!(&*outputs[0].1, &payload[..], "migration must be invisible");
    println!(
        "live migration: relay_0 -> node {to} mid-stream, output byte-identical ({} KiB)",
        outputs[0].1.len() / 1024,
    );

    // Act 2 — permanent node loss: kill node 1 mid-stream and never
    // bring it back. The controller declares the loss after the missed
    // beats and relocates; the request still completes byte-identically.
    let req = rt.invoke(vec![("in".into(), Bytes::from(payload.clone()))]);
    let deadline = Instant::now() + Duration::from_secs(10);
    while rt.node(1).inflight_transfers() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(200));
    }
    rt.crash_node(1);
    println!("node 1 crashed permanently; waiting for the heartbeat detector...");
    let outputs = rt
        .wait(req, Duration::from_secs(30))
        .expect("relocated run");
    assert_eq!(&*outputs[0].1, &payload[..], "relocation must be invisible");

    let stats = rt.stats();
    println!(
        "node loss healed: {} heartbeat(s), {} miss(es), {} loss declared, \
         {} function(s) relocated, {} transfer(s) replayed",
        stats.heartbeats,
        stats.heartbeat_misses,
        stats.node_losses,
        stats.relocated_functions,
        stats.recovered_transfers,
    );
    assert!(stats.node_losses >= 1);
    assert!(stats.relocated_functions > 0);
    rt.shutdown();
    println!("orchestrator control plane: both moves invisible in the outputs");
}
