//! Checkpoint-based crash recovery on the **live** runtime (§6.2): crash
//! a node while a multi-megabyte transfer streams into it, restart it,
//! and watch the stream resume from the last acknowledged checkpoint
//! mark — not from byte 0 — with the output byte-identical.
//!
//! ```text
//! cargo run --release --example checkpoint_recovery
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use dataflower_repro::rt::{Bytes, ClusterConfig, ClusterRuntimeBuilder, LinkConfig, Placement};
use dataflower_repro::workflow::{SizeModel, WorkModel, WorkflowBuilder, MB};

fn main() {
    // A two-stage pipeline: `pack` on node 0 streams ~2 MiB to `digest`
    // on node 1 through the chunked remote pipe.
    let mut b = WorkflowBuilder::new("etl-live");
    let pack = b.function("pack", WorkModel::fixed(0.001));
    let digest = b.function("digest", WorkModel::fixed(0.001));
    b.client_input(pack, "rows", SizeModel::Fixed(2.0 * MB));
    b.edge(pack, digest, "packed", SizeModel::ScaleOfInput(1.0));
    b.client_output(digest, "sum", SizeModel::Fixed(64.0));
    let wf = Arc::new(b.build().expect("valid workflow"));

    let cfg = ClusterConfig::new()
        .chunk_bytes(16 * 1024)
        .checkpoint_interval_bytes(64 * 1024)
        .link(LinkConfig {
            // Slow the link so the crash reliably lands mid-stream.
            bandwidth_bytes_per_sec: Some(8.0 * 1024.0 * 1024.0),
            ..LinkConfig::default()
        })
        .recovery(Duration::from_millis(200))
        .build();
    let rt = ClusterRuntimeBuilder::new(Arc::clone(&wf))
        .placement(
            Placement::with_nodes(2)
                .assign("pack", 0)
                .assign("digest", 1),
        )
        .config(cfg)
        .register("pack", |ctx| {
            let rows = ctx.input("rows").expect("client rows").clone();
            ctx.put("packed", rows); // zero-copy hand-off to the DLU
        })
        .register("digest", |ctx| {
            let packed = ctx.input("packed").expect("packed stream");
            let mut h = 0xcbf29ce484222325u64;
            for b in packed.iter() {
                h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
            }
            ctx.put("sum", Bytes::from(format!("{h:016x}")));
        })
        .start()
        .expect("bodies cover the DAG");

    let rows: Vec<u8> = (0..2 * 1024 * 1024u32)
        .map(|i| (i * 31 % 251) as u8)
        .collect();
    let req = rt.invoke(vec![("rows".into(), Bytes::from(rows))]);

    // Crash node 1 once the stream is past at least one checkpoint mark.
    let deadline = Instant::now() + Duration::from_secs(10);
    let crash = loop {
        assert!(Instant::now() < deadline, "stream never got going");
        if rt.node(1).inflight_transfers() > 0 && rt.stats().acked_marks > 0 {
            let report = rt.crash_node(1);
            if report.was_up && report.inflight_transfers > 0 && report.durable_bytes > 0 {
                break report;
            }
            rt.restart_node(1);
        }
        std::thread::sleep(Duration::from_micros(200));
    };
    println!(
        "crashed node 1 mid-stream: {} in-flight transfer(s), {} KiB durable below the marks",
        crash.inflight_transfers,
        crash.durable_bytes / 1024,
    );
    std::thread::sleep(Duration::from_millis(20)); // the outage: frames die here
    rt.restart_node(1);

    let outputs = rt.wait(req, Duration::from_secs(30)).expect("recovered");
    let stats = rt.stats();
    println!("digest arrived: {}", String::from_utf8_lossy(&outputs[0].1));
    println!(
        "recovery: {} transfer(s) replayed, {} KiB re-sent, {} KiB skipped (below acked marks), \
         {} frame(s) lost in the outage, {} checkpoint marks acked",
        stats.recovered_transfers,
        stats.replayed_bytes / 1024,
        stats.resumed_from_mark_bytes / 1024,
        stats.frames_lost_to_crashes,
        stats.acked_marks,
    );
    assert!(stats.recovered_transfers > 0);
    assert!(
        stats.resumed_from_mark_bytes > 0,
        "recovery must resume from the mark, not byte 0"
    );
    rt.shutdown();
    println!("single-node crash survived; output byte-identical — §6.2 holds in the live runtime");
}
