//! Head-to-head paradigm comparison on one benchmark: run WordCount under
//! DataFlower, FaaSFlow and SONIC at the same load and contrast latency,
//! throughput and memory cost — a miniature of the paper's Figs. 10/11.
//!
//! ```text
//! cargo run --release --example paradigm_comparison
//! ```

use dataflower_metrics::{fmt_f, Table};
use dataflower_workloads::{Benchmark, Scenario, SystemKind};

fn main() {
    let b = Benchmark::Wc;
    println!(
        "benchmark: {} (payload {:.1} MB, open loop 60 rpm for 60 s, then closed loop 8 clients)",
        b.name(),
        b.default_payload() / (1024.0 * 1024.0)
    );

    let mut t = Table::new(vec![
        "system",
        "mean lat (s)",
        "p99 lat (s)",
        "memory (GB*s)",
        "throughput (rpm)",
    ]);
    for sys in SystemKind::HEADLINE {
        let scenario = Scenario::seeded(2024);
        let open = scenario.open_loop(sys, b.workflow(), b.default_payload(), 60.0, 60);
        let closed = scenario.closed_loop(sys, b.workflow(), b.default_payload(), 8, 120);
        let stats = open.primary();
        assert!(stats.completed > 0, "{sys} completed nothing");
        t.row(vec![
            sys.label().into(),
            fmt_f(stats.latency.mean(), 3),
            fmt_f(stats.latency.p99(), 3),
            fmt_f(open.memory_gb_s, 1),
            fmt_f(closed.primary().throughput_rpm, 1),
        ]);
    }
    println!("{}", t.render());
    println!("(DataFlower should lead on every column — see EXPERIMENTS.md)");
}
