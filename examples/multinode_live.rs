//! The four paper benchmarks (§9.1) executed **live on a three-node
//! topology**: real threads per node, real bytes over the inter-node
//! fabric, and the paper's three-way pipe selection (§7) deciding every
//! transfer — direct socket under 16 KiB, local pipe when co-located,
//! chunked streaming remote pipe across nodes.
//!
//! ```text
//! cargo run --release --example multinode_live
//! ```

use dataflower_workloads::{Benchmark, LivePlacement, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new()
        .nodes(3)
        .placement(LivePlacement::ByLevel)
        .requests(2)
        .payload_bytes(256 * 1024);

    println!("topology: one node per workflow level (spread placement)");
    println!();
    println!("  [node 0]  ══ fabric ══▶  [node 1]  ══ fabric ══▶  [node 2]");
    println!("  sources                  workers                  sinks");
    println!();
    println!(
        "{:<6} {:>9} {:>8} {:>8} {:>8} {:>8} {:>7} {:>10}",
        "bench", "elapsed", "direct", "local", "remote", "chunks", "ckpts", "bytes-x-node"
    );

    for bench in Benchmark::ALL {
        let report = spec.clone().benchmark(bench).run();
        let s = &report.stats;
        println!(
            "{:<6} {:>7.1?} {:>8} {:>8} {:>8} {:>8} {:>7} {:>10}",
            bench.name(),
            report.elapsed,
            s.direct_socket_transfers,
            s.local_pipe_transfers,
            s.remote_pipe_transfers,
            s.remote_chunks,
            s.remote_checkpoints,
            s.remote_bytes,
        );
        assert!(
            s.remote_pipe_transfers > 0,
            "{bench}: spread placement should stream through the remote pipe"
        );
    }

    println!();
    println!("every run validated byte-for-byte against a straight-line reference");
}
