//! The wordcount benchmark executed as a **multi-process TCP cluster**:
//! this binary re-executes itself once per node, every fabric link is a
//! real localhost `TcpStream` speaking the versioned wire format, and
//! the §6.2 recovery protocol (checkpoint acks, sender retention)
//! guards every chunked transfer.
//!
//! ```text
//! cargo run --release --example socket_cluster -- --nodes 3 --transport tcp --bench wc
//! ```
//!
//! `--transport inproc` runs the same benchmark on the in-process
//! fabric for comparison; `--bench` accepts `wc`, `vid`, `svd`, `img`.

use std::process::exit;

use dataflower_rt::Bytes;
use dataflower_workloads::{
    bench_input, launch_bench_cluster, serve_worker_if_spawned, Benchmark, LivePlacement,
    TcpProfile, WorkloadSpec,
};

fn main() {
    // Worker processes of the TCP cluster enter here and never return.
    serve_worker_if_spawned();

    let mut nodes = 3usize;
    let mut transport = "tcp".to_owned();
    let mut bench = Benchmark::Wc;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--nodes needs a number"));
            }
            "--transport" => {
                transport = args
                    .next()
                    .unwrap_or_else(|| usage("--transport needs tcp|inproc"));
            }
            "--bench" => {
                bench = match args.next().as_deref() {
                    Some("wc") => Benchmark::Wc,
                    Some("vid") => Benchmark::Vid,
                    Some("svd") => Benchmark::Svd,
                    Some("img") => Benchmark::Img,
                    _ => usage("--bench accepts wc|vid|svd|img"),
                };
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    match transport.as_str() {
        "tcp" => run_tcp(bench, nodes),
        "inproc" => run_inproc(bench, nodes),
        _ => usage("--transport accepts tcp|inproc"),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: socket_cluster [--nodes N] [--transport tcp|inproc] [--bench wc|vid|svd|img]"
    );
    exit(2);
}

fn run_tcp(bench: Benchmark, nodes: usize) {
    println!("launching {nodes} worker processes over localhost TCP …");
    let cluster =
        launch_bench_cluster(bench, nodes, 0, TcpProfile::Plain).expect("launch TCP cluster");
    let (input_name, input) = bench_input(bench, 64 * 1024);
    let req = cluster.invoke(vec![(input_name.to_owned(), Bytes::from(input))]);
    let outputs = cluster
        .wait(req, std::time::Duration::from_secs(60))
        .expect("TCP cluster request");
    let stats = cluster.stats();
    println!(
        "{bench} over tcp: {} output bytes from {} node processes",
        outputs.iter().map(|(_, b)| b.len()).sum::<usize>(),
        cluster.node_count(),
    );
    println!(
        "  remote transfers {} · chunks {} · checkpoint acks {}",
        stats.remote_pipe_transfers, stats.remote_chunks, stats.acked_marks,
    );
    assert!(
        stats.remote_pipe_transfers > 0,
        "spread placement should stream over the sockets"
    );
    cluster.shutdown();
    println!("cluster shut down cleanly");
}

fn run_inproc(bench: Benchmark, nodes: usize) {
    let report = WorkloadSpec::new()
        .benchmark(bench)
        .nodes(nodes)
        .placement(LivePlacement::ByLevel)
        .requests(1)
        .payload_bytes(64 * 1024)
        .run();
    println!(
        "{bench} in-process: {:?} elapsed, {} remote transfers",
        report.elapsed, report.stats.remote_pipe_transfers,
    );
}
