//! A **real** WordCount on the live FLU/DLU runtime: actual text, actual
//! counting, actual threads — the paper's Fig. 7 running example,
//! executed rather than simulated.
//!
//! ```text
//! cargo run --example wordcount_live
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dataflower_rt::{Bytes, RuntimeBuilder};
use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};

const FAN_OUT: usize = 4;

fn main() {
    // The same workflow definition language the simulator uses.
    let mut b = WorkflowBuilder::new("wordcount");
    let start = b.function("wc_start", WorkModel::fixed(0.001));
    let merge = b.function("wc_merge", WorkModel::fixed(0.001));
    b.client_input(start, "text", SizeModel::Fixed(1.0));
    for i in 0..FAN_OUT {
        let count = b.function(format!("wc_count_{i}"), WorkModel::fixed(0.001));
        b.edge(
            start,
            count,
            "file",
            SizeModel::ScaleOfInput(1.0 / FAN_OUT as f64),
        );
        b.edge(count, merge, "counts", SizeModel::ScaleOfInput(0.3));
    }
    b.client_output(merge, "output", SizeModel::Fixed(1.0));
    let wf = Arc::new(b.build().expect("valid workflow"));

    // FLU bodies: start splits, counts count, merge folds.
    let mut builder = RuntimeBuilder::new(Arc::clone(&wf)).register("wc_start", |ctx| {
        let text = String::from_utf8_lossy(ctx.input("text").expect("client text")).into_owned();
        let words: Vec<&str> = text.split_whitespace().collect();
        let shard = words.len().div_ceil(FAN_OUT);
        for i in 0..FAN_OUT {
            let lo = (i * shard).min(words.len());
            let hi = ((i + 1) * shard).min(words.len());
            // Mid-function DLU.Put: branch i's data flows while the
            // remaining shards are still being cut.
            ctx.put_to(
                "file",
                format!("wc_count_{i}"),
                Bytes::from(words[lo..hi].join(" ").into_bytes()),
            );
        }
    });
    for i in 0..FAN_OUT {
        builder = builder.register(format!("wc_count_{i}"), |ctx| {
            let shard = String::from_utf8_lossy(ctx.input("file").expect("shard")).into_owned();
            let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
            for w in shard.split_whitespace() {
                *counts.entry(w).or_default() += 1;
            }
            let table = counts
                .iter()
                .map(|(w, c)| format!("{w}\t{c}"))
                .collect::<Vec<_>>()
                .join("\n");
            ctx.put("counts", Bytes::from(table.into_bytes()));
        });
    }
    let rt = builder
        .register("wc_merge", |ctx| {
            let mut total: BTreeMap<String, u64> = BTreeMap::new();
            for payload in ctx.inputs_named("counts") {
                for line in String::from_utf8_lossy(payload).lines() {
                    let (w, c) = line.split_once('\t').expect("w\\tc");
                    *total.entry(w.to_owned()).or_default() += c.parse::<u64>().expect("count");
                }
            }
            let mut rows: Vec<(String, u64)> = total.into_iter().collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let out = rows
                .iter()
                .map(|(w, c)| format!("{w}\t{c}"))
                .collect::<Vec<_>>()
                .join("\n");
            ctx.put("output", Bytes::from(out.into_bytes()));
        })
        .start()
        .expect("all functions registered");

    // Generate a deterministic corpus: Zipf-ish word frequencies.
    let vocab = [
        "serverless",
        "workflow",
        "dataflow",
        "function",
        "container",
        "latency",
        "throughput",
        "pipe",
        "sink",
        "engine",
    ];
    let mut corpus = String::new();
    for i in 0..20_000u64 {
        let idx = (i * 2654435761 % 100) as usize;
        let word = vocab[idx.min(99) * vocab.len() / 100];
        corpus.push_str(word);
        corpus.push(' ');
    }

    let t0 = Instant::now();
    let req = rt.invoke(vec![("text".into(), Bytes::from(corpus.into_bytes()))]);
    let outputs = rt
        .wait(req, Duration::from_secs(30))
        .expect("wordcount completes");
    let elapsed = t0.elapsed();

    let table = String::from_utf8_lossy(&outputs[0].1).into_owned();
    println!("top words:");
    for line in table.lines().take(5) {
        println!("  {line}");
    }
    let total: u64 = table
        .lines()
        .map(|l| l.rsplit('\t').next().unwrap().parse::<u64>().unwrap())
        .sum();
    println!("total words: {total}");
    println!("wall time:   {elapsed:?}");
    let stats = rt.stats();
    println!(
        "invocations: {}  puts: {}  deliveries: {}",
        stats.invocations, stats.puts, stats.deliveries
    );
    assert_eq!(total, 20_000);
    rt.shutdown();
}
