//! Property-based tests of the core data structures and invariants.
//!
//! Uses an in-tree property harness instead of an external framework:
//! [`Gen`] draws structured random inputs from the workspace's own
//! deterministic [`SimRng`], [`check`] runs [`cases`] seeded cases per
//! property, and a failing case prints its seed so the exact input can be
//! replayed with `Gen::new(seed)`.

use std::panic::AssertUnwindSafe;

use dataflower::{CheckpointSchedule, WaitMatchMemory};
use dataflower_cluster::RequestId;
use dataflower_metrics::{Samples, StepIntegral};
use dataflower_sim::{EventQueue, FlowNet, SimRng, SimTime};
use dataflower_workflow::{EdgeId, FnId, SizeModel, WorkModel, WorkflowBuilder, WorkflowSpec};

/// Seeded cases run per property; overridable via the `PROP_CASES`
/// environment variable (the weekly CI drift job runs 256).
fn cases() -> u64 {
    std::env::var("PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// A deterministic generator of structured random test inputs.
struct Gen {
    rng: SimRng,
}

impl Gen {
    /// Creates the generator for one case; re-create with a printed seed
    /// to replay a failure exactly.
    fn new(seed: u64) -> Gen {
        Gen {
            rng: SimRng::seed_from(seed),
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform(lo, hi)
    }

    /// Uniform `usize` in `[lo, hi)`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.rng.index(hi - lo)
    }

    /// Uniform `u64` in `[lo, hi)`.
    fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.rng.index((hi - lo) as usize) as u64
    }

    /// A vector of `[min_len, max_len)` elements drawn by `item`.
    fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut item: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| item(self)).collect()
    }
}

/// Runs `body` for [`cases`] deterministic seeds; on a panic, prints the
/// property name and the seed that reproduces it, then re-raises.
fn check(property: &str, body: impl Fn(&mut Gen)) {
    let cases = cases();
    for case in 0..cases {
        // Distinct stream per (property, case): FNV-1a over the name,
        // mixed with the case index.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in property.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let seed = seed.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut g = Gen::new(seed);
        if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(|| body(&mut g))) {
            eprintln!(
                "property `{property}` failed on case {case}/{cases} with seed {seed}; \
                 replay with Gen::new({seed})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// FlowNet conserves bytes: every started flow eventually completes
/// carrying exactly the bytes it was given, and completion times are
/// non-decreasing.
#[test]
fn flownet_conserves_bytes() {
    check("flownet_conserves_bytes", |g| {
        let caps = g.vec(1, 4, |g| g.f64_in(1.0, 1e6));
        let flows = g.vec(1, 20, |g| {
            (g.usize_in(0, 4), g.f64_in(1.0, 1e6), g.u64_in(0, 5_000_000))
        });
        let mut net = FlowNet::new();
        let links: Vec<_> = caps.iter().map(|c| net.add_link(*c)).collect();
        let mut expected = Vec::new();
        for (tag, (li, bytes, start_us)) in flows.iter().enumerate() {
            let path = [links[li % links.len()]];
            net.start_flow(SimTime::from_micros(*start_us), &path, *bytes, tag as u64);
            expected.push(*bytes);
        }
        let done = net.advance(SimTime::from_secs(1_000_000));
        assert_eq!(done.len(), expected.len());
        for c in &done {
            let exp = expected[c.tag as usize];
            assert!((c.bytes - exp).abs() < 1e-6);
            assert!(c.at >= c.started);
        }
        // Completions are reported in time order.
        assert!(done.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(net.active_flows(), 0);
    });
}

/// Flow rates never exceed any traversed link's capacity.
#[test]
fn flownet_respects_capacities() {
    check("flownet_respects_capacities", |g| {
        let cap = g.f64_in(1.0, 1e5);
        let n = g.usize_in(1, 10);
        let mut net = FlowNet::new();
        let l = net.add_link(cap);
        let flows: Vec<_> = (0..n)
            .map(|i| net.start_flow(SimTime::ZERO, &[l], 1e6, i as u64))
            .collect();
        let total: f64 = flows.iter().filter_map(|f| net.flow_rate(*f)).sum();
        assert!(total <= cap * (1.0 + 1e-9), "total {total} > cap {cap}");
        // Fair share: all equal.
        for f in &flows {
            assert!((net.flow_rate(*f).unwrap() - cap / n as f64).abs() < 1e-6);
        }
    });
}

/// Percentiles are monotone in q, bounded by min/max, and the CDF ends
/// at 1.
#[test]
fn samples_percentiles_are_sound() {
    check("samples_percentiles_are_sound", |g| {
        let values = g.vec(1, 200, |g| g.f64_in(0.0, 1e9));
        let q1 = g.f64_in(0.0, 1.0);
        let q2 = g.f64_in(0.0, 1.0);
        let s: Samples = values.iter().copied().collect();
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        assert!(s.percentile(lo) <= s.percentile(hi) + 1e-9);
        assert!(s.percentile(0.0) >= s.min() - 1e-9);
        assert!(s.percentile(1.0) <= s.max() + 1e-9);
        assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
        let cdf = s.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    });
}

/// A step integral equals the sum of per-interval areas.
#[test]
fn step_integral_matches_manual_sum() {
    check("step_integral_matches_manual_sum", |g| {
        let steps = g.vec(1, 30, |g| (g.f64_in(0.0, 100.0), g.f64_in(0.0, 50.0)));
        let mut times: Vec<f64> = steps.iter().map(|(dt, _)| *dt).collect();
        // Build a monotone timeline from the deltas.
        let mut t = 0.0;
        for dt in &mut times {
            t += *dt;
            *dt = t;
        }
        let end = t + 1.0;
        let mut m = StepIntegral::new();
        let mut manual = 0.0;
        let mut last_t = 0.0;
        let mut last_v = 0.0;
        for (i, (_, v)) in steps.iter().enumerate() {
            let at = times[i];
            manual += last_v * (at - last_t);
            m.set(at, *v);
            last_t = at;
            last_v = *v;
        }
        manual += last_v * (end - last_t);
        assert!((m.finish(end) - manual).abs() < 1e-6);
    });
}

/// Checkpoint resume never loses data and never re-sends more than one
/// interval past the untransferred remainder.
#[test]
fn checkpoint_resume_is_bounded() {
    check("checkpoint_resume_is_bounded", |g| {
        let interval = g.f64_in(1.0, 1e6);
        let total = g.f64_in(0.0, 1e8);
        let progress = g.f64_in(0.0, 1.2);
        let cp = CheckpointSchedule::new(interval);
        let transferred = total * progress;
        let resume = cp.resume_bytes(total, transferred);
        let remainder = (total - transferred).max(0.0);
        assert!(
            resume + 1e-9 >= remainder,
            "resume {resume} < remainder {remainder}"
        );
        assert!(resume <= remainder + interval + 1e-9);
        assert!(resume <= total + 1e-9);
    });
}

/// The Wait-Match memory's accounting equals the sum of its entries under
/// arbitrary insert/spill/take interleavings.
#[test]
fn wait_match_accounting_is_exact() {
    check("wait_match_accounting_is_exact", |g| {
        let ops = g.vec(1, 60, |g| {
            (
                g.usize_in(0, 3) as u8,
                g.usize_in(0, 4),
                g.usize_in(0, 4),
                g.usize_in(0, 4),
                g.f64_in(1.0, 1e6),
            )
        });
        let mut sink = WaitMatchMemory::new();
        let mut model: std::collections::HashMap<(usize, usize, usize), (f64, bool)> =
            std::collections::HashMap::new();
        for (op, r, f, e, bytes) in ops {
            let (req, func, edge) = (
                RequestId::from_index(r),
                FnId::from_index(f),
                EdgeId::from_index(e),
            );
            match op {
                0 => {
                    sink.insert(req, func, edge, bytes, SimTime::ZERO);
                    model.insert((r, f, e), (bytes, false));
                }
                1 => {
                    sink.spill(req, func, edge);
                    if let Some(entry) = model.get_mut(&(r, f, e)) {
                        entry.1 = true;
                    }
                }
                _ => {
                    sink.take_inputs(req, func);
                    model.retain(|(mr, mf, _), _| !(*mr == r && *mf == f));
                }
            }
            let mem: f64 = model.values().filter(|(_, d)| !d).map(|(b, _)| b).sum();
            let disk: f64 = model.values().filter(|(_, d)| *d).map(|(b, _)| b).sum();
            assert!((sink.resident_memory_bytes() - mem).abs() < 1e-6);
            assert!((sink.resident_disk_bytes() - disk).abs() < 1e-6);
            assert_eq!(sink.len(), model.len());
        }
    });
}

/// Random fan-out/fan-in workflows always validate, their topological
/// order respects every edge, and their spec round-trips through JSON.
#[test]
fn random_workflows_validate_and_roundtrip() {
    check("random_workflows_validate_and_roundtrip", |g| {
        let layers = g.vec(1, 5, |g| g.usize_in(1, 5));
        let seed = g.u64_in(0, 1000);
        let mut b = WorkflowBuilder::new("random");
        let mut prev_layer: Vec<_> = Vec::new();
        let mut rng = seed;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        for (li, width) in layers.iter().enumerate() {
            let layer: Vec<_> = (0..*width)
                .map(|k| b.function(format!("f{li}_{k}"), WorkModel::fixed(0.01)))
                .collect();
            for (k, f) in layer.iter().enumerate() {
                if prev_layer.is_empty() {
                    b.client_input(*f, format!("in{k}"), SizeModel::Fixed(1024.0));
                } else {
                    // At least one upstream edge, possibly more.
                    let p = prev_layer[next() as usize % prev_layer.len()];
                    b.edge(p, *f, format!("d{li}_{k}"), SizeModel::ScaleOfInput(0.5));
                    if next() % 2 == 0 {
                        let p2 = prev_layer[next() as usize % prev_layer.len()];
                        if p2 != p {
                            b.edge(p2, *f, format!("e{li}_{k}"), SizeModel::Fixed(64.0));
                        }
                    }
                }
            }
            // Every layer's functions need an output; give stragglers a
            // client output (also makes terminals legal).
            for f in &layer {
                b.client_output(*f, "out", SizeModel::Fixed(8.0));
            }
            prev_layer = layer;
        }
        let wf = b.build().expect("layered DAGs are always valid");
        // Topo order respects edges.
        let pos: std::collections::HashMap<_, _> = wf
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, f)| (*f, i))
            .collect();
        for e in wf.edges() {
            if let (
                dataflower_workflow::Endpoint::Function(s),
                dataflower_workflow::Endpoint::Function(t),
            ) = (e.source, e.target)
            {
                assert!(pos[&s] < pos[&t]);
            }
        }
        // Spec JSON round-trip is semantically lossless: compiling the
        // spec and re-extracting it reaches a canonical fixed point
        // (edge declaration order is grouped per producer, so raw
        // workflow equality is not preserved — spec equality is).
        let spec = WorkflowSpec::from_workflow(&wf);
        let back = WorkflowSpec::from_json(&spec.to_json())
            .unwrap()
            .compile()
            .unwrap();
        assert_eq!(&spec, &WorkflowSpec::from_workflow(&back));
        assert_eq!(wf.function_count(), back.function_count());
        assert_eq!(wf.edges().len(), back.edges().len());
    });
}

/// Event queue pops in non-decreasing time order with FIFO ties, for
/// arbitrary schedules.
#[test]
fn event_queue_total_order() {
    check("event_queue_total_order", |g| {
        let times = g.vec(1, 100, |g| g.u64_in(0, 1_000));
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt);
                if t == lt {
                    assert!(i > li, "FIFO violated for equal timestamps");
                }
            }
            last = Some((t, i));
        }
    });
}

/// Remote-pipe chunking reassembles byte-identical payloads for
/// arbitrary payload/chunk sizes, even when chunks land out of order.
#[test]
fn remote_chunking_reassembles_byte_identical() {
    use dataflower_rt::{chunk_spans, Reassembler};
    check("remote_chunking_reassembles_byte_identical", |g| {
        let len = g.usize_in(0, 120_000);
        let chunk = g.usize_in(1, 70_000);
        let mut seed = g.u64_in(1, u64::MAX - 1);
        let payload: Vec<u8> = (0..len)
            .map(|_| {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (seed >> 33) as u8
            })
            .collect();
        let mut spans = chunk_spans(len, chunk);
        // Spans are contiguous, ordered and cover the payload exactly;
        // an empty payload yields no spans at all (it ships as a single
        // direct frame, never an empty chunk).
        if len == 0 {
            assert!(spans.is_empty());
            let r = Reassembler::new(0);
            assert!(r.complete());
            assert!(r.into_bytes().is_empty());
            return;
        }
        assert_eq!(spans.first().unwrap().0, 0);
        assert_eq!(spans.last().unwrap().1, len);
        for w in spans.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        // Shuffle the arrival order (Fisher-Yates on the generator).
        for i in (1..spans.len()).rev() {
            spans.swap(i, g.usize_in(0, i + 1));
        }
        let mut r = Reassembler::new(len);
        for (i, (lo, hi)) in spans.iter().enumerate() {
            if i + 1 < spans.len() && len > 0 {
                assert!(!r.complete() || *lo == *hi || spans.len() == 1);
            }
            assert!(r.write(*lo, &payload[*lo..*hi]), "in-bounds write refused");
        }
        assert!(r.complete());
        assert_eq!(&*r.into_bytes(), &payload[..]);
    });
}

/// The multi-node fabric neither loses nor duplicates payloads under
/// random placements: a fan-out/echo/fan-in workflow returns the client
/// payload byte-identical for any assignment of functions to nodes, any
/// chunk size, and any direct-socket threshold, and the transfer
/// counters account for every inter-function edge exactly once.
#[test]
fn multinode_fabric_loses_nothing_under_random_placements() {
    use dataflower_rt::{Bytes, ClusterRtConfig, ClusterRuntimeBuilder, Placement, RtConfig};
    check(
        "multinode_fabric_loses_nothing_under_random_placements",
        |g| {
            let fan = g.usize_in(1, 5);
            let nodes = g.usize_in(1, 4);
            let len = g.usize_in(0, 60_000);
            let chunk_bytes = g.usize_in(256, 4096);
            // Sometimes force even tiny payloads through the remote pipe.
            let threshold = if g.usize_in(0, 2) == 0 { 1 } else { 16 * 1024 };
            let mut seed = g.u64_in(1, u64::MAX - 1);
            let payload: Vec<u8> = (0..len)
                .map(|_| {
                    seed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (seed >> 33) as u8
                })
                .collect();

            // start --shard--> relay_i --echo--> merge --out--> client
            let mut b = WorkflowBuilder::new("echo");
            let start = b.function("start", WorkModel::fixed(0.001));
            let merge = b.function("merge", WorkModel::fixed(0.001));
            b.client_input(start, "in", SizeModel::Fixed(1024.0));
            for i in 0..fan {
                let relay = b.function(format!("relay_{i}"), WorkModel::fixed(0.001));
                b.edge(start, relay, "shard", SizeModel::Fixed(256.0));
                b.edge(relay, merge, "echo", SizeModel::Fixed(256.0));
            }
            b.client_output(merge, "out", SizeModel::Fixed(256.0));
            let wf = std::sync::Arc::new(b.build().unwrap());

            let mut placement = Placement::with_nodes(nodes);
            for f in wf.function_ids() {
                placement = placement.assign(wf.function(f).name.clone(), g.usize_in(0, nodes));
            }

            let fan_c = fan;
            let mut builder = ClusterRuntimeBuilder::new(std::sync::Arc::clone(&wf))
                .placement(placement)
                .config(ClusterRtConfig {
                    rt: RtConfig {
                        dlu_queue_capacity: g.usize_in(1, 8),
                        ..RtConfig::default()
                    },
                    direct_threshold_bytes: threshold,
                    chunk_bytes,
                    ..ClusterRtConfig::default()
                })
                .register("start", move |ctx| {
                    let data = ctx.input("in").expect("client payload").clone();
                    let base = data.len() / fan_c;
                    let extra = data.len() % fan_c;
                    let mut lo = 0;
                    for i in 0..fan_c {
                        let hi = lo + base + usize::from(i < extra);
                        ctx.put_to(
                            "shard",
                            format!("relay_{i}"),
                            Bytes::copy_from_slice(&data[lo..hi]),
                        );
                        lo = hi;
                    }
                });
            for i in 0..fan {
                builder = builder.register(format!("relay_{i}"), |ctx| {
                    let shard = ctx.input("shard").expect("shard").clone();
                    ctx.put("echo", shard);
                });
            }
            let rt = builder
                .register("merge", |ctx| {
                    // Producer-ordered fan-in: relay_0..relay_N concatenate
                    // back into the original payload.
                    let out: Vec<u8> = ctx
                        .inputs_named("echo")
                        .into_iter()
                        .flat_map(|b| b.iter().copied())
                        .collect();
                    ctx.put("out", Bytes::from(out));
                })
                .start()
                .unwrap();

            let req = rt.invoke(vec![("in".into(), Bytes::from(payload.clone()))]);
            let outputs = rt
                .wait(req, std::time::Duration::from_secs(30))
                .expect("echo workflow completes");
            assert_eq!(outputs.len(), 1);
            assert_eq!(
                &*outputs[0].1,
                &payload[..],
                "payload lost, duplicated or reordered in transit"
            );

            let stats = rt.stats();
            assert_eq!(stats.invocations, fan as u64 + 2);
            assert_eq!(stats.deliveries, 2 * fan as u64 + 1);
            assert_eq!(
                stats.inter_function_transfers(),
                2 * fan as u64,
                "each inter-function edge must be shipped exactly once"
            );
            rt.shutdown();
        },
    );
}

/// The autoscaler's decision kernel keeps every pool inside
/// `[min, max]`: starting anywhere (even out of bounds), applying its
/// decisions converges into the range and never leaves it again, for
/// arbitrary pressure trajectories, thresholds and cool-downs.
#[test]
fn autoscaler_replicas_stay_within_bounds() {
    use dataflower_rt::{AutoscaleConfig, ScaleDirection, ScalePolicy};
    check("autoscaler_replicas_stay_within_bounds", |g| {
        let min = g.usize_in(1, 4);
        let max = min + g.usize_in(0, 4);
        let cfg = AutoscaleConfig {
            enabled: true,
            min_replicas: min,
            max_replicas: max,
            pressure_threshold_secs: g.f64_in(0.0, 0.1),
            cooldown: std::time::Duration::from_secs_f64(g.f64_in(0.0, 0.05)),
            ..AutoscaleConfig::default()
        };
        let mut policy = ScalePolicy::new(&cfg);
        let mut replicas = g.usize_in(0, 10); // possibly out of bounds
        let mut in_bounds = (min..=max).contains(&replicas);
        let mut now = 0.0;
        for _ in 0..300 {
            now += g.f64_in(0.0, 0.02);
            let pressure = g.f64_in(-0.05, 0.2);
            match policy.decide(now, pressure, replicas) {
                Some(ScaleDirection::Out) => replicas += 1,
                Some(ScaleDirection::In) => {
                    assert!(replicas > 0, "scale-in from an empty pool");
                    replicas -= 1;
                }
                None => {}
            }
            if in_bounds {
                assert!(
                    (min..=max).contains(&replicas),
                    "pool left [{min}, {max}]: {replicas}"
                );
            }
            in_bounds = in_bounds || (min..=max).contains(&replicas);
        }
        assert!(
            (min..=max).contains(&replicas),
            "bounds repair never converged: {replicas} not in [{min}, {max}]"
        );
    });
}

/// A monotone pressure ramp eventually crosses the threshold and the
/// policy scales out, whatever the threshold and cool-down.
#[test]
fn autoscaler_monotone_pressure_ramp_triggers_scale_out() {
    use dataflower_rt::{AutoscaleConfig, ScaleDirection, ScalePolicy};
    check(
        "autoscaler_monotone_pressure_ramp_triggers_scale_out",
        |g| {
            let threshold = g.f64_in(0.001, 0.1);
            let cfg = AutoscaleConfig {
                enabled: true,
                min_replicas: 1,
                max_replicas: 1 + g.usize_in(1, 5),
                pressure_threshold_secs: threshold,
                cooldown: std::time::Duration::from_secs_f64(g.f64_in(0.0, 0.01)),
                ..AutoscaleConfig::default()
            };
            let mut policy = ScalePolicy::new(&cfg);
            let mut pressure = -threshold;
            let mut now = 0.0;
            let mut scaled_out = false;
            for _ in 0..500 {
                now += 0.02; // every step clears the (≤ 10 ms) cool-down
                pressure += g.f64_in(threshold / 10.0, threshold / 2.0); // monotone ramp
                if policy.decide(now, pressure, 1) == Some(ScaleDirection::Out) {
                    scaled_out = true;
                    break;
                }
            }
            assert!(scaled_out, "ramp past the threshold must trigger scale-out");
        },
    );
}

/// Elastic scaling never corrupts data: the fan-out/echo/fan-in workflow
/// returns the client payload byte-identical — and invokes each function
/// exactly once per request — under random autoscale knobs, placements
/// and payloads, however many scale events fire mid-run.
#[test]
fn live_outputs_byte_identical_under_random_scaling() {
    use dataflower_rt::{
        AutoscaleConfig, Bytes, ClusterRtConfig, ClusterRuntimeBuilder, LoadAware, PlacementPolicy,
        RtConfig,
    };
    check("live_outputs_byte_identical_under_random_scaling", |g| {
        let fan = g.usize_in(1, 4);
        let nodes = g.usize_in(1, 4);
        let len = g.usize_in(0, 40_000);
        let requests = g.usize_in(1, 4);
        let mut seed = g.u64_in(1, u64::MAX - 1);
        let payload: Vec<u8> = (0..len)
            .map(|_| {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (seed >> 33) as u8
            })
            .collect();

        let mut b = WorkflowBuilder::new("echo");
        let start = b.function("start", WorkModel::fixed(0.001));
        let merge = b.function("merge", WorkModel::fixed(0.001));
        b.client_input(start, "in", SizeModel::Fixed(1024.0));
        for i in 0..fan {
            let relay = b.function(format!("relay_{i}"), WorkModel::fixed(0.001));
            b.edge(start, relay, "shard", SizeModel::Fixed(256.0));
            b.edge(relay, merge, "echo", SizeModel::Fixed(256.0));
        }
        b.client_output(merge, "out", SizeModel::Fixed(256.0));
        let wf = std::sync::Arc::new(b.build().unwrap());

        let max_replicas = 1 + g.usize_in(0, 3);
        let autoscale = AutoscaleConfig {
            enabled: true,
            min_replicas: 1,
            max_replicas,
            // Sometimes a zero threshold: any queued byte triggers.
            pressure_threshold_secs: g.f64_in(0.0, 0.005),
            drain_bw_bytes_per_sec: g.f64_in(1e5, 1e7),
            cooldown: std::time::Duration::from_secs_f64(g.f64_in(0.0, 0.01)),
            sample_interval: std::time::Duration::from_micros(g.u64_in(200, 2_000)),
            ..AutoscaleConfig::default()
        };

        let fan_c = fan;
        let mut builder = ClusterRuntimeBuilder::new(std::sync::Arc::clone(&wf))
            .placement(LoadAware::idle().initial(&wf, nodes))
            .config(ClusterRtConfig {
                rt: RtConfig {
                    dlu_queue_capacity: g.usize_in(1, 8),
                    ..RtConfig::default()
                },
                chunk_bytes: g.usize_in(256, 4096),
                autoscale,
                ..ClusterRtConfig::default()
            })
            .register("start", move |ctx| {
                let data = ctx.input("in").expect("client payload").clone();
                let base = data.len() / fan_c;
                let extra = data.len() % fan_c;
                let mut lo = 0;
                for i in 0..fan_c {
                    let hi = lo + base + usize::from(i < extra);
                    ctx.put_to(
                        "shard",
                        format!("relay_{i}"),
                        Bytes::copy_from_slice(&data[lo..hi]),
                    );
                    lo = hi;
                }
            });
        for i in 0..fan {
            builder = builder.register(format!("relay_{i}"), |ctx| {
                let shard = ctx.input("shard").expect("shard").clone();
                ctx.put("echo", shard);
            });
        }
        let rt = builder
            .register("merge", |ctx| {
                let out: Vec<u8> = ctx
                    .inputs_named("echo")
                    .into_iter()
                    .flat_map(|b| b.iter().copied())
                    .collect();
                ctx.put("out", Bytes::from(out));
            })
            .start()
            .unwrap();

        let reqs: Vec<_> = (0..requests)
            .map(|_| rt.invoke(vec![("in".into(), Bytes::from(payload.clone()))]))
            .collect();
        for req in reqs {
            let outputs = rt
                .wait(req, std::time::Duration::from_secs(30))
                .expect("echo workflow completes under scaling");
            assert_eq!(outputs.len(), 1);
            assert_eq!(
                &*outputs[0].1,
                &payload[..],
                "payload corrupted while the pool was scaling"
            );
        }

        let stats = rt.stats();
        assert_eq!(
            stats.invocations,
            (requests * (fan + 2)) as u64,
            "scaling must not duplicate or drop invocations"
        );
        for f in wf.function_ids() {
            let name = &wf.function(f).name;
            let replicas = rt.replicas_of(name).unwrap();
            assert!(
                (1..=max_replicas).contains(&replicas),
                "{name} pool outside [1, {max_replicas}]: {replicas}"
            );
        }
        rt.shutdown();
    });
}

/// `Bytes::slice` views are byte-identical to the ranges they name:
/// cutting a payload at random points and rejoining the slices
/// reproduces the original, views keep the parent allocation alive after
/// the parent drops, and out-of-range slices panic predictably instead
/// of reading garbage.
#[test]
fn bytes_slice_rejoins_byte_identical() {
    use dataflower_rt::Bytes;
    check("bytes_slice_rejoins_byte_identical", |g| {
        let len = g.usize_in(0, 8_192);
        let payload: Vec<u8> = (0..len).map(|_| g.u64_in(0, 256) as u8).collect();
        let b = Bytes::from(payload.clone());

        // Random ascending cut points over [0, len].
        let mut cuts: Vec<usize> = g.vec(0, 8, |g| g.usize_in(0, len + 1));
        cuts.push(0);
        cuts.push(len);
        cuts.sort_unstable();
        let slices: Vec<Bytes> = cuts.windows(2).map(|w| b.slice(w[0]..w[1])).collect();

        // Slicing is zero-copy: every non-empty view aliases the parent.
        for (w, s) in cuts.windows(2).zip(&slices) {
            if !s.is_empty() {
                assert!(std::ptr::eq(s.as_ref(), &b.as_ref()[w[0]..w[1]]));
            }
        }

        // Rejoining the slices is byte-identical to the original, and
        // the views keep the allocation alive once the parent is gone.
        drop(b);
        let rejoined: Vec<u8> = slices.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(rejoined, payload, "slice+rejoin must be byte-identical");

        // Out-of-range slices panic predictably.
        if len > 0 {
            let b = Bytes::from(payload);
            let start = g.usize_in(0, len);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                b.slice(start..len + 1 + g.usize_in(0, 64))
            }));
            assert!(result.is_err(), "over-long slice must panic");
        }
    });
}

/// The lock-striped sink neither loses nor duplicates entries: random
/// (often stripe-colliding) request ids inserted and taken by concurrent
/// producers all come back exactly once, and janitor-style sweeps
/// running concurrently with takes expire each surviving entry at most
/// once.
#[test]
fn sharded_sink_insert_take_is_exact_under_collisions() {
    use dataflower_rt::ShardedSink;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    check("sharded_sink_insert_take_is_exact_under_collisions", |g| {
        let stripes = 1 << g.usize_in(0, 6); // 1..=32: includes single-lock
        let threads = g.usize_in(2, 5);
        let per_thread = g.usize_in(50, 300);
        // A coarse id stride forces stripe collisions across threads.
        let stride = g.u64_in(1, 64);
        let sink: Arc<ShardedSink<u64>> = Arc::new(ShardedSink::new(stripes));
        let taken = Arc::new(AtomicU64::new(0));
        let expired = Arc::new(AtomicU64::new(0));

        let workers: Vec<_> = (0..threads as u64)
            .map(|t| {
                let sink = Arc::clone(&sink);
                let taken = Arc::clone(&taken);
                std::thread::spawn(move || {
                    for i in 0..per_thread as u64 {
                        // Distinct per thread, but striding over the same
                        // stripe set as every other thread.
                        let key = (i * stride) * threads as u64 + t;
                        assert!(sink.insert(key, key ^ 0xabcd).is_none(), "dup insert");
                        if i % 3 != 0 {
                            // Take it right back: must be present, once,
                            // intact modulo the sweeper's expiry bit.
                            let got = sink.remove(key).expect("entry lost");
                            assert_eq!(got & !(1 << 63), key ^ 0xabcd);
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        // Concurrent janitor-style sweeper: marks entries expired by
        // flipping a bit; flips each entry at most once.
        let sweeper = {
            let sink = Arc::clone(&sink);
            let expired = Arc::clone(&expired);
            std::thread::spawn(move || {
                for _ in 0..4 {
                    sink.for_each_mut(|_, v| {
                        if *v & (1 << 63) == 0 {
                            *v |= 1 << 63;
                            expired.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                    std::thread::yield_now();
                }
            })
        };
        for w in workers {
            w.join().expect("sink worker");
        }
        sweeper.join().expect("sweeper");

        // Every entry not taken by its producer is still parked, exactly
        // once, with its value intact modulo the expiry bit.
        let total = (threads * per_thread) as u64;
        let left = sink.fold(0u64, |acc, k, v| {
            assert_eq!(*v & !(1 << 63), k ^ 0xabcd, "entry corrupted");
            acc + 1
        });
        assert_eq!(
            taken.load(Ordering::Relaxed) + left,
            total,
            "entries lost or duplicated across stripes"
        );
        assert_eq!(sink.len() as u64, left);
        // The sweeper expired only surviving entries, each at most once.
        assert!(expired.load(Ordering::Relaxed) <= total);
    });
}

/// Checkpoint recovery keeps the live runtime lossless and exactly-once
/// under a random seeded `FaultPlan` — dropped, duplicated and delayed
/// fabric frames plus a mid-flight single-node kill and restart — for
/// **every** placement policy: the client payload comes back
/// byte-identical and every function still runs exactly once per
/// request (recovery replays transfers, never invocations).
#[test]
fn chaos_recovery_is_byte_identical_and_exactly_once_for_every_placement() {
    use std::time::Duration;

    use dataflower_rt::{
        ByLevel, Bytes, ClusterRtConfig, ClusterRuntimeBuilder, FaultPlan, LinkConfig, LoadAware,
        PlacementPolicy, RecoveryConfig, RoundRobin, RtConfig, SingleNode,
    };

    check(
        "chaos_recovery_is_byte_identical_and_exactly_once_for_every_placement",
        |g| {
            let fan = g.usize_in(2, 5);
            let nodes = g.usize_in(2, 4);
            let len = g.usize_in(4_000, 40_000);
            let mut seed = g.u64_in(1, u64::MAX - 1);
            let payload: Vec<u8> = (0..len)
                .map(|_| {
                    seed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (seed >> 33) as u8
                })
                .collect();

            // start --shard--> relay_i --echo--> merge --out--> client
            let mut b = WorkflowBuilder::new("chaos-echo");
            let start = b.function("start", WorkModel::fixed(0.001));
            let merge = b.function("merge", WorkModel::fixed(0.001));
            b.client_input(start, "in", SizeModel::Fixed(1024.0));
            for i in 0..fan {
                let relay = b.function(format!("relay_{i}"), WorkModel::fixed(0.001));
                b.edge(start, relay, "shard", SizeModel::Fixed(256.0));
                b.edge(relay, merge, "echo", SizeModel::Fixed(256.0));
            }
            b.client_output(merge, "out", SizeModel::Fixed(256.0));
            let wf = std::sync::Arc::new(b.build().unwrap());

            // A seeded chaos plan: frame drops/dups/delays plus one node
            // killed at a random logical event and restarted by the
            // recovery daemon after a short outage. (On the single-node
            // placement no fabric frames flow, so the plan is inert —
            // byte-identity must hold regardless.)
            let victim = g.usize_in(0, nodes);
            let faults = FaultPlan::seeded(g.u64_in(0, u64::MAX))
                .frame_chaos(g.f64_in(0.0, 0.06), g.f64_in(0.0, 0.06))
                .delay_frames(g.f64_in(0.0, 0.03), Duration::from_micros(300))
                .kill_node(
                    victim,
                    g.u64_in(1, 50),
                    Duration::from_millis(g.u64_in(1, 6)),
                );
            let cfg = ClusterRtConfig {
                rt: RtConfig {
                    dlu_queue_capacity: g.usize_in(1, 8),
                    ..RtConfig::default()
                },
                // Force even tiny shards through the chunked remote pipe
                // with marks every few chunks.
                direct_threshold_bytes: 1,
                chunk_bytes: g.usize_in(256, 2048),
                checkpoint_interval_bytes: g.usize_in(1024, 4096),
                link: LinkConfig {
                    queue_capacity: g.usize_in(2, 64),
                    ..LinkConfig::default()
                },
                recovery: RecoveryConfig {
                    enabled: true,
                    retransmit_timeout: Duration::from_millis(20),
                },
                faults,
                ..ClusterRtConfig::default()
            };

            // Every placement policy, same workflow, same chaos plan.
            let policies: [&dyn PlacementPolicy; 4] =
                [&SingleNode, &RoundRobin, &ByLevel, &LoadAware::idle()];
            let placements = policies.map(|p| p.initial(&wf, nodes));
            for placement in placements {
                // single_node() has one node; clamp the victim kill so
                // the plan stays valid for it.
                let mut cfg = cfg.clone();
                if placement.node_count() <= victim {
                    for kill in &mut cfg.faults.kills {
                        kill.node = 0;
                    }
                }
                let fan_c = fan;
                let mut builder = ClusterRuntimeBuilder::new(std::sync::Arc::clone(&wf))
                    .placement(placement)
                    .config(cfg)
                    .register("start", move |ctx| {
                        let data = ctx.input("in").expect("client payload").clone();
                        let base = data.len() / fan_c;
                        let extra = data.len() % fan_c;
                        let mut lo = 0;
                        for i in 0..fan_c {
                            let hi = lo + base + usize::from(i < extra);
                            ctx.put_to("shard", format!("relay_{i}"), data.slice(lo..hi));
                            lo = hi;
                        }
                    });
                for i in 0..fan {
                    builder = builder.register(format!("relay_{i}"), |ctx| {
                        let shard = ctx.input("shard").expect("shard").clone();
                        ctx.put("echo", shard);
                    });
                }
                let rt = builder
                    .register("merge", |ctx| {
                        let out: Vec<u8> = ctx
                            .inputs_named("echo")
                            .into_iter()
                            .flat_map(|b| b.iter().copied())
                            .collect();
                        ctx.put("out", Bytes::from(out));
                    })
                    .start()
                    .unwrap();

                let req = rt.invoke(vec![("in".into(), Bytes::from(payload.clone()))]);
                let outputs = rt
                    .wait(req, std::time::Duration::from_secs(30))
                    .expect("chaos echo completes");
                assert_eq!(outputs.len(), 1);
                assert_eq!(
                    &*outputs[0].1,
                    &payload[..],
                    "payload lost, duplicated or reordered under faults"
                );

                let stats = rt.stats();
                // No duplicate delivery into the FLUs: recovery replays
                // frames, but every function still ran exactly once.
                assert_eq!(
                    stats.invocations,
                    fan as u64 + 2,
                    "duplicate or lost invocation under faults"
                );
                // The kill may fire after the request already completed,
                // in which case its restart is still pending here.
                assert!(stats.node_restarts <= stats.node_crashes);
                rt.shutdown();
            }
        },
    );
}

/// Permanent node loss under the orchestrator control plane is invisible
/// in the outputs: whatever random placement laid the functions out and
/// whenever the crash lands, the heartbeat detector relocates the dead
/// node's functions and the client bytes match the no-fault reference.
#[test]
fn node_loss_relocation_is_byte_identical_under_random_placements() {
    use std::time::Duration;

    use dataflower_rt::{Bytes, ClusterConfig, ClusterRuntimeBuilder, LinkConfig, Placement};

    check(
        "node_loss_relocation_is_byte_identical_under_random_placements",
        |g| {
            let fan = g.usize_in(2, 5);
            let nodes = g.usize_in(2, 4);
            let len = g.usize_in(4_000, 40_000);
            let mut seed = g.u64_in(1, u64::MAX - 1);
            let payload: Vec<u8> = (0..len)
                .map(|_| {
                    seed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (seed >> 33) as u8
                })
                .collect();

            // start --shard--> relay_i --echo--> merge --out--> client
            let mut b = WorkflowBuilder::new("loss-echo");
            let start = b.function("start", WorkModel::fixed(0.001));
            let merge = b.function("merge", WorkModel::fixed(0.001));
            b.client_input(start, "in", SizeModel::Fixed(1024.0));
            for i in 0..fan {
                let relay = b.function(format!("relay_{i}"), WorkModel::fixed(0.001));
                b.edge(start, relay, "shard", SizeModel::Fixed(256.0));
                b.edge(relay, merge, "echo", SizeModel::Fixed(256.0));
            }
            b.client_output(merge, "out", SizeModel::Fixed(256.0));
            let wf = std::sync::Arc::new(b.build().unwrap());

            // Fully random placement — every function lands on a random
            // node, including layouts the stock policies never produce.
            let mut placement = Placement::with_nodes(nodes);
            for f in wf.function_ids() {
                placement = placement.assign(wf.function(f).name.clone(), g.usize_in(0, nodes));
            }

            // Tight heartbeats so the loss is declared well inside the
            // wait deadline; small chunks and marks so the crash lands
            // mid-stream often.
            let cfg = ClusterConfig::new()
                .direct_threshold_bytes(1)
                .chunk_bytes(g.usize_in(256, 2048))
                .checkpoint_interval_bytes(g.usize_in(1024, 4096))
                .link(LinkConfig {
                    queue_capacity: g.usize_in(2, 64),
                    ..LinkConfig::default()
                })
                .recovery(Duration::from_millis(20))
                .heartbeat(Duration::from_millis(4), 2)
                .build();

            let victim = g.usize_in(0, nodes);
            let crash_after = Duration::from_micros(g.u64_in(0, 4_000));

            let fan_c = fan;
            let mut builder = ClusterRuntimeBuilder::new(std::sync::Arc::clone(&wf))
                .placement(placement)
                .config(cfg)
                .register("start", move |ctx| {
                    let data = ctx.input("in").expect("client payload").clone();
                    let base = data.len() / fan_c;
                    let extra = data.len() % fan_c;
                    let mut lo = 0;
                    for i in 0..fan_c {
                        let hi = lo + base + usize::from(i < extra);
                        ctx.put_to("shard", format!("relay_{i}"), data.slice(lo..hi));
                        lo = hi;
                    }
                });
            for i in 0..fan {
                builder = builder.register(format!("relay_{i}"), |ctx| {
                    let shard = ctx.input("shard").expect("shard").clone();
                    ctx.put("echo", shard);
                });
            }
            let rt = builder
                .register("merge", |ctx| {
                    let out: Vec<u8> = ctx
                        .inputs_named("echo")
                        .into_iter()
                        .flat_map(|b| b.iter().copied())
                        .collect();
                    ctx.put("out", Bytes::from(out));
                })
                .start()
                .unwrap();

            let req = rt.invoke(vec![("in".into(), Bytes::from(payload.clone()))]);
            // Permanent: the victim is never restarted — only the
            // controller's relocation can finish the request.
            std::thread::sleep(crash_after);
            rt.crash_node(victim);

            let outputs = rt
                .wait(req, Duration::from_secs(30))
                .expect("relocation heals the lost node");
            assert_eq!(outputs.len(), 1);
            assert_eq!(
                &*outputs[0].1,
                &payload[..],
                "payload lost, duplicated or reordered across the relocation"
            );
            let stats = rt.stats();
            assert!(stats.heartbeats > 0, "the control plane never beat");
            rt.shutdown();
        },
    );
}

#[test]
fn fault_fate_streams_differ_across_links_and_directions() {
    use dataflower_rt::FaultPlan;

    check(
        "fault_fate_streams_differ_across_links_and_directions",
        |g| {
            // Individual rates capped so their sum stays below 1.0,
            // which `validate` requires.
            let plan = FaultPlan::seeded(g.u64_in(0, 1 << 48))
                .frame_chaos(g.f64_in(0.1, 0.3), g.f64_in(0.1, 0.3))
                .delay_frames(g.f64_in(0.1, 0.3), std::time::Duration::from_millis(1));
            assert!(plan.validate().is_ok());

            let src = g.usize_in(0, 8);
            let dst = (src + g.usize_in(1, 8)) % 8; // distinct from src
                                                    // A third directed link sharing neither endpoint order.
            let other = (src + 8, dst + 8);

            let stream = |s: usize, d: usize| -> Vec<_> {
                (0..512).map(|f| plan.frame_fate(f, s, d)).collect()
            };
            let forward = stream(src, dst);

            // Deterministic: the same link replays the same fates.
            assert_eq!(forward, stream(src, dst));
            // A directed link and its reverse never share a fate stream:
            // the chaos hitting `a → b` says nothing about `b → a`.
            assert_ne!(
                forward,
                stream(dst, src),
                "reversed link {dst}->{src} shares {src}->{dst}'s fate stream"
            );
            // Nor do two entirely distinct links.
            assert_ne!(
                forward,
                stream(other.0, other.1),
                "distinct links share a fate stream"
            );
        },
    );
}

#[test]
fn wire_frames_roundtrip_over_loopback_tcp_in_random_splits() {
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    use dataflower_rt::wire::encode_parts;
    use dataflower_rt::{Bytes, Frame};

    /// One random frame covering every wire kind, with keys and payloads
    /// of arbitrary (including zero) length.
    fn frame(g: &mut Gen) -> Frame {
        let key = |g: &mut Gen| -> String {
            g.vec(0, 24, |g| {
                b"abcdefgh@_0123456789"[g.usize_in(0, 20)] as char
            })
            .into_iter()
            .collect()
        };
        let bytes =
            |g: &mut Gen| -> Bytes { Bytes::from(g.vec(0, 4096, |g| g.usize_in(0, 256) as u8)) };
        match g.usize_in(0, 5) {
            0 => Frame::Hello {
                node: g.u64_in(0, 256) as u32,
                epoch: g.u64_in(0, 1 << 20) as u32,
            },
            1 => Frame::Whole {
                req: g.u64_in(0, 1 << 40),
                edge: g.u64_in(0, 1 << 16) as u32,
                key: key(g),
                transfer: g.u64_in(0, 1 << 40),
                payload: bytes(g),
            },
            2 => Frame::Chunk {
                req: g.u64_in(0, 1 << 40),
                edge: g.u64_in(0, 1 << 16) as u32,
                key: key(g),
                transfer: g.u64_in(0, 1 << 40),
                offset: g.u64_in(0, 1 << 30),
                total: g.u64_in(0, 1 << 30),
                bytes: bytes(g),
            },
            3 => Frame::AckMark {
                transfer: g.u64_in(0, 1 << 40),
                mark: g.u64_in(0, 1 << 30),
            },
            _ => Frame::AckComplete {
                transfer: g.u64_in(0, 1 << 40),
            },
        }
    }

    check(
        "wire_frames_roundtrip_over_loopback_tcp_in_random_splits",
        |g| {
            let frames = g.vec(1, 9, frame);

            // The whole session as one byte stream, exactly as the link
            // agents produce it: header buffer + zero-copy payload view.
            let mut session = Vec::new();
            for f in &frames {
                let (head, payload) = encode_parts(f);
                session.extend_from_slice(&head);
                if let Some(p) = payload {
                    session.extend_from_slice(&p);
                }
            }

            // Pre-draw random write splits — torn headers, split length
            // fields, payloads sliced across writes.
            let mut splits = Vec::new();
            let mut at = 0;
            while at < session.len() {
                let n = g.usize_in(1, 17.min(session.len() - at + 1));
                splits.push((at, at + n));
                at += n;
            }

            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().expect("listener addr");
            let writer = std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect loopback");
                s.set_nodelay(true).expect("nodelay");
                for (lo, hi) in splits {
                    s.write_all(&session[lo..hi]).expect("split write");
                    s.flush().expect("flush");
                }
            });

            let (mut conn, _) = listener.accept().expect("accept loopback");
            let mut dec = dataflower_rt::Decoder::new();
            let mut got = Vec::new();
            // A deliberately tiny, non-power-of-two read buffer so frames
            // arrive shredded across reads no matter how the writer split.
            let mut buf = [0u8; 11];
            while got.len() < frames.len() {
                let n = conn.read(&mut buf).expect("read loopback");
                assert!(n > 0, "EOF before every frame decoded");
                dec.feed(&buf[..n]);
                while let Some(f) = dec.next_frame().expect("wire stream decodes cleanly") {
                    got.push(f);
                }
            }
            writer.join().expect("writer thread");
            assert_eq!(got, frames, "frames diverged across the socket");
        },
    );
}

/// The fabric's SPSC ring is FIFO with neither loss nor duplication for
/// every capacity class (including non-power-of-two requests that round
/// up) while a producer and a consumer race with randomized burst sizes:
/// the consumer observes exactly the sequence `0..total`, in order.
#[test]
fn ring_is_fifo_lossless_and_dup_free_under_interleavings() {
    use dataflower_rt::ring;

    check(
        "ring_is_fifo_lossless_and_dup_free_under_interleavings",
        |g| {
            let capacity = g.usize_in(1, 33); // rounds up to 1..=64 slots
            let total = g.u64_in(1, 2_000);
            let producer_burst = g.u64_in(1, 9);
            let consumer_burst = g.usize_in(1, 17);
            let (tx, rx) = ring::ring::<u64>(capacity);
            let producer = std::thread::spawn(move || {
                let mut sent = 0u64;
                while sent < total {
                    let burst = producer_burst.min(total - sent);
                    for _ in 0..burst {
                        tx.send(sent).expect("receiver alive");
                        sent += 1;
                    }
                    std::thread::yield_now();
                }
            });
            let mut got: Vec<u64> = Vec::with_capacity(total as usize);
            loop {
                match rx.try_drain(&mut got, consumer_burst) {
                    Ok(0) => std::thread::yield_now(),
                    Ok(_) => {}
                    Err(_) => break, // empty + producer gone: complete
                }
            }
            producer.join().expect("producer thread");
            assert_eq!(got.len() as u64, total, "lost or duplicated messages");
            assert!(got.iter().copied().eq(0..total), "order diverged");
        },
    );
}

/// Ring boundary semantics: a fresh ring reports empty-but-connected as
/// `Ok(0)`, `send` never blocks below the rounded-up capacity and parks
/// at exactly full until a pop frees a slot, and the disconnect error
/// fires only once the tail is fully drained.
#[test]
fn ring_full_empty_boundaries_hold_for_every_capacity() {
    use dataflower_rt::ring;

    check("ring_full_empty_boundaries_hold_for_every_capacity", |g| {
        let requested = g.usize_in(1, 20);
        let cap = requested.next_power_of_two();
        let (tx, rx) = ring::ring::<usize>(requested);
        let mut buf = Vec::new();
        assert_eq!(rx.try_drain(&mut buf, 8).expect("connected"), 0);
        for i in 0..cap {
            tx.send(i).expect("below capacity"); // must not block
            assert_eq!(tx.len(), i + 1);
        }
        assert_eq!(rx.len(), cap);
        // The next send must park until the consumer frees a slot: the
        // ring cannot grow past capacity while it is pending.
        let parked = std::thread::spawn(move || {
            tx.send(cap).expect("receiver alive");
            tx
        });
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(rx.len(), cap, "send overran a full ring");
        assert_eq!(rx.try_drain(&mut buf, 1).expect("pop one"), 1);
        drop(parked.join().expect("parked sender"));
        // Sender gone but the tail remains: drains cleanly, then errors.
        while let Ok(n) = rx.try_drain(&mut buf, 64) {
            assert!(n > 0, "empty+disconnected must be Err");
        }
        assert!(buf.iter().copied().eq(0..=cap), "tail drain diverged");
    });
}

/// The byte pool never hands out storage aliasing a live [`Bytes`]:
/// buffers promoted via `into_bytes` keep their exact contents no matter
/// how many later buffers are checked out, filled, recycled or promoted,
/// and recycled checkouts always come back empty.
#[test]
fn pool_never_aliases_live_bytes() {
    use dataflower_rt::{BytePool, Bytes};

    check("pool_never_aliases_live_bytes", |g| {
        let pool = BytePool::new(g.usize_in(1, 8), 1 << g.usize_in(4, 12));
        let rounds = g.usize_in(1, 24);
        let mut live: Vec<(u8, usize, Bytes)> = Vec::new();
        for round in 0..rounds {
            let mut checked_out = Vec::new();
            for k in 0..g.usize_in(1, 5) {
                let mut buf = pool.get();
                assert!(buf.is_empty(), "pool returned a dirty buffer");
                let fill = (round * 31 + k + 1) as u8;
                let len = g.usize_in(1, 512);
                buf.resize(len, fill);
                checked_out.push((fill, len, buf));
            }
            for (fill, len, buf) in checked_out {
                if g.usize_in(0, 2) == 0 {
                    live.push((fill, len, buf.into_bytes()));
                }
                // else: dropped, storage back on the shelf
            }
            // Every promoted Bytes still reads back its own pattern.
            for (fill, len, bytes) in &live {
                assert_eq!(bytes.len(), *len, "live Bytes changed length");
                assert!(
                    bytes.iter().all(|b| b == fill),
                    "live Bytes were overwritten by pool reuse"
                );
            }
        }
    });
}

/// Every task submitted to the work-stealing scheduler runs exactly
/// once under random steal interleavings and concurrent scale churn:
/// lazily-spawned workers, batch injector grabs, steals off other
/// slots' deques, and `set_active` resizes mid-flight never lose or
/// double-run an invocation.
#[test]
fn scheduler_runs_each_task_exactly_once_under_steal_churn() {
    use dataflower_rt::NodeScheduler;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    check(
        "scheduler_runs_each_task_exactly_once_under_steal_churn",
        |g| {
            let max_slots = g.usize_in(2, 7);
            let sched = NodeScheduler::new("prop", max_slots, g.usize_in(1, max_slots + 1));
            let total = g.usize_in(1, 400);
            let runs: Arc<Vec<AtomicUsize>> =
                Arc::new((0..total).map(|_| AtomicUsize::new(0)).collect());
            for i in 0..total {
                let runs = Arc::clone(&runs);
                sched.submit(Box::new(move || {
                    runs[i].fetch_add(1, Ordering::SeqCst);
                    if i % 5 == 0 {
                        std::thread::yield_now(); // vary worker/stealer overlap
                    }
                }));
                if g.usize_in(0, 8) == 0 {
                    sched.set_active(g.usize_in(1, max_slots + 1));
                }
            }
            sched.stop();
            for (i, r) in runs.iter().enumerate() {
                assert_eq!(r.load(Ordering::SeqCst), 1, "task {i} ran wrong count");
            }
        },
    );
}

/// Stress: scaling in while workers are mid-steal loses no queued task.
/// A burst is submitted at full width, the window collapses to one slot
/// while every worker still holds local work, then widens again — the
/// retired slots' deques must flow back through the injector so the
/// whole burst still runs exactly once.
#[test]
fn scheduler_scale_in_during_steal_loses_no_tasks() {
    use dataflower_rt::NodeScheduler;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    check("scheduler_scale_in_during_steal_loses_no_tasks", |g| {
        let max_slots = g.usize_in(3, 7);
        let sched = NodeScheduler::new("prop-stress", max_slots, max_slots);
        let total = g.usize_in(100, 600);
        let collapse_after = g.usize_in(1, total);
        let runs: Arc<Vec<AtomicUsize>> =
            Arc::new((0..total).map(|_| AtomicUsize::new(0)).collect());
        for i in 0..total {
            let runs = Arc::clone(&runs);
            sched.submit(Box::new(move || {
                runs[i].fetch_add(1, Ordering::SeqCst);
                std::thread::yield_now(); // keep deques non-empty mid-collapse
            }));
            if i == collapse_after {
                sched.set_active(1); // retire all but one slot mid-burst
            }
        }
        sched.set_active(max_slots); // widen again before the drain
        sched.stop();
        let ran: usize = runs.iter().map(|r| r.load(Ordering::SeqCst)).sum();
        assert_eq!(ran, total, "scale-in stranded or double-ran tasks");
        assert!(runs.iter().all(|r| r.load(Ordering::SeqCst) == 1));
    });
}
