//! Cross-crate integration tests: every benchmark on every system, the
//! paper's headline relationships, and determinism of the whole stack.

use dataflower_workloads::{Benchmark, Scenario, SystemKind};

#[test]
fn every_system_completes_every_benchmark() {
    for b in Benchmark::ALL {
        for sys in [
            SystemKind::DataFlower,
            SystemKind::DataFlowerNonAware,
            SystemKind::FaaSFlow,
            SystemKind::Sonic,
            SystemKind::Centralized,
            SystemKind::StateMachine,
        ] {
            let scenario = Scenario::seeded(1);
            let report = scenario.open_loop(sys, b.workflow(), b.default_payload(), 6.0, 30);
            let stats = report.primary();
            assert!(stats.completed > 0, "{sys} completed nothing on {b}");
            assert_eq!(stats.unfinished, 0, "{sys} left requests unfinished on {b}");
        }
    }
}

#[test]
fn dataflower_reduces_p99_latency_on_every_benchmark() {
    // The paper's headline (Fig. 10): p99 down 5.7–35.4 % vs FaaSFlow and
    // 8.9–29.2 % vs SONIC. We assert the direction and a sane magnitude.
    for b in Benchmark::ALL {
        let p99 = |sys: SystemKind| {
            let scenario = Scenario::seeded(33);
            scenario
                .open_loop(sys, b.workflow(), b.default_payload(), 10.0, 60)
                .primary()
                .latency
                .p99()
        };
        let df = p99(SystemKind::DataFlower);
        let ff = p99(SystemKind::FaaSFlow);
        let sonic = p99(SystemKind::Sonic);
        assert!(df < ff, "{b}: DataFlower p99 {df:.3} !< FaaSFlow {ff:.3}");
        assert!(
            df < sonic,
            "{b}: DataFlower p99 {df:.3} !< SONIC {sonic:.3}"
        );
    }
}

#[test]
fn dataflower_peak_throughput_exceeds_baselines() {
    // Fig. 11 direction: higher peak rpm at equal client counts.
    for b in [Benchmark::Wc, Benchmark::Vid] {
        let clients = *b.fig11_clients().last().unwrap();
        let rpm = |sys: SystemKind| {
            let scenario = Scenario::seeded(34);
            scenario
                .closed_loop(sys, b.workflow(), b.default_payload(), clients, 120)
                .primary()
                .throughput_rpm
        };
        let df = rpm(SystemKind::DataFlower);
        let ff = rpm(SystemKind::FaaSFlow);
        let sonic = rpm(SystemKind::Sonic);
        assert!(df > ff, "{b}: DataFlower rpm {df:.1} !> FaaSFlow {ff:.1}");
        assert!(
            df > sonic,
            "{b}: DataFlower rpm {df:.1} !> SONIC {sonic:.1}"
        );
    }
}

#[test]
fn dataflower_uses_less_cache_memory_than_faasflow() {
    // Fig. 14 direction: proactive release + passive expire vs
    // per-request cache lifetime.
    for b in [Benchmark::Vid, Benchmark::Svd, Benchmark::Wc] {
        let cache = |sys: SystemKind| {
            let scenario = Scenario::seeded(35);
            let r = scenario.closed_loop(sys, b.workflow(), b.default_payload(), 4, 90);
            r.cache_mb_s / r.primary().completed.max(1) as f64
        };
        let df = cache(SystemKind::DataFlower);
        let ff = cache(SystemKind::FaaSFlow);
        assert!(
            df < ff,
            "{b}: DataFlower cache {df:.3} MB*s/req !< FaaSFlow {ff:.3}"
        );
    }
}

#[test]
fn pressure_awareness_never_hurts_and_helps_wc() {
    let rpm = |sys: SystemKind, clients: usize| {
        let scenario = Scenario::seeded(36);
        scenario
            .closed_loop(
                sys,
                Benchmark::Wc.workflow(),
                Benchmark::Wc.default_payload(),
                clients,
                120,
            )
            .primary()
            .throughput_rpm
    };
    let aware = rpm(SystemKind::DataFlower, 16);
    let non_aware = rpm(SystemKind::DataFlowerNonAware, 16);
    assert!(
        aware > non_aware * 1.2,
        "expected a clear Fig. 12 gap on wc: aware {aware:.0} vs non-aware {non_aware:.0}"
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let scenario = Scenario::seeded(99);
        let r = scenario.open_loop(
            SystemKind::DataFlower,
            Benchmark::Svd.workflow(),
            Benchmark::Svd.default_payload(),
            20.0,
            45,
        );
        (
            r.primary().completed,
            r.primary().latency.mean().to_bits(),
            r.memory_gb_s.to_bits(),
            r.cache_mb_s.to_bits(),
            r.cold_starts,
        )
    };
    assert_eq!(run(), run(), "same seed must give bit-identical results");
}

#[test]
fn colocation_degrades_gracefully_under_dataflower() {
    // Fig. 18: no benchmark suffers more than ~2x degradation from Solo
    // to High load with DataFlower.
    let scenario = Scenario::seeded(40);
    let loads: Vec<_> = Benchmark::ALL
        .iter()
        .map(|b| (b.workflow(), b.default_payload(), 8.0))
        .collect();
    let co = scenario.colocated(SystemKind::DataFlower, &loads, 45);
    for b in Benchmark::ALL {
        let solo = Scenario::seeded(40)
            .open_loop(
                SystemKind::DataFlower,
                b.workflow(),
                b.default_payload(),
                8.0,
                45,
            )
            .primary()
            .latency
            .mean();
        let colocated = co.workflow(b.name()).unwrap().latency.mean();
        assert!(
            colocated < solo * 2.0,
            "{b}: co-located mean {colocated:.2}s vs solo {solo:.2}s exceeds 2x"
        );
    }
}
