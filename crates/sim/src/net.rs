//! Flow-level network model with max–min fair bandwidth sharing.
//!
//! Every data transfer in the simulated cluster is a [`Flow`] routed over a
//! path of [`Link`]s (e.g. *container egress cap → node NIC → destination
//! NIC*). Between topology changes, each flow transfers at a constant rate
//! determined by progressive-filling max–min fairness; on every flow
//! arrival or departure the rates are recomputed and the projected
//! completion times shift accordingly.
//!
//! This is the standard fluid approximation used by cluster simulators: it
//! captures exactly the effects the DataFlower paper attributes to the
//! network — per-container bandwidth caps, contention on the storage node,
//! and transfer-time inflation under fan-out — without packet-level detail.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Residual bytes below which a flow counts as finished (guards float drift).
const COMPLETE_EPS_BYTES: f64 = 1e-3;

/// Handle to a link created by [`FlowNet::add_link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(u32);

/// Handle to an in-flight flow created by [`FlowNet::start_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link#{}", self.0)
    }
}
impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

#[derive(Debug)]
struct Link {
    /// Capacity in bytes per second.
    capacity: f64,
    /// Flows currently traversing this link (insertion order).
    flows: Vec<u64>,
}

#[derive(Debug)]
struct Flow {
    path: Vec<LinkId>,
    remaining: f64,
    total: f64,
    rate: f64,
    tag: u64,
    started: SimTime,
}

/// A completed transfer reported by [`FlowNet::advance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedFlow {
    /// The flow that finished.
    pub id: FlowId,
    /// Caller-supplied correlation tag from [`FlowNet::start_flow`].
    pub tag: u64,
    /// Instant the last byte arrived.
    pub at: SimTime,
    /// Total bytes carried.
    pub bytes: f64,
    /// Instant the flow was started.
    pub started: SimTime,
}

/// The fluid network: a set of capacity links and the flows over them.
///
/// # Examples
///
/// Two flows sharing a 100 B/s link each get 50 B/s until the shorter one
/// leaves, after which the survivor speeds up:
///
/// ```
/// use dataflower_sim::{FlowNet, SimTime};
///
/// let mut net = FlowNet::new();
/// let link = net.add_link(100.0);
/// net.start_flow(SimTime::ZERO, &[link], 100.0, 1);
/// net.start_flow(SimTime::ZERO, &[link], 50.0, 2);
///
/// // Short flow: 50 B at 50 B/s → t=1s. Long flow: 50 B left at t=1s,
/// // then alone at 100 B/s → finishes at t=1.5s.
/// let done = net.advance(SimTime::from_secs(2));
/// assert_eq!(done.len(), 2);
/// assert_eq!(done[0].tag, 2);
/// assert_eq!(done[0].at, SimTime::from_secs(1));
/// assert_eq!(done[1].tag, 1);
/// assert_eq!(done[1].at.as_micros(), 1_500_000);
/// ```
#[derive(Debug, Default)]
pub struct FlowNet {
    links: Vec<Link>,
    flows: BTreeMap<u64, Flow>,
    /// Links with at least one active flow (keeps rate recomputation
    /// proportional to the busy part of the topology, not all links ever
    /// created).
    active_links: std::collections::BTreeSet<u32>,
    next_flow: u64,
    settled_at: SimTime,
    scratch: RateScratch,
}

/// Reusable working memory of [`FlowNet::recompute_rates`]. Rates are
/// recomputed on every flow arrival and departure, so the progressive
/// filling loop must not allocate: these vectors are sized to the
/// topology once and reused, indexed by raw link id (no hashing).
#[derive(Debug, Default)]
struct RateScratch {
    /// Residual capacity per link id.
    residual: Vec<f64>,
    /// Unfrozen-flow count per link id.
    count: Vec<usize>,
    /// Flows not yet assigned a rate this pass, in id order.
    unfrozen: Vec<u64>,
    /// Next round's unfrozen set (swapped with `unfrozen` per round).
    still: Vec<u64>,
}

impl FlowNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a link with `capacity` in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive.
    pub fn add_link(&mut self, capacity: f64) -> LinkId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite, got {capacity}"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            capacity,
            flows: Vec::new(),
        });
        id
    }

    /// Changes a link's capacity (e.g. scaling a container up). Takes
    /// effect for all future rate computations; call at the current time.
    pub fn set_capacity(&mut self, now: SimTime, link: LinkId, capacity: f64) {
        assert!(capacity.is_finite() && capacity > 0.0);
        self.settle(now);
        self.links[link.0 as usize].capacity = capacity;
        self.recompute_rates();
    }

    /// Capacity of `link` in bytes per second.
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].capacity
    }

    /// Fraction of `link`'s capacity currently in use (0.0–1.0).
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let l = &self.links[link.0 as usize];
        let used: f64 = l.flows.iter().map(|f| self.flows[f].rate).sum();
        (used / l.capacity).min(1.0)
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Starts a transfer of `bytes` along `path` and returns its handle.
    ///
    /// An empty `path` models an infinitely fast local move: the flow
    /// completes at the next [`FlowNet::advance`] with zero duration. The
    /// `tag` is an opaque correlation value echoed on completion.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite.
    pub fn start_flow(&mut self, now: SimTime, path: &[LinkId], bytes: f64, tag: u64) -> FlowId {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "flow size must be non-negative"
        );
        self.settle(now);
        let id = self.next_flow;
        self.next_flow += 1;
        for l in path {
            self.links[l.0 as usize].flows.push(id);
            self.active_links.insert(l.0);
        }
        self.flows.insert(
            id,
            Flow {
                path: path.to_vec(),
                remaining: bytes,
                total: bytes,
                rate: 0.0,
                tag,
                started: now,
            },
        );
        self.recompute_rates();
        FlowId(id)
    }

    /// Cancels an in-flight flow, returning the bytes it still had to
    /// carry, or `None` if it already completed.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.settle(now);
        let flow = self.flows.remove(&id.0)?;
        for l in &flow.path {
            self.unlink(*l, id.0);
        }
        self.recompute_rates();
        Some(flow.remaining)
    }

    /// Bytes still to transfer for `id` as of the last settle point.
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id.0).map(|f| f.remaining)
    }

    /// Current rate of `id` in bytes per second.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id.0).map(|f| f.rate)
    }

    /// The earliest instant any in-flight flow can complete, if any.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.flows
            .values()
            .filter_map(|f| self.completion_time_of(f))
            .min()
    }

    fn completion_time_of(&self, f: &Flow) -> Option<SimTime> {
        if f.remaining <= COMPLETE_EPS_BYTES {
            return Some(self.settled_at);
        }
        if f.rate <= 0.0 {
            return None; // stalled (should not happen with positive caps)
        }
        Some(self.settled_at + SimDuration::from_secs_f64(f.remaining / f.rate))
    }

    /// Progresses all flows up to `now`, returning every flow that
    /// completed at or before `now` in completion order.
    ///
    /// Rates are recomputed after each departure so later completions see
    /// the freed bandwidth.
    pub fn advance(&mut self, now: SimTime) -> Vec<CompletedFlow> {
        let mut done = Vec::new();
        loop {
            let next = match self.next_completion() {
                Some(t) if t <= now => t,
                _ => break,
            };
            self.settle(next);
            // Collect every flow finished at this instant (BTreeMap order
            // keeps this deterministic).
            let finished: Vec<u64> = self
                .flows
                .iter()
                .filter(|(_, f)| f.remaining <= COMPLETE_EPS_BYTES)
                .map(|(id, _)| *id)
                .collect();
            debug_assert!(
                !finished.is_empty(),
                "completion time with no finished flow"
            );
            for id in finished {
                let flow = self.flows.remove(&id).expect("listed flow exists");
                for l in &flow.path {
                    self.unlink(*l, id);
                }
                done.push(CompletedFlow {
                    id: FlowId(id),
                    tag: flow.tag,
                    at: next,
                    bytes: flow.total,
                    started: flow.started,
                });
            }
            self.recompute_rates();
        }
        self.settle(now);
        done
    }

    /// Subtracts `rate * dt` progress from every flow up to `to`.
    fn settle(&mut self, to: SimTime) {
        if to <= self.settled_at {
            return;
        }
        let dt = (to - self.settled_at).as_secs_f64();
        for f in self.flows.values_mut() {
            if f.rate > 0.0 {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.settled_at = to;
    }

    fn unlink(&mut self, l: LinkId, flow: u64) {
        let link = &mut self.links[l.0 as usize];
        link.flows.retain(|f| *f != flow);
        if link.flows.is_empty() {
            self.active_links.remove(&l.0);
        }
    }

    /// Sum of all flow rates, in bytes per second (network busyness for
    /// usage timelines).
    pub fn total_rate(&self) -> f64 {
        self.flows
            .values()
            .map(|f| if f.rate.is_finite() { f.rate } else { 0.0 })
            .sum()
    }

    /// Progressive-filling max–min fair allocation.
    ///
    /// Only links in `active_links` participate, so cost scales with the
    /// busy topology.
    fn recompute_rates(&mut self) {
        let FlowNet {
            links,
            flows,
            active_links,
            scratch,
            ..
        } = self;
        let RateScratch {
            residual,
            count,
            unfrozen,
            still,
        } = scratch;
        // Full-width scratch indexed by raw link id: only the active
        // links are (re)initialized, so the pass stays proportional to
        // the busy topology but never hashes or allocates.
        residual.resize(links.len(), 0.0);
        count.resize(links.len(), 0);
        for &l in active_links.iter() {
            let link = &links[l as usize];
            residual[l as usize] = link.capacity;
            count[l as usize] = link.flows.len();
        }
        unfrozen.clear();
        for (id, f) in flows.iter_mut() {
            if f.path.is_empty() {
                // Flows with an empty path are infinitely fast local moves.
                f.rate = f64::INFINITY;
                f.remaining = 0.0;
            } else {
                unfrozen.push(*id);
            }
        }

        while !unfrozen.is_empty() {
            // Fair share on the most constrained link.
            let mut min_share = f64::INFINITY;
            for &l in active_links.iter() {
                let c = count[l as usize];
                if c > 0 {
                    let share = residual[l as usize] / c as f64;
                    if share < min_share {
                        min_share = share;
                    }
                }
            }
            debug_assert!(min_share.is_finite(), "unfrozen flows but no loaded link");
            // Freeze every unfrozen flow that crosses a bottleneck link.
            let mut frozen_any = false;
            still.clear();
            for &id in unfrozen.iter() {
                let f = flows.get_mut(&id).expect("flow exists");
                let bottlenecked = f.path.iter().any(|l| {
                    let i = l.0 as usize;
                    count[i] > 0 && residual[i] / count[i] as f64 <= min_share * (1.0 + 1e-12)
                });
                if bottlenecked {
                    frozen_any = true;
                    for l in &f.path {
                        let i = l.0 as usize;
                        residual[i] = (residual[i] - min_share).max(0.0);
                        count[i] -= 1;
                    }
                    f.rate = min_share;
                } else {
                    still.push(id);
                }
            }
            debug_assert!(frozen_any, "progressive filling made no progress");
            std::mem::swap(unfrozen, still);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_flow_uses_full_capacity() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        let f = net.start_flow(SimTime::ZERO, &[l], 100.0, 7);
        assert_eq!(net.flow_rate(f), Some(10.0));
        let done = net.advance(secs(20));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        assert_eq!(done[0].at, secs(10));
        assert_eq!(done[0].bytes, 100.0);
    }

    #[test]
    fn bottleneck_is_min_link_on_path() {
        let mut net = FlowNet::new();
        let fast = net.add_link(1000.0);
        let slow = net.add_link(10.0);
        let f = net.start_flow(SimTime::ZERO, &[fast, slow], 100.0, 0);
        assert_eq!(net.flow_rate(f), Some(10.0));
    }

    #[test]
    fn fair_share_splits_evenly() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        let a = net.start_flow(SimTime::ZERO, &[l], 1000.0, 0);
        let b = net.start_flow(SimTime::ZERO, &[l], 1000.0, 1);
        assert_eq!(net.flow_rate(a), Some(50.0));
        assert_eq!(net.flow_rate(b), Some(50.0));
    }

    #[test]
    fn max_min_gives_leftover_to_unbottlenecked() {
        // Flow A is capped by its own 10 B/s access link; flow B shares the
        // 100 B/s core with A and should get the remaining 90 B/s.
        let mut net = FlowNet::new();
        let access_a = net.add_link(10.0);
        let core = net.add_link(100.0);
        let a = net.start_flow(SimTime::ZERO, &[access_a, core], 1e6, 0);
        let b = net.start_flow(SimTime::ZERO, &[core], 1e6, 1);
        assert!((net.flow_rate(a).unwrap() - 10.0).abs() < 1e-9);
        assert!((net.flow_rate(b).unwrap() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn departure_speeds_up_survivors() {
        let mut net = FlowNet::new();
        let l = net.add_link(100.0);
        net.start_flow(SimTime::ZERO, &[l], 100.0, 1);
        net.start_flow(SimTime::ZERO, &[l], 50.0, 2);
        let done = net.advance(secs(10));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].at, secs(1));
        assert_eq!(done[1].at.as_micros(), 1_500_000);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        net.start_flow(secs(5), &[l], 0.0, 9);
        let done = net.advance(secs(5));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, secs(5));
    }

    #[test]
    fn empty_path_is_instant() {
        let mut net = FlowNet::new();
        net.start_flow(secs(3), &[], 1e9, 4);
        let done = net.advance(secs(3));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, secs(3));
        assert_eq!(done[0].bytes, 1e9);
    }

    #[test]
    fn cancel_returns_remaining() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        let f = net.start_flow(SimTime::ZERO, &[l], 100.0, 0);
        let rem = net.cancel_flow(secs(4), f).unwrap();
        assert!((rem - 60.0).abs() < 1e-6, "rem={rem}");
        assert!(net.advance(secs(100)).is_empty());
    }

    #[test]
    fn capacity_change_reshapes_completion() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        net.start_flow(SimTime::ZERO, &[l], 100.0, 0);
        // After 5 s at 10 B/s, 50 B remain; doubling capacity finishes them
        // in 2.5 s.
        net.set_capacity(secs(5), l, 20.0);
        let done = net.advance(secs(100));
        assert_eq!(done[0].at.as_micros(), 7_500_000);
    }

    #[test]
    fn staggered_arrivals_share_fairly() {
        let mut net = FlowNet::new();
        let l = net.add_link(10.0);
        let a = net.start_flow(SimTime::ZERO, &[l], 100.0, 0);
        // A alone for 5 s → 50 B left. B arrives; both at 5 B/s.
        let b = net.start_flow(secs(5), &[l], 25.0, 1);
        assert_eq!(net.flow_rate(a), Some(5.0));
        assert_eq!(net.flow_rate(b), Some(5.0));
        let done = net.advance(secs(100));
        // B: 25 B at 5 B/s → t=10. A: at t=10 has 25 B left, alone → t=12.5.
        assert_eq!(done[0].tag, 1);
        assert_eq!(done[0].at, secs(10));
        assert_eq!(done[1].tag, 0);
        assert_eq!(done[1].at.as_micros(), 12_500_000);
    }

    #[test]
    fn utilization_reflects_rates() {
        let mut net = FlowNet::new();
        let cap = net.add_link(10.0);
        let core = net.add_link(100.0);
        net.start_flow(SimTime::ZERO, &[cap, core], 1e6, 0);
        assert!((net.link_utilization(cap) - 1.0).abs() < 1e-9);
        assert!((net.link_utilization(core) - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_link_rejected() {
        FlowNet::new().add_link(0.0);
    }
}
