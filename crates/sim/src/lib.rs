//! # dataflower-sim
//!
//! A small, deterministic discrete-event simulation engine used as the
//! execution substrate for the DataFlower reproduction.
//!
//! The engine deliberately contains **no serverless concepts** — it provides
//! exactly four things the cluster model composes:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond virtual time;
//! * [`EventQueue`] — a cancellable, FIFO-stable event queue;
//! * [`FlowNet`] — a flow-level network with max–min fair bandwidth
//!   sharing, used for every container↔container and container↔storage
//!   transfer;
//! * [`CapacityPool`], [`SimRng`], [`Trace`] — resource accounting,
//!   seeded randomness and timeline recording.
//!
//! # Examples
//!
//! Drive a queue and a network together (this interleaving is what the
//! cluster driver does):
//!
//! ```
//! use dataflower_sim::{EventQueue, FlowNet, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! let mut net = FlowNet::new();
//! let link = net.add_link(1_000_000.0); // 1 MB/s
//!
//! q.schedule(SimTime::from_secs(1), "compute-done");
//! net.start_flow(SimTime::ZERO, &[link], 500_000.0, 42);
//!
//! // The transfer (0.5 s) finishes before the event (1 s).
//! let next_event = q.next_time().unwrap();
//! let next_flow = net.next_completion().unwrap();
//! assert!(next_flow < next_event);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod net;
mod pool;
mod queue;
mod rng;
mod time;
mod trace;

pub use net::{CompletedFlow, FlowId, FlowNet, LinkId};
pub use pool::{CapacityPool, ExhaustedError};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::Trace;

#[cfg(test)]
mod integration_tests {
    use super::*;

    /// The queue/net interleave pattern used by the cluster driver: always
    /// process whichever of (next event, next flow completion) is earlier.
    #[test]
    fn queue_and_net_interleave_deterministically() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut net = FlowNet::new();
        let link = net.add_link(100.0);

        q.schedule(SimTime::from_secs(2), 1);
        net.start_flow(SimTime::ZERO, &[link], 100.0, 99); // done at t=1
        q.schedule(SimTime::from_millis(500), 0);

        let mut order = Vec::new();
        loop {
            let qe = q.next_time();
            let nf = net.next_completion();
            match (qe, nf) {
                (None, None) => break,
                (Some(tq), Some(tf)) if tf <= tq => {
                    for c in net.advance(tf) {
                        order.push((tf, c.tag));
                    }
                }
                (Some(_), _) => {
                    let (t, e) = q.pop().unwrap();
                    order.push((t, e as u64));
                }
                (None, Some(tf)) => {
                    for c in net.advance(tf) {
                        order.push((tf, c.tag));
                    }
                }
            }
        }
        assert_eq!(
            order,
            vec![
                (SimTime::from_millis(500), 0),
                (SimTime::from_secs(1), 99),
                (SimTime::from_secs(2), 1),
            ]
        );
    }
}
