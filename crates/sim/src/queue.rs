//! The cancellable event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable to [`EventQueue::cancel`] it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}", self.0)
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Ties on time break by insertion order (FIFO) which keeps
        // same-instant causality deterministic.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable priority queue of timestamped events.
///
/// Events scheduled for the same instant pop in insertion (FIFO) order, so
/// a run is a pure function of the schedule calls — no hash-map iteration
/// or allocator behaviour can leak into event order.
///
/// # Examples
///
/// ```
/// use dataflower_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "b");
/// q.schedule(SimTime::from_millis(5), "a");
/// let id = q.schedule(SimTime::from_millis(20), "never");
/// q.cancel(id);
///
/// assert_eq!(q.pop(), Some((SimTime::from_millis(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Seqs scheduled but not yet fired nor cancelled.
    pending: HashSet<u64>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: HashSet::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of live (not cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// `at` may lie in the past of `now`; the event then fires "now", but
    /// after everything already scheduled for `now`. This keeps zero-delay
    /// causal chains well-defined.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry { at, seq, payload });
        EventId(seq)
    }

    /// Schedules `payload` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (it will never pop),
    /// `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Peeks at the time of the next live event without popping it.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let entry = self.heap.pop()?;
            if !self.pending.remove(&entry.seq) {
                continue; // cancelled
            }
            self.now = entry.at;
            self.processed += 1;
            return Some((entry.at, entry.payload));
        }
    }

    /// Drains all events strictly before `deadline` into a vector; the
    /// clock advances to the last drained event (not to `deadline`).
    pub fn drain_until(&mut self, deadline: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        while let Some(t) = self.next_time() {
            if t >= deadline {
                break;
            }
            out.push(self.pop().expect("next_time saw a live event"));
        }
        out
    }

    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.pending.contains(&top.seq) {
                break;
            }
            self.heap.pop();
        }
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.pending.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_for_same_time() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_secs(1), i);
        }
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "x");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double cancel reports false");
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "x");
        q.schedule(SimTime::from_secs(2), "y");
        q.pop();
        assert!(!q.cancel(id));
        assert_eq!(q.pop().unwrap().1, "y");
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule(SimTime::from_secs(1), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(e, "late");
    }

    #[test]
    fn next_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        q.cancel(id);
        assert_eq!(q.next_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_until_respects_deadline() {
        let mut q = EventQueue::new();
        for s in 1..=5 {
            q.schedule(SimTime::from_secs(s), s);
        }
        let drained = q.drain_until(SimTime::from_secs(3));
        assert_eq!(drained.len(), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_time(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.pop();
        q.schedule_in(SimDuration::from_secs(5), "b");
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(15));
    }
}
