//! Timestamped trace recording for post-hoc analysis (timelines, Fig. 2b /
//! Fig. 13 style plots).

use crate::time::SimTime;

/// An append-only log of `(time, value)` observations.
///
/// # Examples
///
/// ```
/// use dataflower_sim::{SimTime, Trace};
///
/// let mut t = Trace::new();
/// t.record(SimTime::from_millis(1), "triggered");
/// t.record(SimTime::from_millis(4), "completed");
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.entries()[0].1, "triggered");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace<T> {
    entries: Vec<(SimTime, T)>,
}

impl<T> Default for Trace<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Trace<T> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace {
            entries: Vec::new(),
        }
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is earlier than the previous entry
    /// (traces must be recorded in causal order).
    pub fn record(&mut self, at: SimTime, value: T) {
        if let Some((last, _)) = self.entries.last() {
            debug_assert!(*last <= at, "trace entries must be time-ordered");
        }
        self.entries.push((at, value));
    }

    /// All observations in time order.
    pub fn entries(&self) -> &[(SimTime, T)] {
        &self.entries
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over observations.
    pub fn iter(&self) -> std::slice::Iter<'_, (SimTime, T)> {
        self.entries.iter()
    }

    /// The most recent observation, if any.
    pub fn last(&self) -> Option<&(SimTime, T)> {
        self.entries.last()
    }
}

impl<T> IntoIterator for Trace<T> {
    type Item = (SimTime, T);
    type IntoIter = std::vec::IntoIter<(SimTime, T)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Trace<T> {
    type Item = &'a (SimTime, T);
    type IntoIter = std::slice::Iter<'a, (SimTime, T)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl<T> FromIterator<(SimTime, T)> for Trace<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, T)>>(iter: I) -> Self {
        let mut t = Trace::new();
        for (at, v) in iter {
            t.record(at, v);
        }
        t
    }
}

impl<T> Extend<(SimTime, T)> for Trace<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        for (at, v) in iter {
            self.record(at, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), 1);
        t.record(SimTime::from_secs(1), 2);
        t.record(SimTime::from_secs(2), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.last(), Some(&(SimTime::from_secs(2), 3)));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    #[cfg(debug_assertions)]
    fn rejects_out_of_order() {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(2), 1);
        t.record(SimTime::from_secs(1), 2);
    }

    #[test]
    fn collect_and_iterate() {
        let t: Trace<&str> = vec![(SimTime::ZERO, "a"), (SimTime::from_secs(1), "b")]
            .into_iter()
            .collect();
        let names: Vec<&str> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(names, vec!["a", "b"]);
        let owned: Vec<_> = t.into_iter().collect();
        assert_eq!(owned.len(), 2);
    }
}
