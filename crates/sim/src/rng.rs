//! Deterministic random number generation for simulations.
//!
//! Implemented in-tree (xoshiro256++ seeded via SplitMix64) so the
//! workspace stays dependency-free and streams are stable across
//! toolchains: the same seed yields the same draws forever.

/// A seeded random source with the distribution helpers simulations need.
///
/// Identical seeds produce identical streams, which (together with the
/// deterministic [`crate::EventQueue`]) makes whole simulation runs
/// reproducible. Use [`SimRng::fork`] to derive independent substreams for
/// different model components so adding draws in one component does not
/// perturb another.
///
/// # Examples
///
/// ```
/// use dataflower_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut sub = a.fork();
/// let _interarrival = sub.exp(0.5); // mean 0.5 s
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child generator. The parent advances by one
    /// draw; the child stream is unrelated to subsequent parent draws.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Next value in `[0, 1)` with 53 bits of precision.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        // Debiased multiply-shift (Lemire): uniform over [0, n).
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Exponential draw with the given `mean` (e.g. Poisson inter-arrival
    /// times for an open-loop load generator).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exp mean must be positive, got {mean}"
        );
        // Map to (0, 1]: never ln(0).
        let u = 1.0 - self.unit();
        -mean * u.ln()
    }

    /// Draw multiplicative jitter in `[1 - spread, 1 + spread]`, used to
    /// perturb service times realistically.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= spread < 1`.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&spread),
            "jitter spread must be in [0,1), got {spread}"
        );
        if spread == 0.0 {
            1.0
        } else {
            self.uniform(1.0 - spread, 1.0 + spread)
        }
    }

    /// Bernoulli draw.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_decoupled() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        // Draw from the fork; parents stay in sync.
        fa.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut r = SimRng::seed_from(7);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn uniform_within_bounds() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = r.uniform(5.0, 6.0);
            assert!((5.0..6.0).contains(&x));
        }
    }

    #[test]
    fn index_within_bounds_and_covers() {
        let mut r = SimRng::seed_from(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.index(7)] = true;
        }
        assert!(seen.iter().all(|s| *s), "some residues never drawn");
    }

    #[test]
    fn jitter_centered_on_one() {
        let mut r = SimRng::seed_from(9);
        for _ in 0..1000 {
            let j = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&j));
        }
        assert_eq!(r.jitter(0.0), 1.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
