//! Virtual time types.
//!
//! All simulation ordering uses integer microseconds ([`SimTime`],
//! [`SimDuration`]) so that runs are bit-for-bit deterministic. Floating
//! point appears only at model boundaries (e.g. converting a transfer time
//! computed from `bytes / rate` into a duration), where it is rounded *up*
//! so no event can complete earlier than physically possible.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the virtual clock, in microseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use dataflower_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// assert_eq!(t.as_secs_f64(), 0.005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
///
/// # Examples
///
/// ```
/// use dataflower_sim::SimDuration;
///
/// let d = SimDuration::from_secs_f64(1.5);
/// assert_eq!(d.as_micros(), 1_500_000);
/// assert_eq!(d * 2, SimDuration::from_secs(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the instant as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (lossy) fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the instant as (lossy) fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "duration_since: earlier={earlier} > self={self}"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating duration since `earlier` (zero when `earlier` is later).
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding *up* to the next
    /// microsecond so modeled work never completes early.
    ///
    /// Negative and NaN inputs clamp to zero; overflow clamps to
    /// [`SimDuration::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let us = (secs * 1e6).ceil();
        if us >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(us as u64)
        }
    }

    /// Returns the span as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as (lossy) fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span as (lossy) fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<SimDuration> for f64 {
    fn from(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(7).as_micros(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        assert_eq!(SimDuration::from_secs_f64(1e-7).as_micros(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(3) / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}
