//! Capacity accounting for partitioned node resources.

use std::fmt;

/// Error returned when a [`CapacityPool`] cannot satisfy a reservation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExhaustedError {
    /// Amount that was requested.
    pub requested: f64,
    /// Amount that was still available.
    pub available: f64,
}

impl fmt::Display for ExhaustedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "capacity exhausted: requested {:.3}, available {:.3}",
            self.requested, self.available
        )
    }
}

impl std::error::Error for ExhaustedError {}

/// A fixed-capacity resource (cores, memory MB, bandwidth) from which
/// containers reserve exclusive shares, mirroring cgroup/TC partitioning
/// in the paper's testbed (§8, §9.8).
///
/// # Examples
///
/// ```
/// use dataflower_sim::CapacityPool;
///
/// let mut cpu = CapacityPool::new(16.0);
/// cpu.reserve(0.1)?;
/// assert_eq!(cpu.used(), 0.1);
/// cpu.release(0.1);
/// assert_eq!(cpu.used(), 0.0);
/// # Ok::<(), dataflower_sim::ExhaustedError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPool {
    total: f64,
    used: f64,
}

impl CapacityPool {
    /// Creates a pool with the given total capacity.
    ///
    /// # Panics
    ///
    /// Panics if `total` is negative or not finite.
    pub fn new(total: f64) -> Self {
        assert!(
            total.is_finite() && total >= 0.0,
            "pool capacity must be non-negative"
        );
        CapacityPool { total, used: 0.0 }
    }

    /// Total capacity.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Currently reserved amount.
    pub fn used(&self) -> f64 {
        self.used
    }

    /// Capacity still available.
    pub fn available(&self) -> f64 {
        (self.total - self.used).max(0.0)
    }

    /// Fraction in use (0.0–1.0); zero-capacity pools report 1.0.
    pub fn utilization(&self) -> f64 {
        if self.total <= 0.0 {
            1.0
        } else {
            (self.used / self.total).clamp(0.0, 1.0)
        }
    }

    /// True if `amount` could be reserved right now.
    pub fn fits(&self, amount: f64) -> bool {
        amount <= self.available() + 1e-9
    }

    /// Reserves `amount`.
    ///
    /// # Errors
    ///
    /// Returns [`ExhaustedError`] when the pool cannot fit `amount`; the
    /// pool is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite.
    pub fn reserve(&mut self, amount: f64) -> Result<(), ExhaustedError> {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "reserve amount must be non-negative"
        );
        if !self.fits(amount) {
            return Err(ExhaustedError {
                requested: amount,
                available: self.available(),
            });
        }
        self.used += amount;
        Ok(())
    }

    /// Releases a previous reservation of `amount`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when releasing more than is reserved (a
    /// double-free style accounting bug); release clamps at zero in
    /// release builds.
    pub fn release(&mut self, amount: f64) {
        debug_assert!(
            amount <= self.used + 1e-6,
            "releasing {amount} but only {} reserved",
            self.used
        );
        self.used = (self.used - amount).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut p = CapacityPool::new(10.0);
        p.reserve(4.0).unwrap();
        p.reserve(6.0).unwrap();
        assert_eq!(p.available(), 0.0);
        assert!(p.reserve(0.1).is_err());
        p.release(6.0);
        assert!(p.fits(5.0));
    }

    #[test]
    fn error_carries_amounts() {
        let mut p = CapacityPool::new(1.0);
        let err = p.reserve(2.0).unwrap_err();
        assert_eq!(err.requested, 2.0);
        assert_eq!(err.available, 1.0);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn utilization_bounds() {
        let mut p = CapacityPool::new(8.0);
        assert_eq!(p.utilization(), 0.0);
        p.reserve(8.0).unwrap();
        assert_eq!(p.utilization(), 1.0);
        assert_eq!(CapacityPool::new(0.0).utilization(), 1.0);
    }

    #[test]
    fn float_tolerance_on_exact_fit() {
        let mut p = CapacityPool::new(1.0);
        for _ in 0..10 {
            p.reserve(0.1).unwrap();
        }
        // 10 × 0.1 may exceed 1.0 by float error; fits() tolerance absorbs it.
        p.release(1.0);
        assert!(p.available() <= 1.0 + 1e-9);
    }
}
