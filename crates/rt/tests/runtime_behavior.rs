//! Behavioural tests of the live FLU/DLU runtime on real data.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use dataflower_rt::{
    Bytes, ClusterRtConfig, ClusterRuntime, ClusterRuntimeBuilder, LinkConfig, Placement, RtConfig,
    RtError, RuntimeBuilder,
};
use dataflower_workflow::{SizeModel, WorkModel, Workflow, WorkflowBuilder};

fn wc_workflow(fan_out: usize) -> Arc<Workflow> {
    let mut b = WorkflowBuilder::new("wc");
    let start = b.function("start", WorkModel::fixed(0.001));
    let merge = b.function("merge", WorkModel::fixed(0.001));
    b.client_input(start, "text", SizeModel::Fixed(1024.0));
    for i in 0..fan_out {
        let count = b.function(format!("count_{i}"), WorkModel::fixed(0.001));
        b.edge(start, count, "file", SizeModel::Fixed(256.0));
        b.edge(count, merge, "counts", SizeModel::Fixed(64.0));
    }
    b.client_output(merge, "result", SizeModel::Fixed(64.0));
    Arc::new(b.build().unwrap())
}

/// A complete, *real* word count: split text into N shards, count words
/// per shard, merge the count tables. Single-node special case of
/// `build_wc_cluster` (same bodies, same public API surface).
fn build_wc(fan_out: usize) -> ClusterRuntime {
    build_wc_cluster(
        fan_out,
        Placement::with_nodes(1),
        ClusterRtConfig::default(),
    )
}

#[test]
fn real_wordcount_counts_correctly() {
    let rt = build_wc(4);
    let text = "the quick brown fox jumps over the lazy dog the fox";
    let req = rt.invoke(vec![("text".into(), Bytes::from_static(text.as_bytes()))]);
    let outputs = rt.wait(req, Duration::from_secs(10)).unwrap();
    assert_eq!(outputs.len(), 1);
    let table = String::from_utf8_lossy(&outputs[0].1).into_owned();
    let get = |w: &str| -> u64 {
        table
            .lines()
            .find(|l| l.starts_with(&format!("{w} ")))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|c| c.parse().ok())
            .unwrap_or(0)
    };
    assert_eq!(get("the"), 3);
    assert_eq!(get("fox"), 2);
    assert_eq!(get("dog"), 1);
    let stats = rt.stats();
    assert_eq!(stats.invocations, 6); // start + 4 counts + merge
    rt.shutdown();
}

#[test]
fn concurrent_requests_are_isolated() {
    let rt = build_wc(2);
    let reqs: Vec<_> = (0..8)
        .map(|i| {
            let text = format!("alpha {} beta", "gamma ".repeat(i + 1));
            rt.invoke(vec![("text".into(), Bytes::from(text.into_bytes()))])
        })
        .collect();
    for (i, req) in reqs.into_iter().enumerate() {
        let outputs = rt.wait(req, Duration::from_secs(10)).unwrap();
        let table = String::from_utf8_lossy(&outputs[0].1).into_owned();
        let gamma_line = table
            .lines()
            .find(|l| l.starts_with("gamma "))
            .expect("gamma counted");
        assert_eq!(gamma_line, format!("gamma {}", i + 1));
    }
    rt.shutdown();
}

#[test]
fn unregistered_function_rejected_at_start() {
    let wf = wc_workflow(1);
    let err = RuntimeBuilder::new(wf).start().unwrap_err();
    assert!(matches!(err, RtError::UnregisteredFunction(_)));
}

#[test]
fn unknown_registration_rejected() {
    let wf = wc_workflow(1);
    let err = RuntimeBuilder::new(Arc::clone(&wf))
        .register("start", |_| {})
        .register("count_0", |_| {})
        .register("merge", |_| {})
        .register("ghost", |_| {})
        .start()
        .unwrap_err();
    assert!(matches!(err, RtError::UnknownFunction(n) if n == "ghost"));
}

#[test]
fn unknown_put_faults_the_request() {
    let wf = wc_workflow(1);
    let rt = RuntimeBuilder::new(wf)
        .register("start", |ctx| {
            ctx.put("file", Bytes::from_static(b"x"));
        })
        .register("count_0", |ctx| {
            ctx.put("no-such-edge", Bytes::from_static(b"y"));
        })
        .register("merge", |ctx| {
            ctx.put("result", Bytes::from_static(b"z"));
        })
        .start()
        .unwrap();
    let req = rt.invoke(vec![("text".into(), Bytes::from_static(b"hi"))]);
    let err = rt.wait(req, Duration::from_secs(5)).unwrap_err();
    assert!(matches!(err, RtError::Faulted(msg) if msg.contains("no-such-edge")));
    rt.shutdown();
}

#[test]
fn wait_times_out_when_a_function_stalls() {
    let wf = wc_workflow(1);
    let rt = RuntimeBuilder::new(wf)
        .register("start", |ctx| {
            ctx.put("file", Bytes::from_static(b"x"));
        })
        .register("count_0", |_ctx| {
            // Never puts: downstream never triggers.
        })
        .register("merge", |ctx| {
            ctx.put("result", Bytes::from_static(b"z"));
        })
        .start()
        .unwrap();
    let req = rt.invoke(vec![("text".into(), Bytes::from_static(b"hi"))]);
    assert_eq!(
        rt.wait(req, Duration::from_millis(200)).unwrap_err(),
        RtError::Timeout
    );
    rt.shutdown();
}

#[test]
fn wait_with_expired_deadline_times_out_instead_of_panicking() {
    // Regression test for the deadline arithmetic in `wait`: a wakeup
    // (or the first loop iteration) landing *after* the deadline used to
    // compute `deadline - now` with a panicking `Instant` subtraction.
    // The fix re-checks the deadline on every wakeup and saturates the
    // remaining-time computation, so an already-expired deadline — even
    // one raced past while the request lock was being acquired — must
    // yield a clean `Timeout`.
    let wf = wc_workflow(1);
    let rt = RuntimeBuilder::new(wf)
        .register("start", |ctx| {
            ctx.put("file", Bytes::from_static(b"x"));
        })
        .register("count_0", |_ctx| {
            // Never puts: the request can only ever time out.
        })
        .register("merge", |ctx| {
            ctx.put("result", Bytes::from_static(b"z"));
        })
        .start()
        .unwrap();
    let req = rt.invoke(vec![("text".into(), Bytes::from_static(b"hi"))]);
    // A zero timeout: the deadline is already (or about to be) in the
    // past when the wait loop first checks it.
    assert_eq!(rt.wait(req, Duration::ZERO).unwrap_err(), RtError::Timeout);
    // Repeated sub-millisecond waits keep racing the deadline across the
    // lock acquisition; none of them may panic.
    for _ in 0..50 {
        assert_eq!(
            rt.wait(req, Duration::from_nanos(1)).unwrap_err(),
            RtError::Timeout
        );
    }
    rt.shutdown();
}

#[test]
fn replicas_scale_out_executors() {
    let rt_builder_wf = wc_workflow(2);
    let rt = RuntimeBuilder::new(rt_builder_wf)
        .register("start", |ctx| {
            for i in 0..2 {
                ctx.put_to("file", format!("count_{i}"), Bytes::from_static(b"a b"));
            }
        })
        .register("count_0", |ctx| {
            std::thread::sleep(Duration::from_millis(20));
            ctx.put("counts", Bytes::from_static(b"a 1"));
        })
        .register("count_1", |ctx| {
            ctx.put("counts", Bytes::from_static(b"b 1"));
        })
        .register("merge", |ctx| {
            ctx.put("result", Bytes::from_static(b"ok"));
        })
        .replicas("count_0", 4)
        .start()
        .unwrap();
    assert_eq!(rt.replicas_of("count_0"), Some(4));
    assert_eq!(rt.replicas_of("merge"), Some(1));
    let reqs: Vec<_> = (0..8)
        .map(|_| rt.invoke(vec![("text".into(), Bytes::from_static(b"t"))]))
        .collect();
    for req in reqs {
        rt.wait(req, Duration::from_secs(10)).unwrap();
    }
    rt.shutdown();
}

#[test]
fn janitor_spills_unconsumed_inputs() {
    // count_1 never receives its shard (start only feeds count_0's edge),
    // so merge never fires and count_0's output sits in the sink past the
    // TTL.
    let wf = wc_workflow(2);
    let rt = RuntimeBuilder::new(wf)
        .config(RtConfig {
            sink_ttl: Some(Duration::from_millis(50)),
            ..RtConfig::default()
        })
        .register("start", |ctx| {
            ctx.put_to("file", "count_0", Bytes::from_static(b"solo"));
        })
        .register("count_0", |ctx| {
            ctx.put("counts", Bytes::from_static(b"solo 1"));
        })
        .register("count_1", |ctx| {
            ctx.put("counts", Bytes::from_static(b"never 0"));
        })
        .register("merge", |ctx| {
            ctx.put("result", Bytes::from_static(b"r"));
        })
        .start()
        .unwrap();
    let req = rt.invoke(vec![("text".into(), Bytes::from_static(b"x"))]);
    assert_eq!(
        rt.wait(req, Duration::from_millis(400)).unwrap_err(),
        RtError::Timeout
    );
    assert!(rt.stats().spills > 0, "janitor never spilled");
    rt.shutdown();
}

#[test]
fn mid_function_put_triggers_downstream_before_producer_returns() {
    // `start` puts its shard, then keeps "computing". The count function
    // signals through a side channel that it began while start was still
    // inside its body — the early-triggering property, live.
    use std::sync::atomic::{AtomicBool, Ordering};
    let started_early = Arc::new(AtomicBool::new(false));
    let start_running = Arc::new(AtomicBool::new(false));

    let wf = wc_workflow(1);
    let flag_c = Arc::clone(&started_early);
    let run_c = Arc::clone(&start_running);
    let run_s = Arc::clone(&start_running);
    let rt = RuntimeBuilder::new(wf)
        .register("start", move |ctx| {
            run_s.store(true, Ordering::SeqCst);
            ctx.put("file", Bytes::from_static(b"payload"));
            // Simulated tail of the computation.
            std::thread::sleep(Duration::from_millis(150));
            run_s.store(false, Ordering::SeqCst);
        })
        .register("count_0", move |ctx| {
            if run_c.load(Ordering::SeqCst) {
                flag_c.store(true, Ordering::SeqCst);
            }
            ctx.put("counts", Bytes::from_static(b"p 1"));
        })
        .register("merge", |ctx| {
            ctx.put("result", Bytes::from_static(b"done"));
        })
        .start()
        .unwrap();
    let req = rt.invoke(vec![("text".into(), Bytes::from_static(b"x"))]);
    rt.wait(req, Duration::from_secs(5)).unwrap();
    assert!(
        started_early.load(std::sync::atomic::Ordering::SeqCst),
        "count did not start while start was still running"
    );
    rt.shutdown();
}

// ---------------------------------------------------------------------
// Multi-node topology tests
// ---------------------------------------------------------------------

/// Builds the wordcount of `build_wc` on a ClusterRuntime with the given
/// placement and cluster config.
fn build_wc_cluster(fan_out: usize, placement: Placement, cfg: ClusterRtConfig) -> ClusterRuntime {
    let wf = wc_workflow(fan_out);
    let mut builder = ClusterRuntimeBuilder::new(Arc::clone(&wf))
        .placement(placement)
        .config(cfg)
        .register("start", move |ctx| {
            let text = String::from_utf8_lossy(ctx.input("text").expect("text input")).into_owned();
            let words: Vec<&str> = text.split_whitespace().collect();
            let shard = words.len().div_ceil(fan_out);
            for i in 0..fan_out {
                let lo = (i * shard).min(words.len());
                let hi = ((i + 1) * shard).min(words.len());
                ctx.put_to(
                    "file",
                    format!("count_{i}"),
                    Bytes::from(words[lo..hi].join(" ").into_bytes()),
                );
            }
        });
    for i in 0..fan_out {
        builder = builder.register(format!("count_{i}"), |ctx| {
            let text = String::from_utf8_lossy(ctx.input("file").expect("file input")).into_owned();
            let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
            for w in text.split_whitespace() {
                *counts.entry(w).or_default() += 1;
            }
            let serialized = counts
                .iter()
                .map(|(w, c)| format!("{w} {c}"))
                .collect::<Vec<_>>()
                .join("\n");
            ctx.put("counts", Bytes::from(serialized.into_bytes()));
        });
    }
    builder
        .register("merge", |ctx| {
            let mut total: BTreeMap<String, u64> = BTreeMap::new();
            for (name, payload) in ctx.inputs() {
                assert!(name.starts_with("counts@"), "unexpected input {name}");
                for line in String::from_utf8_lossy(payload).lines() {
                    let mut it = line.rsplitn(2, ' ');
                    let c: u64 = it.next().unwrap().parse().unwrap();
                    let w = it.next().unwrap().to_owned();
                    *total.entry(w).or_default() += c;
                }
            }
            let out = total
                .iter()
                .map(|(w, c)| format!("{w} {c}"))
                .collect::<Vec<_>>()
                .join("\n");
            ctx.put("result", Bytes::from(out.into_bytes()));
        })
        .start()
        .unwrap()
}

/// A corpus big enough that every shard crosses the 16 KiB direct-socket
/// threshold (so spread placements must stream through the remote pipe).
fn big_corpus() -> String {
    // ~360 KiB: each of 4 shards (~90 KiB) spans several 64 KiB chunks.
    "alpha beta gamma delta epsilon zeta ".repeat(10_000)
}

#[test]
fn spread_placement_counts_identically_to_single_node() {
    let fan_out = 4;
    let corpus = big_corpus();

    let single = build_wc_cluster(
        fan_out,
        Placement::with_nodes(1),
        ClusterRtConfig::default(),
    );
    let req = single.invoke(vec![("text".into(), Bytes::from(corpus.clone()))]);
    let reference = single.wait(req, Duration::from_secs(20)).unwrap();
    assert_eq!(single.stats().remote_pipe_transfers, 0);
    assert_eq!(single.stats().remote_bytes, 0);
    single.shutdown();

    // Three nodes, one per stage: every fan-out edge crosses 0 -> 1 and
    // every fan-in edge crosses 1 -> 2.
    let mut placement = Placement::with_nodes(3)
        .assign("start", 0)
        .assign("merge", 2);
    for i in 0..fan_out {
        placement = placement.assign(format!("count_{i}"), 1);
    }
    let spread = build_wc_cluster(fan_out, placement, ClusterRtConfig::default());
    assert_eq!(spread.node_count(), 3);
    assert_eq!(spread.node_of("start"), 0);
    assert_eq!(spread.node_of("count_1"), 1);
    assert_eq!(spread.node(1).hosted_functions().len(), fan_out);
    let req = spread.invoke(vec![("text".into(), Bytes::from(corpus))]);
    let outputs = spread.wait(req, Duration::from_secs(20)).unwrap();
    assert_eq!(outputs, reference, "spread result differs from single-node");

    let stats = spread.stats();
    // The big shards streamed through the remote pipe in chunks...
    assert_eq!(stats.remote_pipe_transfers, fan_out as u64);
    assert!(stats.remote_chunks > stats.remote_pipe_transfers);
    // ...while the small count tables crossed over the direct socket.
    assert_eq!(stats.direct_socket_transfers, fan_out as u64);
    assert_eq!(stats.local_pipe_transfers, 0);
    assert!(stats.remote_bytes > 0);
    spread.shutdown();
}

#[test]
fn tiny_chunks_and_shaped_links_still_reassemble() {
    let fan_out = 2;
    let cfg = ClusterRtConfig {
        chunk_bytes: 512,
        checkpoint_interval_bytes: 2048,
        link: LinkConfig {
            latency: Duration::from_micros(200),
            bandwidth_bytes_per_sec: Some(400.0 * 1024.0 * 1024.0),
            queue_capacity: 4, // deliberately tight: exercises link backpressure
        },
        ..ClusterRtConfig::default()
    };
    let wf_placement = Placement::with_nodes(2)
        .assign("start", 0)
        .assign("count_0", 1)
        .assign("count_1", 1)
        .assign("merge", 0);
    let rt = build_wc_cluster(fan_out, wf_placement, cfg);
    let corpus = big_corpus();
    let expected_words = corpus.split_whitespace().count() as u64;
    let req = rt.invoke(vec![("text".into(), Bytes::from(corpus))]);
    let outputs = rt.wait(req, Duration::from_secs(30)).unwrap();
    let table = String::from_utf8_lossy(&outputs[0].1).into_owned();
    let total: u64 = table
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(total, expected_words, "words lost or duplicated in transit");
    let stats = rt.stats();
    assert!(stats.remote_chunks >= 100, "chunking barely exercised");
    assert!(stats.remote_checkpoints > 0, "no checkpoint marks recorded");
    rt.shutdown();
}

#[test]
fn invalid_placement_rejected_at_start() {
    let wf = wc_workflow(1);
    let err = ClusterRuntimeBuilder::new(Arc::clone(&wf))
        .placement(Placement::with_nodes(2).assign("ghost", 0))
        .register("start", |_| {})
        .register("count_0", |_| {})
        .register("merge", |_| {})
        .start()
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidPlacement(msg) if msg.contains("ghost")));

    let err = ClusterRuntimeBuilder::new(wf)
        .placement(Placement::with_nodes(2).assign("start", 5))
        .register("start", |_| {})
        .register("count_0", |_| {})
        .register("merge", |_| {})
        .start()
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidPlacement(msg) if msg.contains("node 5")));
}

#[test]
fn forget_releases_abandoned_request_state() {
    // start feeds only count_0, so merge never fires: the count table
    // parks in merge's sink and the request times out.
    let wf = wc_workflow(2);
    let rt = ClusterRuntimeBuilder::new(wf)
        .register("start", |ctx| {
            ctx.put_to("file", "count_0", Bytes::from_static(b"solo"));
        })
        .register("count_0", |ctx| {
            ctx.put("counts", Bytes::from_static(b"solo 1"));
        })
        .register("count_1", |ctx| {
            ctx.put("counts", Bytes::from_static(b"never 0"));
        })
        .register("merge", |ctx| {
            ctx.put("result", Bytes::from_static(b"r"));
        })
        .start()
        .unwrap();
    let req = rt.invoke(vec![("text".into(), Bytes::from_static(b"x"))]);
    assert_eq!(
        rt.wait(req, Duration::from_millis(300)).unwrap_err(),
        RtError::Timeout
    );
    assert!(
        rt.node(0).parked_entries() > 0,
        "count table should be parked"
    );
    rt.forget(req);
    assert_eq!(
        rt.node(0).parked_entries(),
        0,
        "forget must drop sink state"
    );
    assert_eq!(
        rt.wait(req, Duration::from_millis(10)).unwrap_err(),
        RtError::UnknownRequest
    );
    rt.shutdown();
}

#[test]
fn pressure_scales_executors_out_and_back_in() {
    use dataflower_rt::{AutoscaleConfig, ScaleDirection};

    // producer → sink across a deliberately slow link: the producer's
    // DLU backs up behind the shaped fabric, Eq. 1 pressure rises, the
    // autoscaler grows the pool; once drained it shrinks it again.
    let mut b = WorkflowBuilder::new("pipe");
    let producer = b.function("producer", WorkModel::fixed(0.001));
    let sink = b.function("sink", WorkModel::fixed(0.001));
    b.client_input(producer, "in", SizeModel::Fixed(1024.0));
    b.edge(producer, sink, "blob", SizeModel::Fixed(1024.0));
    b.client_output(sink, "out", SizeModel::Fixed(8.0));
    let wf = Arc::new(b.build().unwrap());

    let cfg = ClusterRtConfig {
        rt: RtConfig {
            dlu_queue_capacity: 4,
            ..RtConfig::default()
        },
        link: LinkConfig {
            bandwidth_bytes_per_sec: Some(8.0 * 1024.0 * 1024.0),
            queue_capacity: 4,
            ..LinkConfig::default()
        },
        autoscale: AutoscaleConfig {
            enabled: true,
            min_replicas: 1,
            max_replicas: 3,
            pressure_threshold_secs: 0.001,
            drain_bw_bytes_per_sec: 4.0 * 1024.0 * 1024.0,
            cooldown: Duration::from_millis(20),
            sample_interval: Duration::from_millis(1),
            ..AutoscaleConfig::default()
        },
        ..ClusterRtConfig::default()
    };
    let rt = ClusterRuntimeBuilder::new(wf)
        .placement(
            Placement::with_nodes(2)
                .assign("producer", 0)
                .assign("sink", 1),
        )
        .config(cfg)
        .register("producer", |ctx| {
            let blob = vec![0x5au8; 192 * 1024];
            ctx.put("blob", Bytes::from(blob));
        })
        .register("sink", |ctx| {
            let blob = ctx.input("blob").expect("blob");
            ctx.put("out", Bytes::from(vec![blob[0]]));
        })
        .start()
        .unwrap();

    // A burst of requests: ~3 MiB over an 8 MiB/s link keeps the
    // producer's DLU visibly backed up for hundreds of milliseconds.
    let reqs: Vec<_> = (0..16)
        .map(|_| rt.invoke(vec![("in".into(), Bytes::from_static(b"go"))]))
        .collect();
    for req in reqs {
        let outputs = rt.wait(req, Duration::from_secs(30)).unwrap();
        assert_eq!(outputs[0].1.as_ref(), &[0x5a]);
    }

    // Drained: wait (bounded) for the cool-down-guarded scale-in.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while rt.stats().scale_in_events == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }

    let stats = rt.stats();
    assert!(
        stats.scale_out_events >= 1,
        "burst must trigger a scale-out"
    );
    assert!(stats.scale_in_events >= 1, "drain must trigger a scale-in");
    let replicas = rt.replicas_of("producer").unwrap();
    assert!(
        (1..=3).contains(&replicas),
        "pool outside bounds: {replicas}"
    );

    // The timeline tells the same story: at least one Out then one In
    // for the producer, in time order, all within [min, max].
    let timeline = rt.scaling_timeline();
    assert!(timeline.windows(2).all(|w| w[0].at <= w[1].at));
    assert!(timeline
        .iter()
        .any(|e| e.function == "producer" && e.direction == ScaleDirection::Out));
    assert!(timeline.iter().any(|e| e.direction == ScaleDirection::In));
    assert!(timeline
        .iter()
        .all(|e| e.to_replicas >= 1 && e.to_replicas <= 3));
    let replica_series = rt.replica_timeline();
    assert!(replica_series.max_value("producer") >= 2.0);
    rt.shutdown();
}

#[test]
fn disabled_autoscaler_keeps_pools_fixed() {
    let rt = build_wc(2);
    let req = rt.invoke(vec![("text".into(), Bytes::from_static(b"a b a"))]);
    rt.wait(req, Duration::from_secs(10)).unwrap();
    let stats = rt.stats();
    assert_eq!(stats.scale_out_events, 0);
    assert_eq!(stats.scale_in_events, 0);
    assert!(rt.scaling_timeline().is_empty());
    assert_eq!(rt.replicas_of("start"), Some(1));
    rt.shutdown();
}

// ---------------------------------------------------------------------
// Checkpoint-based fault recovery (§6.2)
// ---------------------------------------------------------------------

use dataflower_rt::{FaultPlan, RecoveryConfig};

/// Cluster config for the recovery tests: start and merge on node 0,
/// the counters on node 1, tiny chunks and checkpoint intervals so even
/// modest shards cross several marks, and a link slow enough that a
/// crash can reliably land mid-transfer.
fn recovery_cfg() -> ClusterRtConfig {
    ClusterRtConfig {
        chunk_bytes: 4 * 1024,
        checkpoint_interval_bytes: 8 * 1024,
        link: LinkConfig {
            bandwidth_bytes_per_sec: Some(4.0 * 1024.0 * 1024.0),
            ..LinkConfig::default()
        },
        recovery: RecoveryConfig {
            enabled: true,
            retransmit_timeout: Duration::from_millis(50),
        },
        ..ClusterRtConfig::default()
    }
}

fn counts_on_node1(fan_out: usize) -> Placement {
    let mut p = Placement::with_nodes(2)
        .assign("start", 0)
        .assign("merge", 0);
    for i in 0..fan_out {
        p = p.assign(format!("count_{i}"), 1);
    }
    p
}

/// Reference output of the wordcount used by the recovery tests,
/// computed on a fault-free single-node runtime.
fn wc_reference(fan_out: usize, corpus: &str) -> Bytes {
    let rt = build_wc(fan_out);
    let req = rt.invoke(vec![("text".into(), Bytes::from(corpus.to_owned()))]);
    let out = rt.wait(req, Duration::from_secs(30)).unwrap();
    rt.shutdown();
    out[0].1.clone()
}

#[test]
fn crash_mid_transfer_recovers_byte_identically_from_the_last_mark() {
    let fan_out = 4;
    let corpus = big_corpus();
    let expected = wc_reference(fan_out, &corpus);

    let rt = build_wc_cluster(fan_out, counts_on_node1(fan_out), recovery_cfg());
    let req = rt.invoke(vec![("text".into(), Bytes::from(corpus.clone()))]);

    // Wait until node 1 is mid-reassembly past at least one checkpoint
    // mark, then crash it. The loop tolerates unlucky timing (a probe
    // that lands between transfers restarts the node and tries again).
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let crash = loop {
        assert!(
            std::time::Instant::now() < deadline,
            "never caught an in-flight checkpointed transfer"
        );
        if rt.node(1).inflight_transfers() > 0 && rt.stats().acked_marks > 0 {
            let report = rt.crash_node(1);
            if report.was_up && report.inflight_transfers > 0 && report.durable_bytes > 0 {
                break report;
            }
            rt.restart_node(1);
        }
        std::thread::sleep(Duration::from_micros(200));
    };
    assert!(rt.node(1).is_down());
    std::thread::sleep(Duration::from_millis(10)); // outage: frames are lost
    rt.restart_node(1);
    assert!(!rt.node(1).is_down());

    let outputs = rt.wait(req, Duration::from_secs(30)).expect("recovered");
    assert_eq!(outputs[0].1, expected, "recovery must be byte-identical");

    assert_eq!(crash.node, 1);
    let stats = rt.stats();
    assert!(stats.node_crashes >= 1);
    assert!(stats.node_restarts >= stats.node_crashes);
    assert!(stats.recovered_transfers > 0, "restart replayed nothing");
    assert!(
        stats.resumed_from_mark_bytes > 0,
        "recovery restarted from byte 0 instead of the last checkpoint mark"
    );
    assert!(stats.replayed_bytes > 0);
    assert!(
        stats.frames_lost_to_crashes > 0,
        "the outage lost no frames"
    );
    assert_retention_drains(&rt);
    rt.shutdown();
}

/// Asserts the runtime's §6.2 retention windows drain to empty once the
/// workload quiesces. Acks run on the shipper threads, so drain briefly
/// lags `wait` returning; anything retained past a couple of retransmit
/// rounds is a real leak.
fn assert_retention_drains(rt: &ClusterRuntime) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while rt.retained_transfers() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "retention leaked: {} transfer(s) never acked",
            rt.retained_transfers()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn crash_without_recovery_wedges_the_request() {
    let fan_out = 2;
    let cfg = ClusterRtConfig {
        link: LinkConfig {
            bandwidth_bytes_per_sec: Some(1024.0 * 1024.0),
            ..LinkConfig::default()
        },
        ..ClusterRtConfig::default() // recovery disabled
    };
    let rt = build_wc_cluster(fan_out, counts_on_node1(fan_out), cfg);
    rt.crash_node(1);
    let req = rt.invoke(vec![("text".into(), Bytes::from(big_corpus()))]);
    // The shards die at the dead node's ingress and nothing brings them
    // back: this is exactly the pre-recovery failure mode.
    assert!(matches!(
        rt.wait(req, Duration::from_millis(400)),
        Err(RtError::Timeout)
    ));
    rt.restart_node(1);
    rt.forget(req);
    rt.shutdown();
}

#[test]
fn seeded_fault_plan_chaos_stays_lossless_with_recovery() {
    let fan_out = 4;
    let corpus = big_corpus();
    let expected = wc_reference(fan_out, &corpus);

    let mut cfg = recovery_cfg();
    cfg.faults = FaultPlan::seeded(2026)
        .frame_chaos(0.08, 0.05)
        .delay_frames(0.02, Duration::from_millis(1))
        .kill_node(1, 30, Duration::from_millis(15));
    let rt = build_wc_cluster(fan_out, counts_on_node1(fan_out), cfg);
    let req = rt.invoke(vec![("text".into(), Bytes::from(corpus.clone()))]);
    let outputs = rt
        .wait(req, Duration::from_secs(60))
        .expect("survived chaos");
    assert_eq!(outputs[0].1, expected);

    let stats = rt.stats();
    assert!(stats.chaos_dropped_frames > 0, "the plan dropped nothing");
    assert!(stats.node_crashes >= 1, "the plan's kill never fired");
    assert_eq!(stats.node_crashes, stats.node_restarts);
    assert_retention_drains(&rt);
    rt.shutdown();
}

#[test]
fn duplicated_final_chunk_leaves_no_ghost_reassembler() {
    // `merge` needs a big chunked transfer plus a gate input that
    // arrives late, so the request is still parked when the duplicate
    // of the transfer's final chunk lands. A regression here re-creates
    // a never-completing reassembler for the already-finished transfer
    // (pinning a transfer-sized buffer and inflating the in-flight
    // gauge); the `done` set must recognize and ack the duplicate away.
    let mut b = dataflower_workflow::WorkflowBuilder::new("gated");
    let src = b.function("src", dataflower_workflow::WorkModel::fixed(0.001));
    let gate = b.function("gate", dataflower_workflow::WorkModel::fixed(0.001));
    let merge = b.function("merge", dataflower_workflow::WorkModel::fixed(0.001));
    b.client_input(src, "in", dataflower_workflow::SizeModel::Fixed(1024.0));
    b.client_input(gate, "go", dataflower_workflow::SizeModel::Fixed(8.0));
    b.edge(
        src,
        merge,
        "big",
        dataflower_workflow::SizeModel::Fixed(65536.0),
    );
    b.edge(
        gate,
        merge,
        "late",
        dataflower_workflow::SizeModel::Fixed(8.0),
    );
    b.client_output(merge, "out", dataflower_workflow::SizeModel::Fixed(8.0));
    let wf = Arc::new(b.build().unwrap());

    let mut cfg = recovery_cfg();
    cfg.link.bandwidth_bytes_per_sec = None; // unshaped: transfer finishes fast
    cfg.faults = FaultPlan::seeded(3).frame_chaos(0.0, 1.0); // duplicate EVERY frame
    let rt = ClusterRuntimeBuilder::new(Arc::clone(&wf))
        .placement(
            Placement::with_nodes(2)
                .assign("src", 0)
                .assign("gate", 0)
                .assign("merge", 1),
        )
        .config(cfg)
        .register("src", |ctx| {
            ctx.put("big", Bytes::from(vec![0xab; 64 * 1024]));
        })
        .register("gate", |ctx| {
            // Keep the request parked while the transfer (and its
            // duplicated final chunk) lands.
            std::thread::sleep(Duration::from_millis(150));
            ctx.put("late", Bytes::from_static(b"go"));
        })
        .register("merge", |ctx| {
            assert_eq!(ctx.input("big").unwrap().len(), 64 * 1024);
            ctx.put("out", Bytes::from_static(b"done"));
        })
        .start()
        .unwrap();

    let req = rt.invoke(vec![
        ("in".into(), Bytes::from_static(b"x")),
        ("go".into(), Bytes::from_static(b"y")),
    ]);
    // The big transfer parks in node 1's sink while `gate` sleeps; once
    // it is parked, every chunk — including the duplicated final one —
    // has been through ingress, and no ghost may remain in-flight.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while rt.node(1).parked_entries() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "transfer never parked"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        rt.node(1).inflight_transfers(),
        0,
        "a duplicated final chunk resurrected a completed transfer"
    );
    let outputs = rt.wait(req, Duration::from_secs(10)).unwrap();
    assert_eq!(&*outputs[0].1, b"done");
    assert_retention_drains(&rt);
    rt.shutdown();
}
