//! Runtime errors.

use std::fmt;

/// Error produced by the live runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtError {
    /// A workflow function has no registered body.
    UnregisteredFunction(String),
    /// A registration names a function the workflow does not declare.
    UnknownFunction(String),
    /// `wait` hit its deadline before all results arrived.
    Timeout,
    /// A function body reported an error (details inside).
    Faulted(String),
    /// The request id was never issued (or already collected).
    UnknownRequest,
    /// The placement map names an unknown function or an out-of-range
    /// node (details inside).
    InvalidPlacement(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::UnregisteredFunction(n) => {
                write!(f, "workflow function `{n}` has no registered body")
            }
            RtError::UnknownFunction(n) => {
                write!(f, "no workflow function named `{n}`")
            }
            RtError::Timeout => write!(f, "timed out waiting for workflow results"),
            RtError::Faulted(msg) => write!(f, "workflow faulted: {msg}"),
            RtError::UnknownRequest => write!(f, "unknown or already-collected request"),
            RtError::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
        }
    }
}

impl std::error::Error for RtError {}
