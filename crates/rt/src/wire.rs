//! The versioned binary frame format of the TCP fabric — how a
//! [`NetMsg`](crate::fabric) crosses a real socket in
//! worker-process mode.
//!
//! # Wire format
//!
//! Every frame is an 8-byte header followed by a `body_len`-byte body:
//!
//! ```text
//! offset  size  field
//! 0       1     magic     0xDF
//! 1       1     version   currently 1
//! 2       1     kind      1 Hello · 2 Whole · 3 Chunk · 4 AckMark · 5 AckComplete
//! 3       1     flags     0 (reserved)
//! 4       4     body_len  u32, little-endian, at most 64 MiB
//! ```
//!
//! All multi-byte integers are little-endian. Bodies:
//!
//! * **Hello** — `node: u32`, `epoch: u32`. The first frame on every
//!   connection; identifies the sending endpoint and its process epoch.
//! * **Whole** — `req: u64`, `edge: u32`, `transfer: u64`,
//!   `key_len: u16`, `key` bytes, then the payload to the end of the
//!   body.
//! * **Chunk** — `req: u64`, `edge: u32`, `transfer: u64`,
//!   `offset: u64`, `total: u64`, `key_len: u16`, `key` bytes, then the
//!   chunk bytes to the end of the body.
//! * **AckMark** — `transfer: u64`, `mark: u64`.
//! * **AckComplete** — `transfer: u64`.
//!
//! Framing rules: frames are self-delimiting (fixed header carries the
//! body length), carry no padding, and must appear back-to-back on the
//! stream. A receiver that sees a wrong magic, an unknown version or
//! kind, or an oversized body must drop the connection — there is no
//! resynchronization, the sender's retention/replay protocol (§6.2)
//! heals a torn connection instead.
//!
//! Encoding is zero-copy on the send side: [`encode_parts`] returns the
//! header and fixed fields as one small buffer plus the payload as a
//! refcounted [`Bytes`] view, so a chunk of a streamed transfer is never
//! memcpy'd into a contiguous frame. [`Decoder`] is incremental and
//! handles arbitrarily torn reads (a frame split mid-header or mid-body
//! across `feed` calls decodes identically).
//!
//! # Examples
//!
//! ```
//! use dataflower_rt::wire::{encode_into, Decoder, Frame};
//! use dataflower_rt::Bytes;
//!
//! let frame = Frame::Whole {
//!     req: 7,
//!     edge: 3,
//!     key: "shard@split".into(),
//!     transfer: 42,
//!     payload: Bytes::from(vec![1, 2, 3]),
//! };
//! let mut stream = Vec::new();
//! encode_into(&frame, &mut stream);
//!
//! // Feed the encoded bytes one at a time: torn headers and short
//! // reads must not confuse the decoder.
//! let mut dec = Decoder::new();
//! let mut out = Vec::new();
//! for b in &stream {
//!     dec.feed(std::slice::from_ref(b));
//!     while let Some(f) = dec.next_frame().unwrap() {
//!         out.push(f);
//!     }
//! }
//! assert_eq!(out, vec![frame]);
//! ```

use std::fmt;

use dataflower_workflow::EdgeId;

use crate::bytes::Bytes;
use crate::fabric::NetMsg;

/// First byte of every frame.
pub const MAGIC: u8 = 0xDF;
/// The wire-format version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 8;
/// Largest admissible frame body. Far above any real frame (chunks are
/// tens of KiB); a body length past this means a corrupt or hostile
/// stream and the connection is dropped.
pub const MAX_BODY: usize = 64 * 1024 * 1024;

const KIND_HELLO: u8 = 1;
const KIND_WHOLE: u8 = 2;
const KIND_CHUNK: u8 = 3;
const KIND_ACK_MARK: u8 = 4;
const KIND_ACK_COMPLETE: u8 = 5;

/// One decoded frame of the TCP fabric. The data-plane variants mirror
/// the in-process `NetMsg` protocol exactly (same transfer ids, same
/// retransmission-safe semantics); `Hello` exists only on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection preamble: who is talking and which incarnation.
    Hello {
        /// Sending endpoint index (worker node id, or the coordinator's
        /// endpoint index `node_count`).
        node: u32,
        /// Process epoch of the sender — bumped on every worker restart
        /// so transfer ids never collide across incarnations.
        epoch: u32,
    },
    /// An unchunked transfer (direct-socket pipe).
    Whole {
        /// Request id.
        req: u64,
        /// Workflow edge index.
        edge: u32,
        /// Sink key (`data@producer`).
        key: String,
        /// Transfer id for retention acks.
        transfer: u64,
        /// The payload.
        payload: Bytes,
    },
    /// One chunk of a streaming remote-pipe transfer.
    Chunk {
        /// Request id.
        req: u64,
        /// Workflow edge index.
        edge: u32,
        /// Sink key (`data@producer`).
        key: String,
        /// Transfer id.
        transfer: u64,
        /// Byte offset of this chunk in the transfer.
        offset: u64,
        /// Announced transfer size.
        total: u64,
        /// The chunk bytes.
        bytes: Bytes,
    },
    /// Ack of a durable checkpoint mark (destination → sender).
    AckMark {
        /// Acknowledged transfer.
        transfer: u64,
        /// Durable contiguous prefix.
        mark: u64,
    },
    /// Ack of full delivery (destination → sender).
    AckComplete {
        /// Acknowledged transfer.
        transfer: u64,
    },
}

/// Why a stream failed to decode. Any of these is fatal for the
/// connection that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// First header byte was not [`MAGIC`].
    BadMagic(u8),
    /// Unsupported wire-format version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// Body length exceeds [`MAX_BODY`].
    Oversize(u32),
    /// The body ended before the frame's fixed fields (or its key) did.
    Truncated,
    /// A key field was not valid UTF-8.
    BadKey,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(n) => write!(f, "frame body of {n} bytes exceeds the cap"),
            WireError::Truncated => write!(f, "frame body truncated"),
            WireError::BadKey => write!(f, "frame key is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes `frame` into its send-side parts: one small buffer holding
/// the header plus every fixed field, and — for `Whole`/`Chunk` — the
/// payload as a zero-copy [`Bytes`] view to be written right behind it.
/// Writing the two parts back-to-back produces exactly the stream
/// [`Decoder`] consumes; the payload bytes are never copied.
///
/// # Panics
///
/// Panics if a key exceeds `u16::MAX` bytes or the body would exceed
/// [`MAX_BODY`] — both impossible for frames the runtime produces.
pub fn encode_parts(frame: &Frame) -> (Vec<u8>, Option<Bytes>) {
    let mut head = Vec::with_capacity(HEADER_LEN + 48);
    head.extend_from_slice(&[MAGIC, VERSION, 0, 0, 0, 0, 0, 0]);
    let payload = match frame {
        Frame::Hello { node, epoch } => {
            head[2] = KIND_HELLO;
            put_u32(&mut head, *node);
            put_u32(&mut head, *epoch);
            None
        }
        Frame::Whole {
            req,
            edge,
            key,
            transfer,
            payload,
        } => {
            head[2] = KIND_WHOLE;
            put_u64(&mut head, *req);
            put_u32(&mut head, *edge);
            put_u64(&mut head, *transfer);
            assert!(key.len() <= u16::MAX as usize, "sink key too long");
            put_u16(&mut head, key.len() as u16);
            head.extend_from_slice(key.as_bytes());
            Some(payload.clone())
        }
        Frame::Chunk {
            req,
            edge,
            key,
            transfer,
            offset,
            total,
            bytes,
        } => {
            head[2] = KIND_CHUNK;
            put_u64(&mut head, *req);
            put_u32(&mut head, *edge);
            put_u64(&mut head, *transfer);
            put_u64(&mut head, *offset);
            put_u64(&mut head, *total);
            assert!(key.len() <= u16::MAX as usize, "sink key too long");
            put_u16(&mut head, key.len() as u16);
            head.extend_from_slice(key.as_bytes());
            Some(bytes.clone())
        }
        Frame::AckMark { transfer, mark } => {
            head[2] = KIND_ACK_MARK;
            put_u64(&mut head, *transfer);
            put_u64(&mut head, *mark);
            None
        }
        Frame::AckComplete { transfer } => {
            head[2] = KIND_ACK_COMPLETE;
            put_u64(&mut head, *transfer);
            None
        }
    };
    let body_len = head.len() - HEADER_LEN + payload.as_ref().map_or(0, Bytes::len);
    assert!(body_len <= MAX_BODY, "frame body exceeds the wire cap");
    head[4..8].copy_from_slice(&(body_len as u32).to_le_bytes());
    (head, payload)
}

/// Encodes `frame` contiguously into `out` (header, fields, payload).
/// The copying convenience form of [`encode_parts`] — what tests and
/// the checkpoint log use; the socket send path writes the two parts
/// separately to stay zero-copy.
pub fn encode_into(frame: &Frame, out: &mut Vec<u8>) {
    let (head, payload) = encode_parts(frame);
    out.extend_from_slice(&head);
    if let Some(p) = payload {
        out.extend_from_slice(&p);
    }
}

/// Cursor over one frame body during decode.
struct BodyReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.body.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.body[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn key(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadKey)
    }

    fn rest(&mut self) -> Bytes {
        let s = &self.body[self.pos..];
        self.pos = self.body.len();
        Bytes::from(s.to_vec())
    }
}

fn decode_body(kind: u8, body: &[u8]) -> Result<Frame, WireError> {
    let mut r = BodyReader { body, pos: 0 };
    let frame = match kind {
        KIND_HELLO => Frame::Hello {
            node: r.u32()?,
            epoch: r.u32()?,
        },
        KIND_WHOLE => Frame::Whole {
            req: r.u64()?,
            edge: r.u32()?,
            transfer: r.u64()?,
            key: r.key()?,
            payload: r.rest(),
        },
        KIND_CHUNK => {
            let req = r.u64()?;
            let edge = r.u32()?;
            let transfer = r.u64()?;
            let offset = r.u64()?;
            let total = r.u64()?;
            let key = r.key()?;
            Frame::Chunk {
                req,
                edge,
                key,
                transfer,
                offset,
                total,
                bytes: r.rest(),
            }
        }
        KIND_ACK_MARK => Frame::AckMark {
            transfer: r.u64()?,
            mark: r.u64()?,
        },
        KIND_ACK_COMPLETE => Frame::AckComplete { transfer: r.u64()? },
        other => return Err(WireError::BadKind(other)),
    };
    Ok(frame)
}

/// Incremental frame decoder: feed it whatever the socket produced —
/// any split, down to one byte at a time — and drain complete frames
/// with [`Decoder::next_frame`]. A `Whole`/`Chunk` frame reordered or torn
/// across reads decodes byte-identically to a single contiguous read.
#[derive(Default)]
pub struct Decoder {
    buf: Vec<u8>,
    pos: usize,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Appends raw stream bytes to the decode buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so a long-lived
        // connection's buffer stays bounded by one frame plus a read.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes the next complete frame, `Ok(None)` while the buffered
    /// bytes still end mid-header or mid-body. An `Err` is fatal: the
    /// stream is corrupt and the connection must be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        if avail[0] != MAGIC {
            return Err(WireError::BadMagic(avail[0]));
        }
        if avail[1] != VERSION {
            return Err(WireError::BadVersion(avail[1]));
        }
        let body_len = u32::from_le_bytes(avail[4..8].try_into().unwrap());
        if body_len as usize > MAX_BODY {
            return Err(WireError::Oversize(body_len));
        }
        let frame_len = HEADER_LEN + body_len as usize;
        if avail.len() < frame_len {
            return Ok(None);
        }
        let kind = avail[2];
        let frame = decode_body(kind, &avail[HEADER_LEN..frame_len])?;
        self.pos += frame_len;
        Ok(Some(frame))
    }
}

impl fmt::Debug for Decoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Decoder")
            .field("buffered", &(self.buf.len() - self.pos))
            .finish()
    }
}

/// The wire frame of one in-process fabric message.
pub(crate) fn frame_of(msg: &NetMsg) -> Frame {
    match msg {
        NetMsg::Whole {
            req,
            edge,
            key,
            transfer,
            payload,
        } => Frame::Whole {
            req: *req,
            edge: edge.index() as u32,
            key: key.clone(),
            transfer: *transfer,
            payload: payload.clone(),
        },
        NetMsg::Chunk {
            req,
            edge,
            key,
            transfer,
            offset,
            total,
            bytes,
        } => Frame::Chunk {
            req: *req,
            edge: edge.index() as u32,
            key: key.clone(),
            transfer: *transfer,
            offset: *offset as u64,
            total: *total as u64,
            bytes: bytes.clone(),
        },
        NetMsg::AckMark { transfer, mark } => Frame::AckMark {
            transfer: *transfer,
            mark: *mark as u64,
        },
        NetMsg::AckComplete { transfer } => Frame::AckComplete {
            transfer: *transfer,
        },
    }
}

/// The fabric message of one decoded wire frame; `None` for the
/// connection-level `Hello` preamble, which never enters the data plane.
pub(crate) fn net_of(frame: Frame) -> Option<NetMsg> {
    match frame {
        Frame::Hello { .. } => None,
        Frame::Whole {
            req,
            edge,
            key,
            transfer,
            payload,
        } => Some(NetMsg::Whole {
            req,
            edge: EdgeId::from_index(edge as usize),
            key,
            transfer,
            payload,
        }),
        Frame::Chunk {
            req,
            edge,
            key,
            transfer,
            offset,
            total,
            bytes,
        } => Some(NetMsg::Chunk {
            req,
            edge: EdgeId::from_index(edge as usize),
            key,
            transfer,
            offset: offset as usize,
            total: total as usize,
            bytes,
        }),
        Frame::AckMark { transfer, mark } => Some(NetMsg::AckMark {
            transfer,
            mark: mark as usize,
        }),
        Frame::AckComplete { transfer } => Some(NetMsg::AckComplete { transfer }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { node: 2, epoch: 5 },
            Frame::Whole {
                req: 1,
                edge: 0,
                key: "out@f".into(),
                transfer: 10,
                payload: Bytes::from(vec![9u8; 33]),
            },
            Frame::Chunk {
                req: 1,
                edge: 4,
                key: "mid@g".into(),
                transfer: 11,
                offset: 4096,
                total: 65536,
                bytes: Bytes::from((0..255u8).collect::<Vec<_>>()),
            },
            Frame::AckMark {
                transfer: 11,
                mark: 8192,
            },
            Frame::AckComplete { transfer: 10 },
            Frame::Whole {
                req: 2,
                edge: 1,
                key: String::new(),
                transfer: 12,
                payload: Bytes::from(Vec::new()), // empty payload
            },
        ]
    }

    #[test]
    fn every_kind_roundtrips_contiguously() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            encode_into(f, &mut stream);
        }
        let mut dec = Decoder::new();
        dec.feed(&stream);
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame().unwrap() {
            out.push(f);
        }
        assert_eq!(out, frames);
        assert!(dec.next_frame().unwrap().is_none(), "stream fully consumed");
    }

    #[test]
    fn torn_reads_roundtrip_byte_identically() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            encode_into(f, &mut stream);
        }
        // Worst case: one byte per feed — every header and body is torn.
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for b in &stream {
            dec.feed(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, frames);
    }

    #[test]
    fn encode_parts_is_zero_copy_on_the_payload() {
        let payload = Bytes::from(vec![7u8; 128]);
        let frame = Frame::Whole {
            req: 0,
            edge: 0,
            key: "k".into(),
            transfer: 1,
            payload: payload.clone(),
        };
        let (head, body) = encode_parts(&frame);
        let body = body.expect("whole frames carry a payload part");
        // Same allocation: the encoder only cloned the refcounted view.
        assert!(std::ptr::eq(body.as_ref(), payload.as_ref()));
        // header + fields + payload re-assembles to the contiguous form.
        let mut contiguous = Vec::new();
        encode_into(&frame, &mut contiguous);
        let mut glued = head;
        glued.extend_from_slice(&body);
        assert_eq!(glued, contiguous);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let mut good = Vec::new();
        encode_into(&Frame::AckComplete { transfer: 3 }, &mut good);

        let mut bad_magic = good.clone();
        bad_magic[0] = 0x00;
        let mut dec = Decoder::new();
        dec.feed(&bad_magic);
        assert_eq!(dec.next_frame(), Err(WireError::BadMagic(0x00)));

        let mut bad_version = good.clone();
        bad_version[1] = 9;
        let mut dec = Decoder::new();
        dec.feed(&bad_version);
        assert_eq!(dec.next_frame(), Err(WireError::BadVersion(9)));

        let mut bad_kind = good.clone();
        bad_kind[2] = 77;
        let mut dec = Decoder::new();
        dec.feed(&bad_kind);
        assert_eq!(dec.next_frame(), Err(WireError::BadKind(77)));

        let mut oversize = good.clone();
        oversize[4..8].copy_from_slice(&(MAX_BODY as u32 + 1).to_le_bytes());
        let mut dec = Decoder::new();
        dec.feed(&oversize);
        assert!(matches!(dec.next_frame(), Err(WireError::Oversize(_))));

        // Body shorter than the frame's fixed fields.
        let mut truncated = good.clone();
        truncated[4..8].copy_from_slice(&4u32.to_le_bytes());
        truncated.truncate(HEADER_LEN + 4);
        let mut dec = Decoder::new();
        dec.feed(&truncated);
        assert_eq!(dec.next_frame(), Err(WireError::Truncated));
    }

    #[test]
    fn net_msg_conversion_roundtrips() {
        let chunk = NetMsg::Chunk {
            req: 3,
            edge: EdgeId::from_index(2),
            key: "a@b".into(),
            transfer: 9,
            offset: 64,
            total: 256,
            bytes: Bytes::from(vec![5u8; 64]),
        };
        let frame = frame_of(&chunk);
        let back = net_of(frame).expect("data frame");
        match (chunk, back) {
            (
                NetMsg::Chunk {
                    req: a_req,
                    edge: a_edge,
                    key: a_key,
                    transfer: a_t,
                    offset: a_off,
                    total: a_total,
                    bytes: a_bytes,
                },
                NetMsg::Chunk {
                    req,
                    edge,
                    key,
                    transfer,
                    offset,
                    total,
                    bytes,
                },
            ) => {
                assert_eq!((a_req, a_edge, a_key), (req, edge, key));
                assert_eq!((a_t, a_off, a_total), (transfer, offset, total));
                assert_eq!(&*a_bytes, &*bytes);
            }
            _ => panic!("variant changed in conversion"),
        }
        assert!(net_of(Frame::Hello { node: 0, epoch: 0 }).is_none());
    }

    #[test]
    fn decoder_buffer_stays_bounded() {
        let mut frame_bytes = Vec::new();
        encode_into(&Frame::AckComplete { transfer: 1 }, &mut frame_bytes);
        let mut dec = Decoder::new();
        for _ in 0..10_000 {
            dec.feed(&frame_bytes);
            assert!(dec.next_frame().unwrap().is_some());
        }
        assert!(
            dec.buf.len() < 16 * 1024,
            "consumed prefix must be reclaimed, buffer is {} bytes",
            dec.buf.len()
        );
    }
}
