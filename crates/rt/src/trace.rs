//! Deterministic trace record / replay and sim↔live differential
//! checking.
//!
//! A live [`ClusterRuntime`](crate::ClusterRuntime) run can record a
//! compact, versioned binary event stream — every invocation, every §7
//! `choose_pipe` decision, the chunk/checkpoint-mark counts of each
//! streaming transfer, plus advisory scale / fault / crash / relocation
//! events. The recorded trace is self-contained: its leading `Meta`
//! event embeds the workflow spec JSON and the pipe thresholds, so
//! [`replay`] can rebuild the *simulated* engine
//! ([`dataflower::DataFlowerEngine`]) from the trace alone, drive it
//! with the recorded requests, and produce the simulator's view of the
//! same deterministic decisions. [`diff`] then aligns the two timelines
//! and reports the first divergence — the heart of the sim↔live
//! differential fuzz loop (`bench fuzz`).
//!
//! # On-disk format
//!
//! A trace is a 5-byte header (`"DFTR"` magic plus a version byte)
//! followed by back-to-back events. Every event is:
//!
//! ```text
//! kind      1 byte
//! body_len  LEB128 varint
//! body      body_len bytes: at_us varint, then the kind's fields
//! ```
//!
//! All integers are LEB128 varints; strings are a varint length followed
//! by UTF-8 bytes. Functions are referenced by their workflow index (the
//! embedded spec maps indices back to names). Event kinds and bodies:
//!
//! | kind | event        | body fields (after `at_us`)                          |
//! |-----:|--------------|------------------------------------------------------|
//! | 0    | `Meta`       | nodes, direct_threshold, chunk_bytes, checkpoint_interval, workflow_json |
//! | 1    | `Place`      | func, node                                           |
//! | 2    | `Request`    | req, payload_bytes                                   |
//! | 3    | `Invoke`     | req, func                                            |
//! | 4    | `PipeChoice` | req, edge, kind (0 direct / 1 local / 2 remote), bytes |
//! | 5    | `RemoteMarks`| req, edge, chunks, marks                             |
//! | 6    | `Scale`      | func, node, out (0/1), from_replicas, to_replicas    |
//! | 7    | `FaultFate`  | src, dst, fate (0 drop / 1 duplicate / 2 delay)      |
//! | 8    | `Crash`      | node                                                 |
//! | 9    | `Restart`    | node                                                 |
//! | 10   | `Relocate`   | dead_node, moved                                     |
//! | 11   | `Migrate`    | func, to_node                                        |
//!
//! [`TraceDecoder`] is incremental in the spirit of
//! [`wire::Decoder`](crate::wire::Decoder): feed it arbitrarily torn
//! reads and drain complete events; corruption surfaces as a named
//! [`TraceError`].
//!
//! Only `Invoke`, `PipeChoice` and `RemoteMarks` are *compared* — they
//! are pure functions of the workflow, the placement and the transfer
//! sizes, so sim and live must agree on them exactly. The rest
//! (`Scale`, `FaultFate`, `Crash`, …) is timing-dependent and recorded
//! for post-mortem context only.
//!
//! # Examples
//!
//! Round-trip a tiny trace through the codec and diff it against a
//! tampered copy:
//!
//! ```
//! use dataflower::PipeKind;
//! use dataflower_rt::trace::{diff, encode_trace, EventKind, TraceDecoder, TraceEvent};
//!
//! let events = vec![
//!     TraceEvent { at_us: 10, kind: EventKind::Invoke { req: 0, func: 0 } },
//!     TraceEvent {
//!         at_us: 25,
//!         kind: EventKind::PipeChoice { req: 0, edge: 1, kind: PipeKind::RemotePipe, bytes: 65536 },
//!     },
//! ];
//! let bytes = encode_trace(&events);
//!
//! let mut dec = TraceDecoder::new();
//! dec.feed(&bytes);
//! let mut back = Vec::new();
//! while let Some(ev) = dec.next_event().unwrap() {
//!     back.push(ev);
//! }
//! assert_eq!(back, events);
//! assert!(diff(&events, &back).is_none());
//!
//! let mut tampered = events.clone();
//! tampered[1].kind = EventKind::PipeChoice { req: 0, edge: 1, kind: PipeKind::DirectSocket, bytes: 65536 };
//! let d = diff(&events, &tampered).expect("flipped pipe choice must diverge");
//! assert_eq!((d.index, d.kind), (1, "PipeChoice"));
//! ```

use std::fmt;
use std::sync::Arc;
use std::sync::Mutex;

use dataflower::{CheckpointSchedule, DataFlowerConfig, DataFlowerEngine, DecisionEvent, PipeKind};
use dataflower_cluster::{
    run_to_idle, ClusterConfig, NodeId, NodeSpec, Placement as SimPlacement, WfId, World,
};
use dataflower_sim::SimTime;
use dataflower_workflow::{FnId, WorkflowSpec};

use crate::fabric::chunk_spans;

/// Leading magic of every trace file.
pub const MAGIC: [u8; 4] = *b"DFTR";
/// The trace-format version this build writes and reads.
pub const TRACE_VERSION: u8 = 1;
/// Header size in bytes (magic plus version).
pub const HEADER_LEN: usize = 5;
/// Largest admissible event body. Only `Meta` (which embeds the workflow
/// spec JSON) comes anywhere near this; a longer body means a corrupt
/// stream.
pub const MAX_EVENT_BODY: usize = 16 * 1024 * 1024;

const KIND_META: u8 = 0;
const KIND_PLACE: u8 = 1;
const KIND_REQUEST: u8 = 2;
const KIND_INVOKE: u8 = 3;
const KIND_PIPE_CHOICE: u8 = 4;
const KIND_REMOTE_MARKS: u8 = 5;
const KIND_SCALE: u8 = 6;
const KIND_FAULT_FATE: u8 = 7;
const KIND_CRASH: u8 = 8;
const KIND_RESTART: u8 = 9;
const KIND_RELOCATE: u8 = 10;
const KIND_MIGRATE: u8 = 11;

/// What happened to a frame under fault injection (the advisory
/// [`EventKind::FaultFate`] payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FateKind {
    /// The frame was dropped in flight.
    Drop,
    /// The frame was delivered twice.
    Duplicate,
    /// The frame was delayed before delivery.
    Delay,
}

/// One recorded event: a timestamp (microseconds since the run started —
/// wall-clock live, simulated time on replay) plus the event body.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the start of the run.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The body of one trace event. See the module docs for the on-disk
/// encoding of each variant.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Run preamble: topology, pipe thresholds and the workflow spec
    /// JSON. Always the first event of a trace; everything [`replay`]
    /// needs to rebuild the run.
    Meta {
        /// Worker-node count.
        nodes: u32,
        /// §7 direct-socket threshold in bytes.
        direct_threshold_bytes: u64,
        /// Remote-pipe chunk size in bytes.
        chunk_bytes: u64,
        /// §6.2 checkpoint interval in bytes.
        checkpoint_interval_bytes: u64,
        /// The workflow, as [`WorkflowSpec`] JSON.
        workflow_json: String,
    },
    /// Initial placement of one function (`func` is its workflow index).
    Place {
        /// Function index in the workflow.
        func: u32,
        /// Hosting node.
        node: u32,
    },
    /// One client request entered the runtime.
    Request {
        /// The request id (sequential from 0).
        req: u64,
        /// Total client-input payload bytes.
        payload_bytes: u64,
    },
    /// An FLU executor started running `(req, func)` — compared.
    Invoke {
        /// The invoking request.
        req: u64,
        /// Function index in the workflow.
        func: u32,
    },
    /// The DLU classified one inter-function transfer through the §7
    /// three-way pipe choice — compared.
    PipeChoice {
        /// The request the transfer belongs to.
        req: u64,
        /// Workflow edge index.
        edge: u32,
        /// The chosen pipe kind.
        kind: PipeKind,
        /// Raw transfer size in bytes.
        bytes: u64,
    },
    /// Chunk and checkpoint-mark counts of one streaming remote-pipe
    /// transfer — compared.
    RemoteMarks {
        /// The request the transfer belongs to.
        req: u64,
        /// Workflow edge index.
        edge: u32,
        /// Chunks shipped.
        chunks: u32,
        /// §6.2 checkpoint marks crossed.
        marks: u32,
    },
    /// An elastic autoscale decision (advisory: timing-dependent).
    Scale {
        /// Function index in the workflow.
        func: u32,
        /// Node the pool lives on.
        node: u32,
        /// `true` for scale-out, `false` for scale-in.
        out: bool,
        /// Replicas before the decision.
        from_replicas: u32,
        /// Replicas after the decision.
        to_replicas: u32,
    },
    /// A fault-injection fate applied to a frame (advisory).
    FaultFate {
        /// Source node of the frame.
        src: u32,
        /// Destination node of the frame.
        dst: u32,
        /// What the fault plan did to it.
        fate: FateKind,
    },
    /// A node crashed (advisory).
    Crash {
        /// The crashed node.
        node: u32,
    },
    /// A node restarted (advisory).
    Restart {
        /// The restarted node.
        node: u32,
    },
    /// The orchestrator relocated a lost node's functions (advisory).
    Relocate {
        /// The node declared lost.
        dead_node: u32,
        /// Functions moved off it.
        moved: u32,
    },
    /// A live migration moved one function (advisory).
    Migrate {
        /// Function index in the workflow.
        func: u32,
        /// Destination node.
        to_node: u32,
    },
}

/// Why a trace failed to decode or replay. Any codec variant is fatal
/// for the stream that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported trace-format version.
    BadVersion(u8),
    /// Unknown event kind.
    BadKind(u8),
    /// Event body length exceeds [`MAX_EVENT_BODY`].
    Oversize(u64),
    /// An event body ended before its fields did.
    Truncated,
    /// A varint ran past 10 bytes (not a canonical LEB128 `u64`).
    BadVarint,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An event body carried bytes past its last field.
    TrailingBytes,
    /// The trace does not start with a [`EventKind::Meta`] event.
    MissingMeta,
    /// The embedded workflow spec failed to parse or compile.
    BadWorkflow(String),
    /// The trace's structure is unusable for replay (e.g. request ids
    /// with gaps).
    Malformed(&'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic(m) => write!(f, "bad trace magic {m:02x?}"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::BadKind(k) => write!(f, "unknown trace event kind {k}"),
            TraceError::Oversize(n) => write!(f, "event body of {n} bytes exceeds the cap"),
            TraceError::Truncated => write!(f, "event body truncated"),
            TraceError::BadVarint => write!(f, "malformed varint"),
            TraceError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            TraceError::TrailingBytes => write!(f, "event body has trailing bytes"),
            TraceError::MissingMeta => write!(f, "trace does not start with a Meta event"),
            TraceError::BadWorkflow(e) => write!(f, "embedded workflow spec rejected: {e}"),
            TraceError::Malformed(why) => write!(f, "malformed trace: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

// ---- varint codec -------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Tolerant varint read for the length prefix: `None` while the buffer
/// ends mid-varint, `Err` past 10 bytes.
fn peek_varint(buf: &[u8]) -> Result<Option<(u64, usize)>, TraceError> {
    let mut v: u64 = 0;
    for (i, &b) in buf.iter().enumerate() {
        if i >= 10 {
            return Err(TraceError::BadVarint);
        }
        v |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            return Ok(Some((v, i + 1)));
        }
    }
    if buf.len() >= 10 {
        return Err(TraceError::BadVarint);
    }
    Ok(None)
}

/// Cursor over one event body during decode. Strict: running out of
/// bytes is [`TraceError::Truncated`].
struct BodyReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn varint(&mut self) -> Result<u64, TraceError> {
        match peek_varint(&self.body[self.pos..])? {
            Some((v, n)) => {
                self.pos += n;
                Ok(v)
            }
            None => Err(TraceError::Truncated),
        }
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        u32::try_from(self.varint()?).map_err(|_| TraceError::Truncated)
    }

    fn string(&mut self) -> Result<String, TraceError> {
        let len = self.varint()? as usize;
        let end = self.pos.checked_add(len).ok_or(TraceError::Truncated)?;
        if end > self.body.len() {
            return Err(TraceError::Truncated);
        }
        let s = std::str::from_utf8(&self.body[self.pos..end]).map_err(|_| TraceError::BadUtf8)?;
        self.pos = end;
        Ok(s.to_owned())
    }

    fn finish(self) -> Result<(), TraceError> {
        if self.pos == self.body.len() {
            Ok(())
        } else {
            Err(TraceError::TrailingBytes)
        }
    }
}

fn pipe_kind_code(kind: PipeKind) -> u64 {
    match kind {
        PipeKind::DirectSocket => 0,
        PipeKind::LocalPipe => 1,
        PipeKind::RemotePipe => 2,
    }
}

fn fate_code(fate: FateKind) -> u64 {
    match fate {
        FateKind::Drop => 0,
        FateKind::Duplicate => 1,
        FateKind::Delay => 2,
    }
}

/// Encodes one event (kind byte, varint body length, body) into `out`.
pub fn encode_event(ev: &TraceEvent, out: &mut Vec<u8>) {
    let mut body = Vec::with_capacity(24);
    put_varint(&mut body, ev.at_us);
    let kind = match &ev.kind {
        EventKind::Meta {
            nodes,
            direct_threshold_bytes,
            chunk_bytes,
            checkpoint_interval_bytes,
            workflow_json,
        } => {
            put_varint(&mut body, u64::from(*nodes));
            put_varint(&mut body, *direct_threshold_bytes);
            put_varint(&mut body, *chunk_bytes);
            put_varint(&mut body, *checkpoint_interval_bytes);
            put_varint(&mut body, workflow_json.len() as u64);
            body.extend_from_slice(workflow_json.as_bytes());
            KIND_META
        }
        EventKind::Place { func, node } => {
            put_varint(&mut body, u64::from(*func));
            put_varint(&mut body, u64::from(*node));
            KIND_PLACE
        }
        EventKind::Request { req, payload_bytes } => {
            put_varint(&mut body, *req);
            put_varint(&mut body, *payload_bytes);
            KIND_REQUEST
        }
        EventKind::Invoke { req, func } => {
            put_varint(&mut body, *req);
            put_varint(&mut body, u64::from(*func));
            KIND_INVOKE
        }
        EventKind::PipeChoice {
            req,
            edge,
            kind,
            bytes,
        } => {
            put_varint(&mut body, *req);
            put_varint(&mut body, u64::from(*edge));
            put_varint(&mut body, pipe_kind_code(*kind));
            put_varint(&mut body, *bytes);
            KIND_PIPE_CHOICE
        }
        EventKind::RemoteMarks {
            req,
            edge,
            chunks,
            marks,
        } => {
            put_varint(&mut body, *req);
            put_varint(&mut body, u64::from(*edge));
            put_varint(&mut body, u64::from(*chunks));
            put_varint(&mut body, u64::from(*marks));
            KIND_REMOTE_MARKS
        }
        EventKind::Scale {
            func,
            node,
            out: scale_out,
            from_replicas,
            to_replicas,
        } => {
            put_varint(&mut body, u64::from(*func));
            put_varint(&mut body, u64::from(*node));
            put_varint(&mut body, u64::from(*scale_out));
            put_varint(&mut body, u64::from(*from_replicas));
            put_varint(&mut body, u64::from(*to_replicas));
            KIND_SCALE
        }
        EventKind::FaultFate { src, dst, fate } => {
            put_varint(&mut body, u64::from(*src));
            put_varint(&mut body, u64::from(*dst));
            put_varint(&mut body, fate_code(*fate));
            KIND_FAULT_FATE
        }
        EventKind::Crash { node } => {
            put_varint(&mut body, u64::from(*node));
            KIND_CRASH
        }
        EventKind::Restart { node } => {
            put_varint(&mut body, u64::from(*node));
            KIND_RESTART
        }
        EventKind::Relocate { dead_node, moved } => {
            put_varint(&mut body, u64::from(*dead_node));
            put_varint(&mut body, u64::from(*moved));
            KIND_RELOCATE
        }
        EventKind::Migrate { func, to_node } => {
            put_varint(&mut body, u64::from(*func));
            put_varint(&mut body, u64::from(*to_node));
            KIND_MIGRATE
        }
    };
    out.push(kind);
    put_varint(out, body.len() as u64);
    out.extend_from_slice(&body);
}

/// Encodes a full trace: header plus every event back-to-back.
pub fn encode_trace(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + events.len() * 16);
    out.extend_from_slice(&MAGIC);
    out.push(TRACE_VERSION);
    for ev in events {
        encode_event(ev, &mut out);
    }
    out
}

fn decode_body(kind: u8, body: &[u8]) -> Result<TraceEvent, TraceError> {
    let mut r = BodyReader { body, pos: 0 };
    let at_us = r.varint()?;
    let ev = match kind {
        KIND_META => EventKind::Meta {
            nodes: r.u32()?,
            direct_threshold_bytes: r.varint()?,
            chunk_bytes: r.varint()?,
            checkpoint_interval_bytes: r.varint()?,
            workflow_json: r.string()?,
        },
        KIND_PLACE => EventKind::Place {
            func: r.u32()?,
            node: r.u32()?,
        },
        KIND_REQUEST => EventKind::Request {
            req: r.varint()?,
            payload_bytes: r.varint()?,
        },
        KIND_INVOKE => EventKind::Invoke {
            req: r.varint()?,
            func: r.u32()?,
        },
        KIND_PIPE_CHOICE => EventKind::PipeChoice {
            req: r.varint()?,
            edge: r.u32()?,
            kind: match r.varint()? {
                0 => PipeKind::DirectSocket,
                1 => PipeKind::LocalPipe,
                2 => PipeKind::RemotePipe,
                _ => return Err(TraceError::Truncated),
            },
            bytes: r.varint()?,
        },
        KIND_REMOTE_MARKS => EventKind::RemoteMarks {
            req: r.varint()?,
            edge: r.u32()?,
            chunks: r.u32()?,
            marks: r.u32()?,
        },
        KIND_SCALE => EventKind::Scale {
            func: r.u32()?,
            node: r.u32()?,
            out: r.varint()? != 0,
            from_replicas: r.u32()?,
            to_replicas: r.u32()?,
        },
        KIND_FAULT_FATE => EventKind::FaultFate {
            src: r.u32()?,
            dst: r.u32()?,
            fate: match r.varint()? {
                0 => FateKind::Drop,
                1 => FateKind::Duplicate,
                2 => FateKind::Delay,
                _ => return Err(TraceError::Truncated),
            },
        },
        KIND_CRASH => EventKind::Crash { node: r.u32()? },
        KIND_RESTART => EventKind::Restart { node: r.u32()? },
        KIND_RELOCATE => EventKind::Relocate {
            dead_node: r.u32()?,
            moved: r.u32()?,
        },
        KIND_MIGRATE => EventKind::Migrate {
            func: r.u32()?,
            to_node: r.u32()?,
        },
        other => return Err(TraceError::BadKind(other)),
    };
    r.finish()?;
    Ok(TraceEvent { at_us, kind: ev })
}

/// Incremental trace decoder: feed it whatever a file read or socket
/// produced — any split, down to one byte at a time — and drain complete
/// events with [`TraceDecoder::next_event`].
#[derive(Default)]
pub struct TraceDecoder {
    buf: Vec<u8>,
    pos: usize,
    header_done: bool,
}

impl TraceDecoder {
    /// An empty decoder.
    pub fn new() -> TraceDecoder {
        TraceDecoder::default()
    }

    /// Appends raw stream bytes to the decode buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing, so decoding a long
        // trace keeps the buffer bounded by one event plus a read.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes the next complete event, `Ok(None)` while the buffered
    /// bytes still end mid-header, mid-length or mid-body. An `Err` is
    /// fatal: the stream is corrupt.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        if !self.header_done {
            let avail = &self.buf[self.pos..];
            if avail.len() < HEADER_LEN {
                return Ok(None);
            }
            let magic: [u8; 4] = avail[..4].try_into().expect("length checked");
            if magic != MAGIC {
                return Err(TraceError::BadMagic(magic));
            }
            if avail[4] != TRACE_VERSION {
                return Err(TraceError::BadVersion(avail[4]));
            }
            self.pos += HEADER_LEN;
            self.header_done = true;
        }
        let avail = &self.buf[self.pos..];
        if avail.is_empty() {
            return Ok(None);
        }
        let kind = avail[0];
        if kind > KIND_MIGRATE {
            return Err(TraceError::BadKind(kind));
        }
        let Some((body_len, len_len)) = peek_varint(&avail[1..])? else {
            return Ok(None);
        };
        if body_len as usize > MAX_EVENT_BODY {
            return Err(TraceError::Oversize(body_len));
        }
        let total = 1 + len_len + body_len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let ev = decode_body(kind, &avail[1 + len_len..total])?;
        self.pos += total;
        Ok(Some(ev))
    }
}

impl fmt::Debug for TraceDecoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceDecoder")
            .field("buffered", &(self.buf.len() - self.pos))
            .field("header_done", &self.header_done)
            .finish()
    }
}

/// Decodes a complete in-memory trace.
///
/// # Errors
///
/// Any [`TraceError`] of the incremental decoder, plus
/// [`TraceError::Truncated`] if the buffer ends mid-event.
pub fn decode_trace(bytes: &[u8]) -> Result<Vec<TraceEvent>, TraceError> {
    let mut dec = TraceDecoder::new();
    dec.feed(bytes);
    let mut out = Vec::new();
    while let Some(ev) = dec.next_event()? {
        out.push(ev);
    }
    if dec.pos != dec.buf.len() || !dec.header_done {
        return Err(TraceError::Truncated);
    }
    Ok(out)
}

/// Mean encoded bytes per event, excluding the `Meta` preamble (which
/// amortizes to zero over any real run but would otherwise dominate a
/// short trace with its embedded workflow JSON). `0.0` for a trace with
/// no non-`Meta` events.
pub fn bytes_per_event(events: &[TraceEvent]) -> f64 {
    let mut total = 0usize;
    let mut count = 0usize;
    let mut buf = Vec::new();
    for ev in events {
        if matches!(ev.kind, EventKind::Meta { .. }) {
            continue;
        }
        buf.clear();
        encode_event(ev, &mut buf);
        total += buf.len();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

// ---- recorder -----------------------------------------------------------

/// Thread-safe event sink the live runtime records into when tracing is
/// enabled ([`ClusterRuntimeBuilder::record_trace`]).
///
/// [`ClusterRuntimeBuilder::record_trace`]: crate::ClusterRuntimeBuilder::record_trace
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// Appends one event.
    pub fn record(&self, at_us: u64, kind: EventKind) {
        self.events
            .lock()
            .expect("trace recorder lock poisoned")
            .push(TraceEvent { at_us, kind });
    }

    /// A snapshot of everything recorded so far, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("trace recorder lock poisoned")
            .clone()
    }

    /// The recorded trace in its on-disk encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_trace(&self.events())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .expect("trace recorder lock poisoned")
            .len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---- replay -------------------------------------------------------------

/// Pins each function to the node its live trace recorded, so the
/// simulated engine reproduces the live run's colocation decisions.
struct ReplayPlacement {
    by_func: Vec<Option<u32>>,
    nodes: usize,
}

impl SimPlacement for ReplayPlacement {
    fn node_for(&mut self, _world: &World, _wf: WfId, func: FnId) -> NodeId {
        let fallback = (func.index() % self.nodes.max(1)) as u32;
        let n = self
            .by_func
            .get(func.index())
            .copied()
            .flatten()
            .unwrap_or(fallback);
        NodeId::from_index(n as usize)
    }
}

/// Replays a recorded trace through the simulated
/// [`DataFlowerEngine`] and returns the simulator's view of the same
/// deterministic decisions (`Invoke`, `PipeChoice`, `RemoteMarks`
/// events, timestamped in simulated micros).
///
/// The trace is self-contained: the leading [`EventKind::Meta`] supplies
/// the topology, the pipe thresholds and the workflow spec; `Place`
/// events pin the simulated placement to the live one; `Request` events
/// re-submit the recorded load. Feed the result to [`diff`] against the
/// recorded events.
///
/// # Errors
///
/// [`TraceError::MissingMeta`] if the first event is not `Meta`,
/// [`TraceError::BadWorkflow`] if the embedded spec fails to parse or
/// compile, [`TraceError::Malformed`] for unusable structure (request
/// ids with gaps, zero nodes).
pub fn replay(events: &[TraceEvent]) -> Result<Vec<TraceEvent>, TraceError> {
    let Some(TraceEvent {
        kind:
            EventKind::Meta {
                nodes,
                direct_threshold_bytes,
                chunk_bytes,
                checkpoint_interval_bytes,
                workflow_json,
            },
        ..
    }) = events.first()
    else {
        return Err(TraceError::MissingMeta);
    };
    if *nodes == 0 {
        return Err(TraceError::Malformed("zero worker nodes"));
    }
    if *chunk_bytes == 0 || *checkpoint_interval_bytes == 0 {
        return Err(TraceError::Malformed("zero chunk or checkpoint interval"));
    }
    let spec = WorkflowSpec::from_json(workflow_json)
        .map_err(|e| TraceError::BadWorkflow(e.to_string()))?;
    let wf = spec
        .compile()
        .map_err(|e| TraceError::BadWorkflow(e.to_string()))?;

    let mut by_func: Vec<Option<u32>> = vec![None; wf.function_count()];
    let mut requests: Vec<(u64, u64)> = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::Place { func, node } => {
                if let Some(slot) = by_func.get_mut(*func as usize) {
                    *slot = Some(*node);
                }
            }
            EventKind::Request { req, payload_bytes } => requests.push((*req, *payload_bytes)),
            _ => {}
        }
    }
    requests.sort_unstable_by_key(|(req, _)| *req);
    if requests
        .iter()
        .enumerate()
        .any(|(i, (req, _))| *req != i as u64)
    {
        return Err(TraceError::Malformed("request ids are not 0..n"));
    }

    let cluster_cfg = ClusterConfig {
        workers: vec![NodeSpec::default(); *nodes as usize],
        direct_threshold_bytes: *direct_threshold_bytes as f64,
        seed: 0,
        ..ClusterConfig::default()
    };
    let engine_cfg = DataFlowerConfig {
        checkpoint: CheckpointSchedule::new(*checkpoint_interval_bytes as f64),
        record_decisions: true,
        ..DataFlowerConfig::default()
    };
    let mut world = World::new(cluster_cfg);
    let wf_id = world.add_workflow(Arc::new(wf));
    for (_, payload_bytes) in &requests {
        world.submit_request(wf_id, *payload_bytes as f64, SimTime::ZERO);
    }
    let placement = ReplayPlacement {
        by_func,
        nodes: *nodes as usize,
    };
    let mut engine = DataFlowerEngine::new(engine_cfg, placement);
    run_to_idle(&mut world, &mut engine);

    let cp = CheckpointSchedule::new(*checkpoint_interval_bytes as f64);
    let mut out = Vec::with_capacity(engine.decision_timeline().len());
    for (at, decision) in engine.decision_timeline().entries() {
        let at_us = at.as_micros();
        match *decision {
            DecisionEvent::Invoke { req, func } => out.push(TraceEvent {
                at_us,
                kind: EventKind::Invoke {
                    req: req.index() as u64,
                    func: func.index() as u32,
                },
            }),
            DecisionEvent::PipeChoice {
                req,
                edge,
                kind,
                bytes,
            } => {
                out.push(TraceEvent {
                    at_us,
                    kind: EventKind::PipeChoice {
                        req: req.index() as u64,
                        edge: edge.index() as u32,
                        kind,
                        bytes: bytes as u64,
                    },
                });
                if kind == PipeKind::RemotePipe && bytes > 0.0 {
                    // Mirror the live runtime's chunk loop: spans of
                    // `chunk_bytes`, each counting the §6.2 marks it
                    // crosses.
                    let len = bytes as usize;
                    let spans = chunk_spans(len, *chunk_bytes as usize);
                    let chunks = spans.len() as u32;
                    let marks: u64 = spans
                        .iter()
                        .map(|&(lo, hi)| cp.marks_crossed(lo as f64, hi as f64))
                        .sum();
                    out.push(TraceEvent {
                        at_us,
                        kind: EventKind::RemoteMarks {
                            req: req.index() as u64,
                            edge: edge.index() as u32,
                            chunks,
                            marks: marks as u32,
                        },
                    });
                }
            }
        }
    }
    Ok(out)
}

// ---- diff ---------------------------------------------------------------

/// The first point where two timelines disagree: the canonical event
/// index, the event kind at that index, and both sides' views (`None`
/// when one side ran out of events).
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index into the canonically ordered comparable-event sequence.
    pub index: usize,
    /// Kind name of the event at the divergence point.
    pub kind: &'static str,
    /// The live side's event at that index, if any.
    pub live: Option<TraceEvent>,
    /// The simulated side's event at that index, if any.
    pub sim: Option<TraceEvent>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "divergence at event {} ({}): live={:?} sim={:?}",
            self.index,
            self.kind,
            self.live.as_ref().map(|e| &e.kind),
            self.sim.as_ref().map(|e| &e.kind),
        )
    }
}

/// Kind name of an event (what [`Divergence::kind`] reports).
pub fn kind_name(ev: &TraceEvent) -> &'static str {
    match ev.kind {
        EventKind::Meta { .. } => "Meta",
        EventKind::Place { .. } => "Place",
        EventKind::Request { .. } => "Request",
        EventKind::Invoke { .. } => "Invoke",
        EventKind::PipeChoice { .. } => "PipeChoice",
        EventKind::RemoteMarks { .. } => "RemoteMarks",
        EventKind::Scale { .. } => "Scale",
        EventKind::FaultFate { .. } => "FaultFate",
        EventKind::Crash { .. } => "Crash",
        EventKind::Restart { .. } => "Restart",
        EventKind::Relocate { .. } => "Relocate",
        EventKind::Migrate { .. } => "Migrate",
    }
}

/// Canonical sort key of a comparable event: `(req, kind rank, detail)`.
/// `None` for events outside the comparison set.
fn canonical_key(ev: &TraceEvent) -> Option<(u64, u8, u64)> {
    match ev.kind {
        EventKind::Invoke { req, func } => Some((req, 0, u64::from(func))),
        EventKind::PipeChoice { req, edge, .. } => Some((req, 1, u64::from(edge))),
        EventKind::RemoteMarks { req, edge, .. } => Some((req, 2, u64::from(edge))),
        _ => None,
    }
}

/// The comparable subset of a timeline in canonical order. Timestamps
/// and wall-clock interleavings differ freely between a threaded live
/// run and the simulator, so alignment sorts the deterministic events by
/// `(request, kind, edge-or-function)` instead of by time.
pub fn canonicalize(events: &[TraceEvent]) -> Vec<TraceEvent> {
    let mut out: Vec<(TraceEvent, (u64, u8, u64))> = events
        .iter()
        .filter_map(|ev| canonical_key(ev).map(|k| (ev.clone(), k)))
        .collect();
    out.sort_by_key(|(_, k)| *k);
    out.into_iter().map(|(ev, _)| ev).collect()
}

/// Aligns the comparable events of a live recording and a simulated
/// replay and returns the first divergence, or `None` when the timelines
/// agree event for event. Timestamps are ignored; everything else of
/// each event must match exactly.
pub fn diff(live: &[TraceEvent], sim: &[TraceEvent]) -> Option<Divergence> {
    let l = canonicalize(live);
    let s = canonicalize(sim);
    let n = l.len().max(s.len());
    for i in 0..n {
        let (a, b) = (l.get(i), s.get(i));
        if let (Some(a), Some(b)) = (a, b) {
            if a.kind == b.kind {
                continue;
            }
        }
        let named = a.or(b).expect("at least one side has an event here");
        return Some(Divergence {
            index: i,
            kind: kind_name(named),
            live: a.cloned(),
            sim: b.cloned(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};

    /// A deterministic xorshift for the torn-read property tests (the
    /// workspace is std-only; this mirrors the harness idiom).
    struct TestRng(u64);

    impl TestRng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        let mut b = WorkflowBuilder::new("t");
        let f = b.function("f", WorkModel::fixed(0.01));
        let g = b.function("g", WorkModel::fixed(0.01));
        b.client_input(f, "in", SizeModel::Fixed(1024.0));
        b.edge(f, g, "mid", SizeModel::Fixed(65536.0));
        b.client_output(g, "out", SizeModel::Fixed(64.0));
        let wf = b.build().unwrap();
        let json = WorkflowSpec::from_workflow(&wf).to_json();
        vec![
            TraceEvent {
                at_us: 0,
                kind: EventKind::Meta {
                    nodes: 2,
                    direct_threshold_bytes: 16384,
                    chunk_bytes: 65536,
                    checkpoint_interval_bytes: 262144,
                    workflow_json: json,
                },
            },
            TraceEvent {
                at_us: 0,
                kind: EventKind::Place { func: 0, node: 0 },
            },
            TraceEvent {
                at_us: 0,
                kind: EventKind::Place { func: 1, node: 1 },
            },
            TraceEvent {
                at_us: 3,
                kind: EventKind::Request {
                    req: 0,
                    payload_bytes: 1024,
                },
            },
            TraceEvent {
                at_us: 10,
                kind: EventKind::Invoke { req: 0, func: 0 },
            },
            TraceEvent {
                at_us: 25,
                kind: EventKind::PipeChoice {
                    req: 0,
                    edge: 1,
                    kind: PipeKind::RemotePipe,
                    bytes: 65536,
                },
            },
            TraceEvent {
                at_us: 26,
                kind: EventKind::RemoteMarks {
                    req: 0,
                    edge: 1,
                    chunks: 1,
                    marks: 0,
                },
            },
            TraceEvent {
                at_us: 40,
                kind: EventKind::Invoke { req: 0, func: 1 },
            },
            TraceEvent {
                at_us: 55,
                kind: EventKind::Scale {
                    func: 1,
                    node: 1,
                    out: true,
                    from_replicas: 1,
                    to_replicas: 2,
                },
            },
            TraceEvent {
                at_us: 60,
                kind: EventKind::FaultFate {
                    src: 0,
                    dst: 1,
                    fate: FateKind::Delay,
                },
            },
            TraceEvent {
                at_us: 70,
                kind: EventKind::Crash { node: 1 },
            },
            TraceEvent {
                at_us: 80,
                kind: EventKind::Restart { node: 1 },
            },
            TraceEvent {
                at_us: 90,
                kind: EventKind::Relocate {
                    dead_node: 1,
                    moved: 1,
                },
            },
            TraceEvent {
                at_us: 95,
                kind: EventKind::Migrate {
                    func: 1,
                    to_node: 0,
                },
            },
        ]
    }

    #[test]
    fn every_kind_roundtrips_contiguously() {
        let events = sample_events();
        let bytes = encode_trace(&events);
        assert_eq!(decode_trace(&bytes).unwrap(), events);
    }

    #[test]
    fn torn_reads_roundtrip_under_random_splits() {
        // Satellite: round-trip property under random 1–16-byte reads.
        let events = sample_events();
        let bytes = encode_trace(&events);
        let mut rng = TestRng(0x5EED_1234_ABCD_0001);
        for case in 0..64u64 {
            rng.0 ^= case.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut dec = TraceDecoder::new();
            let mut out = Vec::new();
            let mut pos = 0usize;
            while pos < bytes.len() {
                let take = (1 + rng.below(16) as usize).min(bytes.len() - pos);
                dec.feed(&bytes[pos..pos + take]);
                pos += take;
                while let Some(ev) = dec.next_event().unwrap() {
                    out.push(ev);
                }
            }
            assert_eq!(out, events, "split seed case {case}");
        }
    }

    #[test]
    fn corrupt_traces_are_rejected_with_named_errors() {
        let events = sample_events();
        let good = encode_trace(&events);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_trace(&bad_magic),
            Err(TraceError::BadMagic(_))
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(decode_trace(&bad_version), Err(TraceError::BadVersion(9)));

        let mut bad_kind = good.clone();
        bad_kind[HEADER_LEN] = 99;
        assert_eq!(decode_trace(&bad_kind), Err(TraceError::BadKind(99)));

        let mut truncated = good.clone();
        truncated.truncate(good.len() - 1);
        assert_eq!(decode_trace(&truncated), Err(TraceError::Truncated));

        let mut oversize = good.clone();
        // Rewrite the first event's length prefix to a 5-byte varint far
        // past the cap; the decoder must reject before buffering a body.
        let huge = (MAX_EVENT_BODY as u64 + 1) << 7;
        let mut prefix = Vec::new();
        put_varint(&mut prefix, huge);
        oversize.splice(HEADER_LEN + 1..HEADER_LEN + 2, prefix);
        assert!(matches!(
            decode_trace(&oversize),
            Err(TraceError::Oversize(_))
        ));
    }

    #[test]
    fn replay_requires_a_leading_meta() {
        let events = sample_events();
        assert_eq!(replay(&events[1..]), Err(TraceError::MissingMeta));
        assert_eq!(replay(&[]), Err(TraceError::MissingMeta));
    }

    #[test]
    fn replay_rejects_a_bad_workflow() {
        let mut events = sample_events();
        if let EventKind::Meta { workflow_json, .. } = &mut events[0].kind {
            *workflow_json = "{ not json".into();
        }
        assert!(matches!(replay(&events), Err(TraceError::BadWorkflow(_))));
    }

    #[test]
    fn replay_matches_a_faithful_recording() {
        // `sample_events` was written to be exactly what the simulator
        // derives: f on node 0, g on node 1, one 64 KiB remote transfer.
        let events = sample_events();
        let sim = replay(&events).unwrap();
        assert_eq!(diff(&events, &sim), None);
    }

    #[test]
    fn replay_is_deterministic() {
        // Satellite: the same trace replayed twice yields identical
        // timelines, timestamps included.
        let events = sample_events();
        let a = replay(&events).unwrap();
        let b = replay(&events).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn injected_divergence_names_index_and_kind() {
        // Satellite: flip one pipe choice in a copied trace and assert
        // the differ points at exactly that event.
        let events = sample_events();
        let sim = replay(&events).unwrap();
        assert_eq!(diff(&events, &sim), None, "baseline must agree");

        let mut tampered = events.clone();
        let flipped = tampered
            .iter_mut()
            .find_map(|ev| match &mut ev.kind {
                EventKind::PipeChoice { kind, .. } => {
                    *kind = PipeKind::DirectSocket;
                    Some(())
                }
                _ => None,
            })
            .is_some();
        assert!(flipped, "sample trace carries a pipe choice");
        let d = diff(&tampered, &sim).expect("tampered trace must diverge");
        assert_eq!(d.kind, "PipeChoice");
        // Canonical order: req 0 → Invoke f, Invoke g, then the pipe
        // choice of edge 1, then its marks.
        assert_eq!(d.index, 2);
        assert!(matches!(
            d.live.as_ref().map(|e| &e.kind),
            Some(EventKind::PipeChoice {
                kind: PipeKind::DirectSocket,
                ..
            })
        ));
        assert!(matches!(
            d.sim.as_ref().map(|e| &e.kind),
            Some(EventKind::PipeChoice {
                kind: PipeKind::RemotePipe,
                ..
            })
        ));
    }

    #[test]
    fn diff_reports_a_missing_tail() {
        let events = sample_events();
        let sim = replay(&events).unwrap();
        let shorter: Vec<TraceEvent> = canonicalize(&events).into_iter().take(2).collect();
        let d = diff(&shorter, &sim).expect("shorter live side must diverge");
        assert_eq!(d.index, 2);
        assert!(d.live.is_none());
        assert!(d.sim.is_some());
    }

    #[test]
    fn recorder_snapshots_and_encodes() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        rec.record(5, EventKind::Crash { node: 1 });
        rec.record(9, EventKind::Restart { node: 1 });
        assert_eq!(rec.len(), 2);
        let decoded = decode_trace(&rec.to_bytes()).unwrap();
        assert_eq!(decoded, rec.events());
    }

    #[test]
    fn bytes_per_event_excludes_meta_and_stays_compact() {
        let events = sample_events();
        let bpe = bytes_per_event(&events);
        assert!(bpe > 0.0);
        assert!(bpe < 16.0, "events must stay compact, got {bpe}");
    }

    #[test]
    fn live_run_replays_with_zero_divergence() {
        // The full loop: a real two-node ClusterRuntime run records a
        // trace, the simulator replays it, and the differ finds nothing.
        // The workflow is compiled from its spec so live and replay
        // agree on edge indices, and every body emits exactly its
        // declared Fixed size (what the simulator derives sizes from).
        use crate::{Bytes, ClusterRuntimeBuilder, Placement};

        let mut b = WorkflowBuilder::new("e2e");
        let f = b.function("f", WorkModel::fixed(0.001));
        let g = b.function("g", WorkModel::fixed(0.001));
        b.client_input(f, "in", SizeModel::Fixed(1024.0));
        b.edge(f, g, "mid", SizeModel::Fixed(65536.0));
        b.client_output(g, "out", SizeModel::Fixed(64.0));
        let wf = WorkflowSpec::from_workflow(&b.build().unwrap())
            .compile()
            .unwrap();

        let rt = ClusterRuntimeBuilder::new(Arc::new(wf))
            .placement(Placement::with_nodes(2).assign("f", 0).assign("g", 1))
            .register("f", |ctx| {
                ctx.put("mid", Bytes::from(vec![7u8; 65536]));
            })
            .register("g", |ctx| {
                ctx.put("out", Bytes::from(vec![9u8; 64]));
            })
            .record_trace(true)
            .start()
            .unwrap();
        for _ in 0..3 {
            let req = rt.invoke(vec![("in".into(), Bytes::from(vec![1u8; 1024]))]);
            rt.wait(req, std::time::Duration::from_secs(10)).unwrap();
        }
        // Post-teardown read: the complete trace, not a live snapshot.
        let bytes = rt.shutdown_into_trace().expect("tracing was enabled");
        let live = decode_trace(&bytes).unwrap();
        assert_eq!(encode_trace(&live), bytes, "codec round-trip");
        let sim = replay(&live).unwrap();
        assert_eq!(diff(&live, &sim), None, "live and sim must agree");
        // 3 requests × (2 invokes + 1 pipe choice + 1 remote-marks).
        assert_eq!(canonicalize(&live).len(), 12);
        assert!(bytes_per_event(&live) > 0.0);
    }

    #[test]
    fn varints_cover_the_u64_range() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            out.clear();
            put_varint(&mut out, v);
            let (back, n) = peek_varint(&out).unwrap().unwrap();
            assert_eq!((back, n), (v, out.len()));
        }
    }
}
