//! One fluent front door for every runtime knob.
//!
//! The cluster runtime grew four loose config structs over time —
//! [`RtConfig`] (per-node executor knobs), [`ClusterRtConfig`] (pipe
//! thresholds, link shaping), [`RecoveryConfig`] (§6.2 checkpoint
//! recovery) and [`AutoscaleConfig`] (Eq. 1 elastic scaling) — and the
//! orchestrator would have been a fifth. [`ClusterConfig`] consolidates
//! them behind one builder:
//!
//! ```
//! use std::time::Duration;
//! use dataflower_rt::ClusterConfig;
//!
//! let cfg = ClusterConfig::new()
//!     .chunk_bytes(16 * 1024)
//!     .recovery(Duration::from_millis(50))
//!     .autoscale(dataflower_rt::AutoscaleConfig::default())
//!     .heartbeat(Duration::from_millis(10), 3);
//! // Anywhere a `ClusterRtConfig` is accepted, the builder converts:
//! let low: dataflower_rt::ClusterRtConfig = cfg.into();
//! assert!(low.orchestrator && low.recovery.enabled);
//! ```
//!
//! [`ClusterRuntimeBuilder::config`] accepts `impl Into<ClusterRtConfig>`,
//! so a `ClusterConfig` drops in wherever the low-level struct did.
//!
//! [`ClusterRuntimeBuilder::config`]: crate::ClusterRuntimeBuilder::config

use std::time::Duration;

use crate::admission::AdmissionConfig;
use crate::autoscale::AutoscaleConfig;
use crate::fabric::LinkConfig;
use crate::fault::FaultPlan;
use crate::runtime::{ClusterRtConfig, RecoveryConfig, RtConfig};

/// Fluent builder over every cluster-runtime knob. Start from
/// [`ClusterConfig::new`] (the same defaults as
/// `ClusterRtConfig::default()`), chain the aspects you care about, and
/// pass the result straight to
/// [`ClusterRuntimeBuilder::config`](crate::ClusterRuntimeBuilder::config).
#[derive(Debug, Clone, Default)]
pub struct ClusterConfig {
    inner: ClusterRtConfig,
}

impl ClusterConfig {
    /// Starts from the stock defaults: 16 KiB direct threshold, 64 KiB
    /// chunks, 256 KiB checkpoint interval, unshaped links, autoscaling
    /// off, no faults, recovery off, orchestrator off.
    pub fn new() -> ClusterConfig {
        ClusterConfig::default()
    }

    /// Per-node executor/DLU/janitor knobs (queue capacity, replica
    /// count, sink TTL and stripes).
    pub fn node(mut self, rt: RtConfig) -> ClusterConfig {
        self.inner.rt = rt;
        self
    }

    /// Payloads strictly under this many bytes take the direct socket
    /// (§7's 16 KiB rule).
    pub fn direct_threshold_bytes(mut self, bytes: usize) -> ClusterConfig {
        self.inner.direct_threshold_bytes = bytes;
        self
    }

    /// Chunk size of the streaming remote pipe connector.
    pub fn chunk_bytes(mut self, bytes: usize) -> ClusterConfig {
        self.inner.chunk_bytes = bytes;
        self
    }

    /// Checkpoint-mark interval of the remote pipe stream (§6.2).
    pub fn checkpoint_interval_bytes(mut self, bytes: usize) -> ClusterConfig {
        self.inner.checkpoint_interval_bytes = bytes;
        self
    }

    /// Bandwidth/latency shaping applied to every inter-node link.
    pub fn link(mut self, link: LinkConfig) -> ClusterConfig {
        self.inner.link = link;
        self
    }

    /// Enables Eq. 1 pressure-driven elastic scaling of the FLU pools.
    pub fn autoscale(mut self, auto: AutoscaleConfig) -> ClusterConfig {
        self.inner.autoscale = auto;
        self
    }

    /// Installs a deterministic fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> ClusterConfig {
        self.inner.faults = plan;
        self
    }

    /// Enables §6.2 checkpoint recovery with the given retransmit
    /// timeout (sender-side retention, mark acks, replay on restart).
    pub fn recovery(mut self, retransmit_timeout: Duration) -> ClusterConfig {
        self.inner.recovery = RecoveryConfig {
            enabled: true,
            retransmit_timeout,
        };
        self
    }

    /// Replaces the whole recovery config (for disabling, or tests that
    /// build one by hand).
    pub fn recovery_config(mut self, recovery: RecoveryConfig) -> ClusterConfig {
        self.inner.recovery = recovery;
        self
    }

    /// Enables the orchestrator control plane: per-node keep-alive
    /// heartbeats every `interval`, node-loss declaration after
    /// `miss_threshold` consecutive missed beats, automatic relocation
    /// of the lost node's functions. Pair with
    /// [`ClusterConfig::recovery`] so mid-stream transfers survive the
    /// move.
    pub fn heartbeat(mut self, interval: Duration, miss_threshold: u32) -> ClusterConfig {
        self.inner.orchestrator = true;
        self.inner.heartbeat_interval = interval;
        self.inner.heartbeat_miss_threshold = miss_threshold;
        self
    }

    /// How long a live migration (or relocation) waits for the drained
    /// FLU pool to finish in-flight work before respawning anyway.
    pub fn migration_drain_timeout(mut self, timeout: Duration) -> ClusterConfig {
        self.inner.migration_drain_timeout = timeout;
        self
    }

    /// Per-tenant admission caps enforced by
    /// [`ClusterRuntime::try_invoke`](crate::ClusterRuntime::try_invoke)
    /// (zero caps admit everything).
    pub fn admission(mut self, admission: AdmissionConfig) -> ClusterConfig {
        self.inner.admission = admission;
        self
    }

    /// The assembled low-level config (what [`From`] produces too).
    pub fn build(self) -> ClusterRtConfig {
        self.inner
    }
}

impl From<ClusterConfig> for ClusterRtConfig {
    fn from(cfg: ClusterConfig) -> ClusterRtConfig {
        cfg.inner
    }
}

impl From<ClusterRtConfig> for ClusterConfig {
    /// Lifts an existing low-level config into the builder so call
    /// sites can migrate piecemeal.
    fn from(inner: ClusterRtConfig) -> ClusterConfig {
        ClusterConfig { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip_matches_defaults() {
        let built: ClusterRtConfig = ClusterConfig::new().into();
        let stock = ClusterRtConfig::default();
        assert_eq!(built.direct_threshold_bytes, stock.direct_threshold_bytes);
        assert_eq!(built.chunk_bytes, stock.chunk_bytes);
        assert_eq!(built.orchestrator, stock.orchestrator);
        assert_eq!(built.recovery.enabled, stock.recovery.enabled);
    }

    #[test]
    fn aspects_compose() {
        let cfg: ClusterRtConfig = ClusterConfig::new()
            .chunk_bytes(4096)
            .recovery(Duration::from_millis(40))
            .heartbeat(Duration::from_millis(10), 2)
            .migration_drain_timeout(Duration::from_millis(500))
            .build();
        assert_eq!(cfg.chunk_bytes, 4096);
        assert!(cfg.recovery.enabled);
        assert_eq!(cfg.recovery.retransmit_timeout, Duration::from_millis(40));
        assert!(cfg.orchestrator);
        assert_eq!(cfg.heartbeat_interval, Duration::from_millis(10));
        assert_eq!(cfg.heartbeat_miss_threshold, 2);
        assert_eq!(cfg.migration_drain_timeout, Duration::from_millis(500));
    }
}
