//! The FLU programming interface: what a function body sees.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::autoscale::FnScale;
use crate::bytes::Bytes;
use crate::channel::Sender;
use crate::runtime::{DluMsg, ReqId};

/// Destination selector for [`FluContext::put_to`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PutTarget {
    /// Every output edge carrying the data name (broadcast, the plain
    /// `DataFlower.DLU.Put` of Fig. 5a).
    All,
    /// Only the edge(s) towards the named function (per-branch payloads
    /// for `foreach` fan-outs).
    Function(String),
}

/// Execution context handed to a function body (the FLU side of the
/// FLU/DLU programming model, Fig. 5a).
///
/// Inputs are the data items that triggered this invocation, keyed by
/// their declared data names. Outputs are handed to the DLU daemon with
/// [`FluContext::put`] / [`FluContext::put_to`] and start flowing
/// **immediately and asynchronously** — the function keeps computing
/// while the DLU ships, which is exactly the compute/communication
/// overlap of §5.1. A full DLU queue blocks the put: that is the
/// backpressure of Fig. 6a.
pub struct FluContext {
    pub(crate) req: ReqId,
    pub(crate) src_fn: String,
    pub(crate) inputs: BTreeMap<String, Bytes>,
    pub(crate) dlu: Sender<DluMsg>,
    /// Live gauges of this function's pool; `put` adds the payload to the
    /// DLU backlog so the autoscaler sees Eq. 1's `Size` term.
    pub(crate) scale: Arc<FnScale>,
    /// Wall-clock time this invocation spent blocked inside `put` (a full
    /// DLU queue). The executor subtracts it from the body's elapsed time
    /// so Eq. 1's `T_FLU` term measures compute, not backpressure.
    pub(crate) blocked: std::time::Duration,
}

impl FluContext {
    pub(crate) fn new(
        req: ReqId,
        src_fn: String,
        inputs: BTreeMap<String, Bytes>,
        dlu: Sender<DluMsg>,
        scale: Arc<FnScale>,
    ) -> Self {
        FluContext {
            req,
            src_fn,
            inputs,
            dlu,
            scale,
            blocked: std::time::Duration::ZERO,
        }
    }

    /// The request this invocation belongs to.
    pub fn request(&self) -> ReqId {
        self.req
    }

    /// The input payload named `name`.
    ///
    /// Inputs are stored under `name@source` keys (the Wait-Match index
    /// includes the producer). This accessor accepts either the full key
    /// or the bare data name when it is unambiguous; for fan-in inputs
    /// that share a data name (e.g. a merge), use
    /// [`FluContext::inputs_named`].
    pub fn input(&self, name: &str) -> Option<&Bytes> {
        if let Some(b) = self.inputs.get(name) {
            return Some(b);
        }
        let prefix = format!("{name}@");
        let mut found = None;
        for (k, v) in &self.inputs {
            if k.starts_with(&prefix) {
                if found.is_some() {
                    return None; // ambiguous: multiple producers
                }
                found = Some(v);
            }
        }
        found
    }

    /// All input payloads whose data name is `name`, in **lexicographic
    /// producer-key order** (`name@fn_10` sorts before `name@fn_2`) —
    /// the fan-in (`merge`/`LIST`) accessor. Order-sensitive merges with
    /// 10+ numbered producers should sort by [`FluContext::inputs`] keys
    /// themselves.
    pub fn inputs_named(&self, name: &str) -> Vec<&Bytes> {
        let prefix = format!("{name}@");
        self.inputs
            .iter()
            .filter(|(k, _)| *k == name || k.starts_with(&prefix))
            .map(|(_, v)| v)
            .collect()
    }

    /// All inputs in data-name order.
    pub fn inputs(&self) -> impl Iterator<Item = (&str, &Bytes)> {
        self.inputs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of inputs this invocation received.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Hands `payload` to the DLU daemon for every output edge named
    /// `data_name` (`DataFlower.DLU.Put`). The transfer begins while the
    /// function keeps running; a saturated DLU blocks the caller
    /// (backpressure).
    ///
    /// The payload is never copied on its way out: fan-out clones are
    /// refcount bumps, and remote-pipe chunking ships
    /// [`Bytes::slice`] views into this same allocation — so putting a
    /// [`Bytes`] (or a slice of an input via [`Bytes::slice`]) is O(1)
    /// regardless of payload size until the bytes hit a shaped link.
    pub fn put(&mut self, data_name: impl Into<String>, payload: impl Into<Bytes>) {
        self.send(data_name.into(), PutTarget::All, payload.into());
    }

    /// Hands `payload` to the DLU daemon for the output edge(s) named
    /// `data_name` that lead to `target_fn` only — distinct per-branch
    /// payloads for `foreach` fan-outs.
    pub fn put_to(
        &mut self,
        data_name: impl Into<String>,
        target_fn: impl Into<String>,
        payload: impl Into<Bytes>,
    ) {
        self.send(
            data_name.into(),
            PutTarget::Function(target_fn.into()),
            payload.into(),
        );
    }

    fn send(&mut self, data_name: String, target: PutTarget, payload: Bytes) {
        // Count the payload into the DLU backlog *before* the send: a put
        // blocked on a full DLU queue is exactly the pressure Eq. 1 is
        // meant to see. The daemon subtracts it once routing finished.
        let len = payload.len() as u64;
        self.scale.backlog_bytes.fetch_add(len, Ordering::Relaxed);
        let msg = DluMsg {
            req: self.req,
            src_fn: self.src_fn.clone(),
            data_name,
            target,
            payload,
        };
        // The runtime only drops the DLU receiver at shutdown; a send
        // failure then is harmless — but take the bytes back out so the
        // gauge cannot leak upward.
        let t0 = std::time::Instant::now();
        let sent = self.dlu.send(msg);
        self.blocked += t0.elapsed();
        if sent.is_err() {
            self.scale.backlog_bytes.fetch_sub(len, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for FluContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FluContext")
            .field("req", &self.req)
            .field("function", &self.src_fn)
            .field("inputs", &self.inputs.keys().collect::<Vec<_>>())
            .finish()
    }
}
