//! The live FLU/DLU runtime: real threads, real bytes.
//!
//! Architecture (one process standing in for one worker node):
//!
//! * per function, one or more **FLU executor threads** consume an
//!   invocation queue and run the registered function body;
//! * per function, a **DLU daemon thread** drains the `put` channel and
//!   routes payloads along the workflow's data edges — to other
//!   functions' data sinks or to the client results slot;
//! * a shared **data sink** caches inbound data per `(request, function,
//!   edge)` and triggers an FLU the instant its inputs are complete
//!   (data-availability triggering, no orchestrator);
//! * a **janitor thread** passively expires sink entries past their TTL
//!   (counting them as spilled to disk).
//!
//! Bounded DLU queues give real backpressure: a function that produces
//! faster than its DLU drains blocks in `put`, exactly Fig. 6a.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dataflower_workflow::{ActiveGraph, EdgeId, Endpoint, FnId, Workflow};

use crate::bytes::Bytes;
use crate::channel::{bounded, unbounded, Receiver, Sender};
use crate::context::{FluContext, PutTarget};
use crate::error::RtError;

/// A request identifier issued by [`Runtime::invoke`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub(crate) u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Tuning knobs of the runtime.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Capacity of each function's DLU queue; a full queue blocks `put`
    /// (backpressure). A value of 0 is treated as 1 (single-slot buffer,
    /// the strictest backpressure the in-tree channel supports).
    pub dlu_queue_capacity: usize,
    /// Default number of FLU executor threads per function.
    pub flu_replicas: usize,
    /// Passive-expire TTL for unconsumed sink entries (`None` disables
    /// the janitor).
    pub sink_ttl: Option<Duration>,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            dlu_queue_capacity: 64,
            flu_replicas: 1,
            sink_ttl: Some(Duration::from_secs(30)),
        }
    }
}

/// Counters exposed by [`Runtime::stats`].
#[derive(Debug, Default)]
pub struct RtStats {
    /// `put`/`put_to` calls routed by DLU daemons.
    pub puts: u64,
    /// Data deliveries into function sinks.
    pub deliveries: u64,
    /// Function invocations executed.
    pub invocations: u64,
    /// Sink entries passively expired by the janitor.
    pub spills: u64,
}

pub(crate) struct DluMsg {
    pub req: ReqId,
    pub src_fn: String,
    pub data_name: String,
    pub target: PutTarget,
    pub payload: Bytes,
}

enum FluMsg {
    Invoke {
        req: ReqId,
        inputs: BTreeMap<String, Bytes>,
    },
    Shutdown,
}

struct SinkEntry {
    key: String,
    payload: Bytes,
    arrived: Instant,
    spilled: bool,
}

struct ReqState {
    active: ActiveGraph,
    /// Remaining input edges per function before it can trigger.
    missing: Vec<usize>,
    /// Inbound data awaiting its consumer, per function.
    sink: HashMap<FnId, BTreeMap<EdgeId, SinkEntry>>,
    /// Client outputs still expected.
    outputs_missing: usize,
    outputs: Vec<(String, Bytes)>,
    errors: Vec<String>,
}

struct Counters {
    puts: AtomicU64,
    deliveries: AtomicU64,
    invocations: AtomicU64,
    spills: AtomicU64,
}

struct Inner {
    workflow: Arc<Workflow>,
    flu_tx: HashMap<String, Sender<FluMsg>>,
    reqs: Mutex<HashMap<u64, ReqState>>,
    done: Condvar,
    counters: Counters,
    shutdown: AtomicBool,
}

type Body = Arc<dyn Fn(&mut FluContext) + Send + Sync>;

/// Builder for a [`Runtime`]: register one body per workflow function,
/// then [`RuntimeBuilder::start`].
pub struct RuntimeBuilder {
    workflow: Arc<Workflow>,
    cfg: RtConfig,
    bodies: HashMap<String, Body>,
    replicas: HashMap<String, usize>,
}

impl RuntimeBuilder {
    /// Starts building a runtime for `workflow`.
    pub fn new(workflow: Arc<Workflow>) -> Self {
        RuntimeBuilder {
            workflow,
            cfg: RtConfig::default(),
            bodies: HashMap::new(),
            replicas: HashMap::new(),
        }
    }

    /// Replaces the configuration.
    pub fn config(mut self, cfg: RtConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Registers the body of function `name`.
    pub fn register<F>(mut self, name: impl Into<String>, body: F) -> Self
    where
        F: Fn(&mut FluContext) + Send + Sync + 'static,
    {
        self.bodies.insert(name.into(), Arc::new(body));
        self
    }

    /// Overrides the executor-thread count for function `name`
    /// (scale-out within the process).
    pub fn replicas(mut self, name: impl Into<String>, n: usize) -> Self {
        self.replicas.insert(name.into(), n.max(1));
        self
    }

    /// Validates registrations and spawns all threads.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnregisteredFunction`] if a workflow function
    /// has no body, or [`RtError::UnknownFunction`] if a body or replica
    /// override names a function not in the workflow.
    pub fn start(self) -> Result<Runtime, RtError> {
        for f in self.workflow.function_ids() {
            let name = &self.workflow.function(f).name;
            if !self.bodies.contains_key(name) {
                return Err(RtError::UnregisteredFunction(name.clone()));
            }
        }
        for name in self.bodies.keys().chain(self.replicas.keys()) {
            if self.workflow.function_by_name(name).is_none() {
                return Err(RtError::UnknownFunction(name.clone()));
            }
        }

        let mut flu_tx = HashMap::new();
        let mut flu_rx: HashMap<String, Receiver<FluMsg>> = HashMap::new();
        for f in self.workflow.function_ids() {
            let name = self.workflow.function(f).name.clone();
            let (tx, rx) = unbounded();
            flu_tx.insert(name.clone(), tx);
            flu_rx.insert(name, rx);
        }
        let inner = Arc::new(Inner {
            workflow: Arc::clone(&self.workflow),
            flu_tx,
            reqs: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            counters: Counters {
                puts: AtomicU64::new(0),
                deliveries: AtomicU64::new(0),
                invocations: AtomicU64::new(0),
                spills: AtomicU64::new(0),
            },
            shutdown: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        let mut replica_counts = HashMap::new();
        for f in self.workflow.function_ids() {
            let name = self.workflow.function(f).name.clone();
            let body = Arc::clone(&self.bodies[&name]);
            let replicas = *self.replicas.get(&name).unwrap_or(&self.cfg.flu_replicas);
            replica_counts.insert(name.clone(), replicas);

            // Per-function DLU daemon.
            let (dlu_tx, dlu_rx) = bounded::<DluMsg>(self.cfg.dlu_queue_capacity);
            {
                let inner = Arc::clone(&inner);
                let thread_name = format!("dlu-{name}");
                threads.push(
                    std::thread::Builder::new()
                        .name(thread_name)
                        .spawn(move || dlu_daemon(inner, dlu_rx))
                        .expect("spawn dlu daemon"),
                );
            }
            // FLU executors.
            let rx = flu_rx.remove(&name).expect("channel created");
            for k in 0..replicas {
                let inner = Arc::clone(&inner);
                let rx = rx.clone();
                let body = Arc::clone(&body);
                let dlu = dlu_tx.clone();
                let fn_name = name.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("flu-{name}-{k}"))
                        .spawn(move || flu_executor(inner, fn_name, rx, body, dlu))
                        .expect("spawn flu executor"),
                );
            }
        }

        // Janitor for passive expire.
        if let Some(ttl) = self.cfg.sink_ttl {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("sink-janitor".into())
                    .spawn(move || janitor(inner, ttl))
                    .expect("spawn janitor"),
            );
        }

        Ok(Runtime {
            inner,
            threads,
            replica_counts,
            next_req: AtomicU64::new(0),
        })
    }
}

/// A running FLU/DLU runtime. Create with [`RuntimeBuilder`].
///
/// # Examples
///
/// A real two-stage pipeline that uppercases then reverses a string:
///
/// ```
/// use std::sync::Arc;
/// use dataflower_rt::{Bytes, RuntimeBuilder};
/// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new("pipeline");
/// let upper = b.function("upper", WorkModel::fixed(0.001));
/// let rev = b.function("rev", WorkModel::fixed(0.001));
/// b.client_input(upper, "text", SizeModel::Fixed(64.0));
/// b.edge(upper, rev, "upped", SizeModel::Fixed(64.0));
/// b.client_output(rev, "result", SizeModel::Fixed(64.0));
/// let wf = Arc::new(b.build()?);
///
/// let rt = RuntimeBuilder::new(wf)
///     .register("upper", |ctx| {
///         let s = String::from_utf8_lossy(ctx.input("text").unwrap()).to_uppercase();
///         ctx.put("upped", Bytes::from(s.into_bytes()));
///     })
///     .register("rev", |ctx| {
///         let s: String = String::from_utf8_lossy(ctx.input("upped").unwrap())
///             .chars().rev().collect();
///         ctx.put("result", Bytes::from(s.into_bytes()));
///     })
///     .start()
///     .unwrap();
///
/// let req = rt.invoke(vec![("text".into(), Bytes::from_static(b"dataflower"))]);
/// let outputs = rt.wait(req, std::time::Duration::from_secs(5)).unwrap();
/// assert_eq!(outputs[0].1.as_ref(), b"REWOLFATAD");
/// rt.shutdown();
/// # Ok::<(), dataflower_workflow::WorkflowError>(())
/// ```
pub struct Runtime {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
    replica_counts: HashMap<String, usize>,
    next_req: AtomicU64,
}

impl Runtime {
    /// Invokes the workflow with client inputs `(data_name, payload)`.
    /// Returns immediately; collect results with [`Runtime::wait`].
    pub fn invoke(&self, inputs: Vec<(String, Bytes)>) -> ReqId {
        let req = ReqId(self.next_req.fetch_add(1, Ordering::Relaxed));
        let wf = &self.inner.workflow;
        // Resolve switches deterministically per request.
        let seed = req.0;
        let active = wf.resolve_switches(|group, n| ((seed ^ group as u64) % n as u64) as usize);

        let mut missing = vec![0usize; wf.function_count()];
        for f in wf.function_ids() {
            if !active.function_active(f) {
                continue;
            }
            missing[f.index()] = wf
                .inputs(f)
                .iter()
                .filter(|e| active.edge_active(**e))
                .count();
        }
        let outputs_missing = wf
            .client_outputs()
            .filter(|e| active.edge_active(*e))
            .count();
        self.inner
            .reqs
            .lock()
            .expect("runtime lock poisoned")
            .insert(
                req.0,
                ReqState {
                    active,
                    missing,
                    sink: HashMap::new(),
                    outputs_missing,
                    outputs: Vec::new(),
                    errors: Vec::new(),
                },
            );

        // Deliver the client inputs by data name.
        for (name, payload) in inputs {
            let mut matched = false;
            for eid in wf.client_inputs().collect::<Vec<_>>() {
                let e = wf.edge(eid);
                if e.data_name == name {
                    matched = true;
                    deliver(
                        &self.inner,
                        req,
                        eid,
                        format!("{name}@$USER"),
                        payload.clone(),
                    );
                }
            }
            if !matched {
                let mut reqs = self.inner.reqs.lock().expect("runtime lock poisoned");
                if let Some(rs) = reqs.get_mut(&req.0) {
                    rs.errors
                        .push(format!("no client input edge named `{name}`"));
                }
            }
        }
        req
    }

    /// Blocks until every client output of `req` arrived, or `timeout`.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if the deadline passes first;
    /// [`RtError::Faulted`] if any function body reported an error (e.g.
    /// a `put` with an unknown data name); [`RtError::UnknownRequest`]
    /// for a foreign id.
    pub fn wait(&self, req: ReqId, timeout: Duration) -> Result<Vec<(String, Bytes)>, RtError> {
        let deadline = Instant::now() + timeout;
        let mut reqs = self.inner.reqs.lock().expect("runtime lock poisoned");
        loop {
            let rs = reqs.get(&req.0).ok_or(RtError::UnknownRequest)?;
            if !rs.errors.is_empty() {
                return Err(RtError::Faulted(rs.errors.join("; ")));
            }
            if rs.outputs_missing == 0 {
                let rs = reqs.remove(&req.0).expect("checked above");
                return Ok(rs.outputs);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RtError::Timeout);
            }
            reqs = self
                .inner
                .done
                .wait_timeout(reqs, deadline - now)
                .expect("runtime lock poisoned")
                .0;
        }
    }

    /// Number of FLU executor threads serving `name` (scale-out view).
    pub fn replicas_of(&self, name: &str) -> Option<usize> {
        self.replica_counts.get(name).copied()
    }

    /// Runtime counters.
    pub fn stats(&self) -> RtStats {
        RtStats {
            puts: self.inner.counters.puts.load(Ordering::Relaxed),
            deliveries: self.inner.counters.deliveries.load(Ordering::Relaxed),
            invocations: self.inner.counters.invocations.load(Ordering::Relaxed),
            spills: self.inner.counters.spills.load(Ordering::Relaxed),
        }
    }

    /// Stops all threads and waits for them (clean teardown; prefer this
    /// over relying on `Drop`, which detaches without joining).
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for f in self.inner.workflow.function_ids() {
            let name = &self.inner.workflow.function(f).name;
            let replicas = self.replica_counts[name];
            for _ in 0..replicas {
                let _ = self.inner.flu_tx[name].send(FluMsg::Shutdown);
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Non-blocking teardown: signal and detach (C-DTOR-BLOCK).
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for f in self.inner.workflow.function_ids() {
            let name = &self.inner.workflow.function(f).name;
            for _ in 0..self.replica_counts.get(name).copied().unwrap_or(1) {
                let _ = self.inner.flu_tx[name].send(FluMsg::Shutdown);
            }
        }
    }
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("workflow", &self.inner.workflow.name())
            .field("threads", &self.threads.len())
            .finish()
    }
}

fn flu_executor(
    inner: Arc<Inner>,
    fn_name: String,
    rx: Receiver<FluMsg>,
    body: Body,
    dlu: Sender<DluMsg>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            FluMsg::Shutdown => break,
            FluMsg::Invoke { req, inputs } => {
                inner.counters.invocations.fetch_add(1, Ordering::Relaxed);
                let mut ctx = FluContext::new(req, fn_name.clone(), inputs, dlu.clone());
                body(&mut ctx);
            }
        }
    }
}

fn dlu_daemon(inner: Arc<Inner>, rx: Receiver<DluMsg>) {
    while let Ok(msg) = rx.recv() {
        if inner.shutdown.load(Ordering::Relaxed) {
            break;
        }
        route(&inner, msg);
    }
}

/// Routes one DLU put along the matching data edges.
fn route(inner: &Inner, msg: DluMsg) {
    inner.counters.puts.fetch_add(1, Ordering::Relaxed);
    let wf = &inner.workflow;
    let Some(src) = wf.function_by_name(&msg.src_fn) else {
        return;
    };
    let active = {
        let reqs = inner.reqs.lock().expect("runtime lock poisoned");
        match reqs.get(&msg.req.0) {
            Some(rs) => rs.active.clone(),
            None => return, // request already collected
        }
    };
    let mut matched = false;
    for eid in wf.outputs(src).to_vec() {
        let e = wf.edge(eid);
        if e.data_name != msg.data_name {
            continue;
        }
        let target_ok = match (&msg.target, e.target) {
            (PutTarget::All, _) => true,
            (PutTarget::Function(name), Endpoint::Function(t)) => wf.function(t).name == *name,
            (PutTarget::Function(_), Endpoint::Client) => false,
        };
        if !target_ok {
            continue;
        }
        matched = true;
        if !active.edge_active(eid) {
            continue; // switched-off branch: data dropped by design
        }
        match e.target {
            Endpoint::Client => {
                let mut reqs = inner.reqs.lock().expect("runtime lock poisoned");
                if let Some(rs) = reqs.get_mut(&msg.req.0) {
                    rs.outputs
                        .push((msg.data_name.clone(), msg.payload.clone()));
                    rs.outputs_missing = rs.outputs_missing.saturating_sub(1);
                    if rs.outputs_missing == 0 {
                        inner.done.notify_all();
                    }
                }
            }
            Endpoint::Function(_) => {
                let key = format!("{}@{}", msg.data_name, msg.src_fn);
                deliver(inner, msg.req, eid, key, msg.payload.clone());
            }
        }
    }
    if !matched {
        let mut reqs = inner.reqs.lock().expect("runtime lock poisoned");
        if let Some(rs) = reqs.get_mut(&msg.req.0) {
            rs.errors.push(format!(
                "function `{}` put unknown data `{}`",
                msg.src_fn, msg.data_name
            ));
            inner.done.notify_all();
        }
    }
}

/// Inserts data for `edge` into the destination sink; triggers the
/// destination FLU when its inputs are complete (proactive release: the
/// inputs leave the sink as the invocation message).
fn deliver(inner: &Inner, req: ReqId, edge: EdgeId, key: String, payload: Bytes) {
    let wf = &inner.workflow;
    let e = wf.edge(edge);
    let Endpoint::Function(dst) = e.target else {
        return;
    };
    inner.counters.deliveries.fetch_add(1, Ordering::Relaxed);
    let ready = {
        let mut reqs = inner.reqs.lock().expect("runtime lock poisoned");
        let Some(rs) = reqs.get_mut(&req.0) else {
            return;
        };
        if !rs.active.edge_active(edge) || !rs.active.function_active(dst) {
            return;
        }
        let entry = SinkEntry {
            key,
            payload,
            arrived: Instant::now(),
            spilled: false,
        };
        let fresh = rs
            .sink
            .entry(dst)
            .or_default()
            .insert(edge, entry)
            .is_none();
        if fresh {
            debug_assert!(rs.missing[dst.index()] > 0, "over-delivery on {edge}");
            rs.missing[dst.index()] -= 1;
        }
        if rs.missing[dst.index()] == 0 {
            // Proactive release: hand all inputs to the FLU and drop them
            // from the sink.
            let entries = rs.sink.remove(&dst).unwrap_or_default();
            let mut inputs = BTreeMap::new();
            for (_, entry) in entries {
                inputs.insert(entry.key, entry.payload);
            }
            // Guard against double-trigger on duplicate final delivery.
            rs.missing[dst.index()] = usize::MAX;
            Some(inputs)
        } else {
            None
        }
    };
    if let Some(inputs) = ready {
        let name = &wf.function(dst).name;
        let _ = inner.flu_tx[name].send(FluMsg::Invoke { req, inputs });
    }
}

fn janitor(inner: Arc<Inner>, ttl: Duration) {
    let tick = ttl.min(Duration::from_millis(50));
    while !inner.shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        let now = Instant::now();
        let mut reqs = inner.reqs.lock().expect("runtime lock poisoned");
        for rs in reqs.values_mut() {
            for entries in rs.sink.values_mut() {
                for entry in entries.values_mut() {
                    if !entry.spilled && now.duration_since(entry.arrived) >= ttl {
                        // Passive expire: the payload moves to the
                        // function-exclusive disk tier. In-process we keep
                        // the bytes (the "disk") and count the eviction.
                        entry.spilled = true;
                        inner.counters.spills.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}
