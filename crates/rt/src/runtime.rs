//! The live FLU/DLU runtime: real threads, real bytes — now on a
//! multi-node topology.
//!
//! Architecture (one [`NodeRuntime`] per simulated worker node):
//!
//! * each node owns a **work-stealing FLU scheduler**
//!   ([`NodeScheduler`]): invocations are submitted as tasks to a shared
//!   injector, lazily-spawned worker threads pop locally and steal
//!   batches from each other, and the per-function replica gauges sum
//!   into the node's *active worker-slot window* instead of dedicated
//!   threads-per-function;
//! * per node, one **merged DLU daemon thread** drains the node's `put`
//!   channel and routes payloads along the workflow's data edges,
//!   classifying every inter-function transfer through the paper's
//!   three-way pipe choice (§7): direct socket under the 16 KiB
//!   threshold, node-local pipe when co-located, chunked streaming
//!   remote pipe across nodes;
//! * each node owns a **data sink** (a lock-striped
//!   [`ShardedSink`](crate::ShardedSink), one stripe lock per request
//!   hash) that caches inbound data per `(request, function, edge)` and
//!   triggers an FLU the instant its inputs are complete
//!   (data-availability triggering, no orchestrator);
//! * cross-node traffic flows over the in-process **fabric**: one
//!   bounded SPSC [`ring`](crate::ring) plus shipper thread per directed
//!   node pair, with optional bandwidth/latency shaping
//!   ([`LinkConfig`]);
//! * one runtime-wide **janitor thread** passively expires sink entries
//!   past their TTL (counting them as spilled to disk).
//!
//! Bounded DLU queues give real backpressure: a function that produces
//! faster than its DLU drains blocks in `put`, exactly Fig. 6a; a DLU
//! that out-produces an inter-node link blocks on the link's bounded
//! ring the same way.
//!
//! When elastic scaling is enabled ([`AutoscaleConfig`]), a runtime-wide
//! **autoscaler thread** samples every function's DLU backlog each tick,
//! converts it into seconds of backpressure via
//! [`dataflower::pressure_secs`] (Eq. 1), and grows or shrinks the
//! function's replica gauge between the configured bounds — which
//! resizes the hosting node's stealing parallelism
//! ([`NodeScheduler::set_active`]), the paper's pressure-aware
//! scale-out with a cool-down-guarded scale-in once the DLU drained.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dataflower::{choose_pipe, pressure_secs, CheckpointSchedule, PipeKind};
use dataflower_metrics::Timeline;
use dataflower_workflow::{ActiveGraph, EdgeId, Endpoint, FnId, Workflow, WorkflowSpec};

use crate::admission::{AdmissionConfig, AdmissionGate, Rejected, TenantStats};
use crate::autoscale::{AutoscaleConfig, FnScale, ScaleDirection, ScaleEvent, ScalePolicy};
use crate::bytes::Bytes;
use crate::channel::{bounded, Receiver, Sender};
use crate::context::{FluContext, PutTarget};
use crate::error::RtError;
use crate::fabric::{chunk_spans, spawn_link, LinkConfig, LinkRetention, NetMsg};
use crate::fault::{FaultPlan, FaultState, FrameFate};
use crate::node::{NodeReqState, NodeRuntime, NodeState, Placement, PlacementPolicy, SinkEntry};
use crate::orchestrator;
use crate::ring::{self, RingReceiver, RingSender};
use crate::sched::NodeScheduler;
use crate::trace::{EventKind as TraceEventKind, FateKind, TraceEvent, TraceRecorder};

/// A request identifier issued by [`ClusterRuntime::invoke`] /
/// [`Runtime::invoke`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub(crate) u64);

impl ReqId {
    /// The raw request number — stable for the life of the request;
    /// what an external [`AdmissionGate`](crate::AdmissionGate) binds
    /// admission slots to.
    pub fn id(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Per-node tuning knobs of the runtime.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Capacity of each function's DLU queue; a full queue blocks `put`
    /// (backpressure). A value of 0 is treated as 1 (single-slot buffer,
    /// the strictest backpressure the in-tree channel supports).
    pub dlu_queue_capacity: usize,
    /// Default number of FLU executor threads per function.
    pub flu_replicas: usize,
    /// Passive-expire TTL for unconsumed sink entries (`None` disables
    /// the janitors).
    pub sink_ttl: Option<Duration>,
    /// Lock stripes of each node's Wait-Match sink (rounded up to a
    /// power of two). More stripes mean less contention between
    /// concurrent requests; `1` reproduces the old single-lock sink.
    pub sink_stripes: usize,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            dlu_queue_capacity: 64,
            flu_replicas: 1,
            sink_ttl: Some(Duration::from_secs(30)),
            sink_stripes: 16,
        }
    }
}

/// Checkpoint-recovery knobs of a [`ClusterRuntime`] (§6.2).
///
/// With `enabled`, every cross-node frame is retained on the sender (as
/// a refcounted [`Bytes`] view — zero-copy) until the destination
/// acknowledges it: whole frames ack on delivery, chunked streams ack
/// each checkpoint mark their contiguous prefix crosses, trimming the
/// retention window to at most one checkpoint interval plus the link's
/// in-flight frames. A crashed-and-restarted node gets every incomplete
/// transfer replayed from its last acknowledged mark, and a background
/// recovery daemon retransmits frames whose acks never arrived (lost
/// frames). Disabled (the default), none of this bookkeeping runs — and
/// a node crash or dropped frame loses data exactly like before.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// Master switch of retention, acks, replay and retransmission.
    pub enabled: bool,
    /// How long a retained transfer may sit without any send or ack
    /// before the recovery daemon retransmits its un-acked frames.
    pub retransmit_timeout: Duration,
}

impl Default for RecoveryConfig {
    /// Disabled; when enabled, a 200 ms retransmit timeout.
    fn default() -> Self {
        RecoveryConfig {
            enabled: false,
            retransmit_timeout: Duration::from_millis(200),
        }
    }
}

/// Tuning knobs of a multi-node [`ClusterRuntime`]: the per-node
/// [`RtConfig`] plus the paper's pipe-selection thresholds, the fabric
/// link shaping, and the fault-tolerance knobs.
#[derive(Debug, Clone)]
pub struct ClusterRtConfig {
    /// Per-node executor/DLU/janitor knobs.
    pub rt: RtConfig,
    /// Payloads strictly under this many bytes bypass the pipe connector
    /// and use the direct socket (§7's 16 KiB rule).
    pub direct_threshold_bytes: usize,
    /// Chunk size of the streaming remote pipe connector.
    pub chunk_bytes: usize,
    /// Checkpoint-mark interval of the remote pipe stream (§6.2).
    pub checkpoint_interval_bytes: usize,
    /// Shaping applied to every inter-node link.
    pub link: LinkConfig,
    /// Elastic, pressure-driven scaling of the FLU executor pools
    /// (disabled by default — pools stay at their configured size).
    pub autoscale: AutoscaleConfig,
    /// Deterministic fault injection ([`FaultPlan`]); the default plan
    /// is a no-op and costs the data plane nothing.
    pub faults: FaultPlan,
    /// Checkpoint-based crash recovery (§6.2); disabled by default.
    pub recovery: RecoveryConfig,
    /// Runs the orchestrator control plane (the ε-CON analog): per-node
    /// keep-alive heartbeats, node-loss detection after
    /// `heartbeat_miss_threshold` missed beats, and automatic relocation
    /// of a lost node's functions to the least-pressured survivors.
    /// Disabled by default; relocating mid-stream transfers additionally
    /// needs `recovery.enabled`.
    pub orchestrator: bool,
    /// Interval between keep-alive heartbeats (and between the
    /// controller's liveness checks).
    pub heartbeat_interval: Duration,
    /// Consecutive missed beats before the controller declares a node
    /// dead and relocates its functions.
    pub heartbeat_miss_threshold: u32,
    /// How long [`ClusterRuntime::migrate_function`] (and node-loss
    /// relocation) waits for a drained FLU pool's executors to finish
    /// in-flight work before re-spawning the pool on the new node
    /// anyway.
    pub migration_drain_timeout: Duration,
    /// Per-tenant admission caps enforced by
    /// [`ClusterRuntime::try_invoke`] (the all-zero default admits
    /// everything; plain [`ClusterRuntime::invoke`] always bypasses the
    /// gate).
    pub admission: AdmissionConfig,
}

impl Default for ClusterRtConfig {
    /// 16 KiB direct threshold, 64 KiB chunks, 256 KiB checkpoint
    /// interval, unshaped links, autoscaling off, no faults, recovery
    /// off, orchestrator off (20 ms heartbeats, 3 missed beats, 1 s
    /// migration drain when enabled).
    fn default() -> Self {
        ClusterRtConfig {
            rt: RtConfig::default(),
            direct_threshold_bytes: 16 * 1024,
            chunk_bytes: 64 * 1024,
            checkpoint_interval_bytes: 256 * 1024,
            link: LinkConfig::default(),
            autoscale: AutoscaleConfig::default(),
            faults: FaultPlan::default(),
            recovery: RecoveryConfig::default(),
            orchestrator: false,
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_miss_threshold: 3,
            migration_drain_timeout: Duration::from_secs(1),
            admission: AdmissionConfig::default(),
        }
    }
}

/// Counters exposed by [`ClusterRuntime::stats`] / [`Runtime::stats`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RtStats {
    /// `put`/`put_to` calls routed by DLU daemons.
    pub puts: u64,
    /// Data deliveries into function sinks.
    pub deliveries: u64,
    /// Function invocations executed.
    pub invocations: u64,
    /// Sink entries passively expired by the janitors.
    pub spills: u64,
    /// Inter-function transfers that took the direct socket (< threshold).
    pub direct_socket_transfers: u64,
    /// Inter-function transfers that took the node-local pipe.
    pub local_pipe_transfers: u64,
    /// Inter-function transfers that took the streaming remote pipe.
    pub remote_pipe_transfers: u64,
    /// Chunks shipped by the remote pipe connector.
    pub remote_chunks: u64,
    /// Checkpoint marks recorded along remote pipe streams (§6.2).
    pub remote_checkpoints: u64,
    /// Payload bytes that crossed nodes (direct-socket and remote-pipe).
    pub remote_bytes: u64,
    /// Executor-pool scale-outs triggered by pressure (Eq. 1).
    pub scale_out_events: u64,
    /// Executor-pool scale-ins after the DLU drained.
    pub scale_in_events: u64,
    /// Checkpoint-mark acknowledgements received by senders (§6.2): each
    /// trims the retention window of one transfer to its mark.
    pub acked_marks: u64,
    /// Node crashes (fault-plan kills plus explicit
    /// [`ClusterRuntime::crash_node`] calls that found the node up).
    pub node_crashes: u64,
    /// Node restarts after a crash.
    pub node_restarts: u64,
    /// Fabric frames lost at a crashed node's ingress.
    pub frames_lost_to_crashes: u64,
    /// Fabric frames dropped in flight by fault injection.
    pub chaos_dropped_frames: u64,
    /// Fabric frames delivered twice by fault injection.
    pub chaos_duplicated_frames: u64,
    /// Shipper wakeups delayed by fault injection.
    pub chaos_delayed_frames: u64,
    /// Incomplete transfers replayed when a crashed node restarted.
    pub recovered_transfers: u64,
    /// Frames re-delivered by recovery (restart replay plus
    /// retransmissions).
    pub replayed_frames: u64,
    /// Payload bytes re-delivered by recovery.
    pub replayed_bytes: u64,
    /// Bytes *not* re-sent during restart replay because they sat below
    /// an acknowledged checkpoint mark — the §6.2 savings of resuming
    /// from the mark instead of byte 0.
    pub resumed_from_mark_bytes: u64,
    /// Transfers swept by the retransmit path (no ack within the
    /// timeout, e.g. after an in-flight frame drop).
    pub retransmitted_transfers: u64,
    /// Keep-alive heartbeats recorded by the orchestrator control plane
    /// (node-side stamps in-process, coordinator pings over TCP).
    pub heartbeats: u64,
    /// Liveness checks that found a node's heartbeat stale (or a ping
    /// unanswered) — `heartbeat_miss_threshold` consecutive ones declare
    /// the node lost.
    pub heartbeat_misses: u64,
    /// Nodes the controller declared permanently lost.
    pub node_losses: u64,
    /// Functions moved off a lost node by the controller.
    pub relocated_functions: u64,
    /// Voluntary [`ClusterRuntime::migrate_function`] moves completed.
    pub live_migrations: u64,
    /// Data frames that arrived at a node no longer hosting their target
    /// function and were forwarded to its current host (mid-relocation
    /// healing).
    pub forwarded_frames: u64,
    /// Requests admitted through the ingress gate
    /// ([`ClusterRuntime::try_invoke`]).
    pub admitted_requests: u64,
    /// Arrivals rejected at the ingress gate.
    pub rejected_requests: u64,
}

impl RtStats {
    /// Total inter-function transfers, across all three pipe kinds.
    pub fn inter_function_transfers(&self) -> u64 {
        self.direct_socket_transfers + self.local_pipe_transfers + self.remote_pipe_transfers
    }

    /// Flattens the counters into a fixed-order vector — the payload of
    /// the worker `stats` control RPC. Inverse of [`RtStats::from_vec`].
    pub(crate) fn to_vec(&self) -> Vec<u64> {
        vec![
            self.puts,
            self.deliveries,
            self.invocations,
            self.spills,
            self.direct_socket_transfers,
            self.local_pipe_transfers,
            self.remote_pipe_transfers,
            self.remote_chunks,
            self.remote_checkpoints,
            self.remote_bytes,
            self.scale_out_events,
            self.scale_in_events,
            self.acked_marks,
            self.node_crashes,
            self.node_restarts,
            self.frames_lost_to_crashes,
            self.chaos_dropped_frames,
            self.chaos_duplicated_frames,
            self.chaos_delayed_frames,
            self.recovered_transfers,
            self.replayed_frames,
            self.replayed_bytes,
            self.resumed_from_mark_bytes,
            self.retransmitted_transfers,
            self.heartbeats,
            self.heartbeat_misses,
            self.node_losses,
            self.relocated_functions,
            self.live_migrations,
            self.forwarded_frames,
            self.admitted_requests,
            self.rejected_requests,
        ]
    }

    /// Rebuilds stats from [`RtStats::to_vec`]'s ordering; missing
    /// trailing entries (an older worker) read as zero.
    pub(crate) fn from_vec(v: &[u64]) -> RtStats {
        let at = |i: usize| v.get(i).copied().unwrap_or(0);
        RtStats {
            puts: at(0),
            deliveries: at(1),
            invocations: at(2),
            spills: at(3),
            direct_socket_transfers: at(4),
            local_pipe_transfers: at(5),
            remote_pipe_transfers: at(6),
            remote_chunks: at(7),
            remote_checkpoints: at(8),
            remote_bytes: at(9),
            scale_out_events: at(10),
            scale_in_events: at(11),
            acked_marks: at(12),
            node_crashes: at(13),
            node_restarts: at(14),
            frames_lost_to_crashes: at(15),
            chaos_dropped_frames: at(16),
            chaos_duplicated_frames: at(17),
            chaos_delayed_frames: at(18),
            recovered_transfers: at(19),
            replayed_frames: at(20),
            replayed_bytes: at(21),
            resumed_from_mark_bytes: at(22),
            retransmitted_transfers: at(23),
            heartbeats: at(24),
            heartbeat_misses: at(25),
            node_losses: at(26),
            relocated_functions: at(27),
            live_migrations: at(28),
            forwarded_frames: at(29),
            admitted_requests: at(30),
            rejected_requests: at(31),
        }
    }

    /// Adds `other`'s counters field-wise — how the coordinator
    /// aggregates per-worker stats into one cluster view, and how the
    /// load harness folds its per-benchmark clusters into one report.
    pub fn merge(&mut self, other: &RtStats) {
        let mine = self.to_vec();
        let theirs = other.to_vec();
        let summed: Vec<u64> = mine
            .iter()
            .zip(theirs.iter())
            .map(|(a, b)| a.saturating_add(*b))
            .collect();
        *self = RtStats::from_vec(&summed);
    }
}

/// What [`ClusterRuntime::crash_node`] found when it took the node down
/// — the damage inventory the subsequent restart will repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// The crashed node.
    pub node: usize,
    /// False when the node was already down (the call was a no-op).
    pub was_up: bool,
    /// Remote-pipe transfers that were mid-reassembly on the node; each
    /// was rolled back to its last checkpoint mark.
    pub inflight_transfers: usize,
    /// Bytes of reassembly progress that survived the crash because they
    /// sat below a checkpoint mark (summed over the in-flight
    /// transfers). Zero means every in-flight stream restarts from
    /// byte 0.
    pub durable_bytes: u64,
}

pub(crate) struct DluMsg {
    pub req: ReqId,
    pub src_fn: String,
    pub data_name: String,
    pub target: PutTarget,
    pub payload: Bytes,
}

/// Client-side state of one request: what `wait` observes. Per-node sink
/// state (missing-input counts, parked payloads, reassembly buffers)
/// lives in each [`NodeState`] instead.
struct ClientReqState {
    outputs_missing: usize,
    outputs: Vec<(String, Bytes)>,
    errors: Vec<String>,
}

#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) puts: AtomicU64,
    pub(crate) deliveries: AtomicU64,
    pub(crate) invocations: AtomicU64,
    pub(crate) spills: AtomicU64,
    pub(crate) direct_socket: AtomicU64,
    pub(crate) local_pipe: AtomicU64,
    pub(crate) remote_pipe: AtomicU64,
    pub(crate) remote_chunks: AtomicU64,
    pub(crate) remote_checkpoints: AtomicU64,
    pub(crate) remote_bytes: AtomicU64,
    pub(crate) scale_outs: AtomicU64,
    pub(crate) scale_ins: AtomicU64,
    pub(crate) acked_marks: AtomicU64,
    pub(crate) node_crashes: AtomicU64,
    pub(crate) node_restarts: AtomicU64,
    pub(crate) frames_lost: AtomicU64,
    pub(crate) chaos_drops: AtomicU64,
    pub(crate) chaos_dups: AtomicU64,
    pub(crate) chaos_delays: AtomicU64,
    pub(crate) recovered_transfers: AtomicU64,
    pub(crate) replayed_frames: AtomicU64,
    pub(crate) replayed_bytes: AtomicU64,
    pub(crate) resumed_from_mark: AtomicU64,
    pub(crate) retransmitted: AtomicU64,
    pub(crate) heartbeats: AtomicU64,
    pub(crate) heartbeat_misses: AtomicU64,
    pub(crate) node_losses: AtomicU64,
    pub(crate) relocated_fns: AtomicU64,
    pub(crate) live_migrations: AtomicU64,
    pub(crate) forwarded_frames: AtomicU64,
    pub(crate) admitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
}

impl Counters {
    /// A consistent-enough point-in-time copy of every counter (each
    /// field is loaded independently; totals may straddle concurrent
    /// increments, which is fine for stats).
    pub(crate) fn snapshot(&self) -> RtStats {
        RtStats {
            puts: self.puts.load(Ordering::Relaxed),
            deliveries: self.deliveries.load(Ordering::Relaxed),
            invocations: self.invocations.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            direct_socket_transfers: self.direct_socket.load(Ordering::Relaxed),
            local_pipe_transfers: self.local_pipe.load(Ordering::Relaxed),
            remote_pipe_transfers: self.remote_pipe.load(Ordering::Relaxed),
            remote_chunks: self.remote_chunks.load(Ordering::Relaxed),
            remote_checkpoints: self.remote_checkpoints.load(Ordering::Relaxed),
            remote_bytes: self.remote_bytes.load(Ordering::Relaxed),
            scale_out_events: self.scale_outs.load(Ordering::Relaxed),
            scale_in_events: self.scale_ins.load(Ordering::Relaxed),
            acked_marks: self.acked_marks.load(Ordering::Relaxed),
            node_crashes: self.node_crashes.load(Ordering::Relaxed),
            node_restarts: self.node_restarts.load(Ordering::Relaxed),
            frames_lost_to_crashes: self.frames_lost.load(Ordering::Relaxed),
            chaos_dropped_frames: self.chaos_drops.load(Ordering::Relaxed),
            chaos_duplicated_frames: self.chaos_dups.load(Ordering::Relaxed),
            chaos_delayed_frames: self.chaos_delays.load(Ordering::Relaxed),
            recovered_transfers: self.recovered_transfers.load(Ordering::Relaxed),
            replayed_frames: self.replayed_frames.load(Ordering::Relaxed),
            replayed_bytes: self.replayed_bytes.load(Ordering::Relaxed),
            resumed_from_mark_bytes: self.resumed_from_mark.load(Ordering::Relaxed),
            retransmitted_transfers: self.retransmitted.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            heartbeat_misses: self.heartbeat_misses.load(Ordering::Relaxed),
            node_losses: self.node_losses.load(Ordering::Relaxed),
            relocated_functions: self.relocated_fns.load(Ordering::Relaxed),
            live_migrations: self.live_migrations.load(Ordering::Relaxed),
            forwarded_frames: self.forwarded_frames.load(Ordering::Relaxed),
            admitted_requests: self.admitted.load(Ordering::Relaxed),
            rejected_requests: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// Wire-mode (worker-process) state of an [`Inner`]: present only when
/// the runtime was started by [`ClusterRuntimeBuilder::start_worker`],
/// i.e. this OS process embodies exactly one node of a TCP cluster.
///
/// The endpoint space is `node_count + 1`: every worker node plus the
/// coordinator process (always the **last** index), which plays the
/// client — it ships inputs in and collects outputs shipped back out.
/// `link_depth` and `retention` are indexed `src * endpoints + dst` in
/// this mode (see [`stride`]).
pub(crate) struct WireState {
    /// The endpoint this process embodies (a node index).
    pub(crate) local: usize,
    /// Total endpoints: worker nodes plus the trailing coordinator.
    pub(crate) endpoints: usize,
    /// Outbound frame rings, one per remote endpoint (`None` at
    /// `local`). The transport's per-link agents drain them onto TCP.
    pub(crate) out: Vec<Option<RingSender<NetMsg>>>,
    /// Requests the coordinator already collected or abandoned: late
    /// frames for them must not re-seed sink state (they are orphans,
    /// acked away so the sender's retention cannot leak).
    pub(crate) purged: Mutex<HashSet<u64>>,
}

pub(crate) struct Inner {
    pub(crate) workflow: Arc<Workflow>,
    pub(crate) cfg: ClusterRtConfig,
    /// The live routing authority: every route/deliver/seed decision
    /// reads the placement through this lock, so the orchestrator can
    /// relocate a function at runtime and the data plane follows.
    pub(crate) placement: RwLock<Placement>,
    /// Relocation strategy consulted when a node is lost (`None` falls
    /// back to the least-pressured survivor).
    pub(crate) policy: Option<Arc<dyn PlacementPolicy>>,
    /// Weak self-reference so invocation tasks queued on the node
    /// schedulers can reach the runtime without keeping it alive after
    /// the owning [`ClusterRuntime`] drops.
    pub(crate) me: Weak<Inner>,
    /// Per-node work-stealing FLU executors. Worker threads spawn
    /// lazily up to each scheduler's active-slot window, which the
    /// autoscaler resizes instead of spawning/retiring threads.
    pub(crate) scheds: Vec<NodeScheduler>,
    /// Registered function bodies, shared by every invocation task.
    pub(crate) bodies: HashMap<String, Body>,
    /// Per-node merged DLU ingress: one daemon per node routes every
    /// hosted function's puts. `signal_shutdown` clears the senders so
    /// each daemon observes disconnect once in-flight invocations drop
    /// their clones. In wire mode only the local node's entry is
    /// `Some`.
    pub(crate) dlu_tx: RwLock<Vec<Option<Sender<DluMsg>>>>,
    reqs: Mutex<HashMap<u64, ClientReqState>>,
    done: Condvar,
    pub(crate) nodes: Vec<Arc<NodeState>>,
    pub(crate) counters: Counters,
    /// Ingress admission gate (caps from `cfg.admission`); only
    /// [`ClusterRuntime::try_invoke`] consults it, so ungated traffic
    /// pays nothing beyond a release-side map miss.
    pub(crate) gate: AdmissionGate,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Pairs with `shutdown`: janitors and autoscalers sleep on this
    /// condvar so teardown does not have to wait out their polling tick.
    /// The mutex also serializes scale events against `signal_shutdown`,
    /// so the shutdown message count always matches the live executor
    /// count.
    pub(crate) shutdown_mx: Mutex<()>,
    pub(crate) shutdown_cv: Condvar,
    pub(crate) next_transfer: AtomicU64,
    /// Live per-function pool gauges (replicas, DLU backlog, T_FLU).
    pub(crate) scale: HashMap<String, Arc<FnScale>>,
    /// Initial pool size per function (the t=0 point of the timeline).
    initial_replicas: HashMap<String, usize>,
    /// Every scale event since start, in time order.
    scale_events: Mutex<Vec<ScaleEvent>>,
    /// When the runtime started (scale events and heartbeat stamps are
    /// relative to this).
    pub(crate) started: Instant,
    /// Queue-depth gauge of each directed fabric link, indexed
    /// `src * stride + dst` (self-links stay zero); the stride is the
    /// node count in-process and the endpoint count in wire mode.
    pub(crate) link_depth: Vec<Arc<AtomicUsize>>,
    /// Fault-injection state (`None` for a no-op plan: the per-frame
    /// cost of disabled fault injection is one `Option` check).
    faults: Option<FaultState>,
    /// Sender-side §6.2 retention of un-acked frames, one per directed
    /// link, indexed like `link_depth`. Empty when recovery is disabled.
    pub(crate) retention: Vec<Mutex<LinkRetention>>,
    /// Worker-process wire state; `None` for the in-process fabric.
    pub(crate) wire: Option<WireState>,
    /// Outbound link rows, one per source node (wire mode: every entry is
    /// the same outbound wire row). Routing looks its row up per put via
    /// the *live* placement, which is what makes DLU daemons
    /// location-transparent: after a migration the same daemon ships from
    /// the function's new node. Cleared by `signal_shutdown` so the link
    /// shippers observe sender disconnect and exit.
    pub(crate) links: RwLock<Vec<LinkRow>>,
    /// Trace recorder ([`ClusterRuntimeBuilder::record_trace`]); `None`
    /// when tracing is off, so every disabled hook costs one `Option`
    /// check.
    pub(crate) recorder: Option<Arc<TraceRecorder>>,
}

impl Inner {
    /// The node currently hosting function `name`, per the live
    /// placement.
    pub(crate) fn node_of(&self, name: &str) -> usize {
        self.placement
            .read()
            .expect("placement lock poisoned")
            .node_of(name)
    }

    /// A point-in-time copy of the live placement.
    pub(crate) fn placement_snapshot(&self) -> Placement {
        self.placement
            .read()
            .expect("placement lock poisoned")
            .clone()
    }

    /// The outbound link row of `src` (`None` once shutdown cleared the
    /// rows — callers drop the frame, consistent with teardown).
    pub(crate) fn link_row(&self, src: usize) -> Option<LinkRow> {
        self.links
            .read()
            .expect("links lock poisoned")
            .get(src)
            .cloned()
    }

    /// Records one trace event stamped with microseconds since the
    /// runtime started. The closure only runs when tracing is enabled.
    pub(crate) fn trace_with(&self, f: impl FnOnce() -> TraceEventKind) {
        if let Some(rec) = &self.recorder {
            rec.record(self.started.elapsed().as_micros() as u64, f());
        }
    }

    /// The merged-DLU sender of `node` (`None` once shutdown cleared the
    /// senders, or for a remote node in wire mode).
    pub(crate) fn dlu_sender(&self, node: usize) -> Option<Sender<DluMsg>> {
        self.dlu_tx
            .read()
            .expect("dlu senders lock poisoned")
            .get(node)
            .and_then(|s| s.clone())
    }
}

/// One node's outbound fabric ring senders, indexed by destination
/// (`None` on the self-link). Shared so per-put row lookups are one Arc
/// clone.
pub(crate) type LinkRow = Arc<Vec<Option<RingSender<NetMsg>>>>;

/// Row stride of the directed-link vectors (`link_depth`, `retention`):
/// the node count for the in-process fabric, the endpoint count (nodes
/// plus coordinator) in worker-process wire mode.
pub(crate) fn stride(inner: &Inner) -> usize {
    inner
        .wire
        .as_ref()
        .map_or(inner.nodes.len(), |w| w.endpoints)
}

type Body = Arc<dyn Fn(&mut FluContext) + Send + Sync>;

/// Builder for a [`ClusterRuntime`]: register one body per workflow
/// function, pick a [`Placement`], then [`ClusterRuntimeBuilder::start`].
///
/// # Examples
///
/// A two-stage pipeline spread over two nodes; the 64 KiB payload rides
/// the streaming remote pipe between them:
///
/// ```
/// use std::sync::Arc;
/// use dataflower_rt::{Bytes, ClusterRuntimeBuilder, Placement};
/// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new("pipeline");
/// let upper = b.function("upper", WorkModel::fixed(0.001));
/// let rev = b.function("rev", WorkModel::fixed(0.001));
/// b.client_input(upper, "text", SizeModel::Fixed(64.0));
/// b.edge(upper, rev, "upped", SizeModel::Fixed(64.0));
/// b.client_output(rev, "result", SizeModel::Fixed(64.0));
/// let wf = Arc::new(b.build()?);
///
/// let rt = ClusterRuntimeBuilder::new(wf)
///     .placement(Placement::with_nodes(2).assign("upper", 0).assign("rev", 1))
///     .register("upper", |ctx| {
///         let s = String::from_utf8_lossy(ctx.input("text").unwrap()).to_uppercase();
///         ctx.put("upped", Bytes::from(s));
///     })
///     .register("rev", |ctx| {
///         let s: String = String::from_utf8_lossy(ctx.input("upped").unwrap())
///             .chars().rev().collect();
///         ctx.put("result", Bytes::from(s));
///     })
///     .start()
///     .unwrap();
///
/// let payload = "dataflower ".repeat(6000); // ~64 KiB: over the 16 KiB threshold
/// let req = rt.invoke(vec![("text".into(), Bytes::from(payload))]);
/// let outputs = rt.wait(req, std::time::Duration::from_secs(5)).unwrap();
/// assert!(outputs[0].1.starts_with(b" REWOLFATAD"));
/// assert!(rt.stats().remote_pipe_transfers > 0);
/// rt.shutdown();
/// # Ok::<(), dataflower_workflow::WorkflowError>(())
/// ```
pub struct ClusterRuntimeBuilder {
    workflow: Arc<Workflow>,
    cfg: ClusterRtConfig,
    placement: Placement,
    policy: Option<Arc<dyn PlacementPolicy>>,
    bodies: HashMap<String, Body>,
    replicas: HashMap<String, usize>,
    record_trace: bool,
}

/// What [`ClusterRuntimeBuilder::start_worker`] hands the transport: the
/// local runtime plus one outbound frame receiver per directed link this
/// node sends on (`None` elsewhere).
pub(crate) type WorkerStart = (ClusterRuntime, Vec<Option<RingReceiver<NetMsg>>>);

impl ClusterRuntimeBuilder {
    /// Starts building a runtime for `workflow` (single-node placement
    /// until [`ClusterRuntimeBuilder::placement`] replaces it).
    pub fn new(workflow: Arc<Workflow>) -> Self {
        ClusterRuntimeBuilder {
            workflow,
            cfg: ClusterRtConfig::default(),
            placement: Placement::with_nodes(1),
            policy: None,
            bodies: HashMap::new(),
            replicas: HashMap::new(),
            record_trace: false,
        }
    }

    /// Replaces the configuration. Accepts either a raw
    /// [`ClusterRtConfig`] or the fluent [`ClusterConfig`] builder.
    ///
    /// [`ClusterConfig`]: crate::ClusterConfig
    pub fn config(mut self, cfg: impl Into<ClusterRtConfig>) -> Self {
        self.cfg = cfg.into();
        self
    }

    /// Replaces the placement map (the low-level routing-table setter;
    /// prefer [`ClusterRuntimeBuilder::policy`] for strategy-driven
    /// placement that also covers relocation).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Places the workflow over `nodes` nodes with a
    /// [`PlacementPolicy`]: the policy's `initial` computes the starting
    /// placement, and its `relocate` is consulted whenever the
    /// orchestrator must move a lost node's functions.
    pub fn policy(mut self, policy: impl PlacementPolicy + 'static, nodes: usize) -> Self {
        self.placement = policy.initial(&self.workflow, nodes);
        self.policy = Some(Arc::new(policy));
        self
    }

    /// Registers the body of function `name`.
    pub fn register<F>(mut self, name: impl Into<String>, body: F) -> Self
    where
        F: Fn(&mut FluContext) + Send + Sync + 'static,
    {
        self.bodies.insert(name.into(), Arc::new(body));
        self
    }

    /// Overrides the executor-thread count for function `name`
    /// (scale-out within its node).
    pub fn replicas(mut self, name: impl Into<String>, n: usize) -> Self {
        self.replicas.insert(name.into(), n.max(1));
        self
    }

    /// Records a deterministic trace of the run — every invocation, §7
    /// pipe choice, streaming chunk/mark count, plus advisory scale /
    /// fault / crash / relocation events (see [`crate::trace`] for the
    /// format). Collect it with [`ClusterRuntime::trace_events`] or
    /// [`ClusterRuntime::trace_bytes`]. In-process fabric only: a
    /// worker-process ([`TcpCluster`]) node records nothing.
    ///
    /// [`TcpCluster`]: crate::TcpCluster
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Validates registrations and the placement, then spawns every node
    /// and fabric thread.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnregisteredFunction`] if a workflow function
    /// has no body, [`RtError::UnknownFunction`] if a body or replica
    /// override names a function not in the workflow, or
    /// [`RtError::InvalidPlacement`] if the placement names an unknown
    /// function or an out-of-range node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's `chunk_bytes` or
    /// `checkpoint_interval_bytes` is zero, if the autoscale knobs are
    /// inconsistent (`min_replicas` of zero, `max_replicas` below
    /// `min_replicas`, non-positive `alpha` or drain bandwidth), or if
    /// the fault plan is invalid (rates outside `[0, 1]`, a kill naming
    /// a node outside the placement's topology).
    pub fn start(self) -> Result<ClusterRuntime, RtError> {
        self.validate()?;
        let node_count = self.placement.node_count();
        let (scale, initial_replicas) = self.pool_gauges();
        let scheds: Vec<NodeScheduler> = (0..node_count)
            .map(|n| self.node_scheduler(n, &initial_replicas))
            .collect();
        let mut dlu_tx: Vec<Option<Sender<DluMsg>>> = Vec::with_capacity(node_count);
        let mut dlu_rx: Vec<Option<Receiver<DluMsg>>> = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let (tx, rx) = bounded::<DluMsg>(self.cfg.rt.dlu_queue_capacity);
            dlu_tx.push(Some(tx));
            dlu_rx.push(Some(rx));
        }
        let node_states: Vec<Arc<NodeState>> = (0..node_count)
            .map(|_| Arc::new(NodeState::new(self.cfg.rt.sink_stripes)))
            .collect();
        let link_depth: Vec<Arc<AtomicUsize>> = (0..node_count * node_count)
            .map(|_| Arc::new(AtomicUsize::new(0)))
            .collect();
        let faults = if self.cfg.faults.is_noop() {
            None
        } else {
            Some(FaultState::new(self.cfg.faults.clone()))
        };
        let retention: Vec<Mutex<LinkRetention>> = if self.cfg.recovery.enabled {
            (0..node_count * node_count)
                .map(|_| {
                    let mut r = LinkRetention::default();
                    // Orchestrator mode: keep acked transfers replayable
                    // until their request is collected, so a relocation
                    // can re-send them toward the function's new node.
                    r.set_retain_acked(self.cfg.orchestrator);
                    Mutex::new(r)
                })
                .collect()
        } else {
            Vec::new()
        };
        let inner = Arc::new_cyclic(|me| Inner {
            workflow: Arc::clone(&self.workflow),
            cfg: self.cfg.clone(),
            placement: RwLock::new(self.placement.clone()),
            policy: self.policy.clone(),
            me: me.clone(),
            scheds,
            bodies: self.bodies.clone(),
            dlu_tx: RwLock::new(dlu_tx),
            reqs: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            nodes: node_states,
            counters: Counters::default(),
            gate: AdmissionGate::new(self.cfg.admission),
            shutdown: Arc::new(AtomicBool::new(false)),
            shutdown_mx: Mutex::new(()),
            shutdown_cv: Condvar::new(),
            next_transfer: AtomicU64::new(0),
            scale,
            initial_replicas,
            scale_events: Mutex::new(Vec::new()),
            started: Instant::now(),
            link_depth,
            faults,
            retention,
            wire: None,
            links: RwLock::new(Vec::new()),
            recorder: self.record_trace.then(|| Arc::new(TraceRecorder::new())),
        });

        // Trace preamble: everything `trace::replay` needs to rebuild
        // this run in the simulator — topology, pipe thresholds, the
        // workflow spec and the initial placement.
        if inner.recorder.is_some() {
            let json = WorkflowSpec::from_workflow(&self.workflow).to_json();
            inner.trace_with(|| TraceEventKind::Meta {
                nodes: node_count as u32,
                direct_threshold_bytes: self.cfg.direct_threshold_bytes as u64,
                chunk_bytes: self.cfg.chunk_bytes as u64,
                checkpoint_interval_bytes: self.cfg.checkpoint_interval_bytes as u64,
                workflow_json: json,
            });
            for f in self.workflow.function_ids() {
                let node = self.placement.node_of(&self.workflow.function(f).name);
                inner.trace_with(|| TraceEventKind::Place {
                    func: f.index() as u32,
                    node: node as u32,
                });
            }
        }

        // Fabric: one bounded SPSC ring + shipper thread per directed
        // node pair (the node's single merged DLU daemon is the one
        // producer). The rows live in `Inner.links` (the live routing
        // table); `signal_shutdown` clears them, which is what cascades
        // into shipper exit at teardown.
        let mut fabric_threads = Vec::new();
        let mut links_by_src: Vec<Arc<Vec<Option<RingSender<NetMsg>>>>> = Vec::new();
        for src in 0..node_count {
            let mut row: Vec<Option<RingSender<NetMsg>>> = Vec::with_capacity(node_count);
            for dst in 0..node_count {
                if src == dst {
                    row.push(None);
                    continue;
                }
                let (tx, rx) = ring::ring::<NetMsg>(self.cfg.link.queue_capacity);
                let ingress_inner = Arc::clone(&inner);
                fabric_threads.push(spawn_link(
                    src,
                    dst,
                    self.cfg.link.clone(),
                    rx,
                    Arc::new(move |msg| chaos_ingress(&ingress_inner, src, dst, msg)),
                    Arc::clone(&inner.shutdown),
                    Arc::clone(&inner.link_depth[src * node_count + dst]),
                ));
                row.push(Some(tx));
            }
            links_by_src.push(Arc::new(row));
        }
        *inner.links.write().expect("links lock poisoned") = links_by_src;

        // Recovery daemon: executes fault-plan restarts and retransmits
        // stale un-acked transfers. Only needed when something can go
        // wrong (an active fault plan) or be repaired (recovery on).
        if self.cfg.recovery.enabled || inner.faults.is_some() {
            let daemon_inner = Arc::clone(&inner);
            fabric_threads.push(
                std::thread::Builder::new()
                    .name("recovery-daemon".into())
                    .spawn(move || recovery_daemon(daemon_inner))
                    .expect("spawn recovery daemon"),
            );
        }

        // Orchestrator controller (the ε-CON analog): watches every
        // node's heartbeat and relocates the functions of a node that
        // stops beating.
        if self.cfg.orchestrator {
            let ctl_inner = Arc::clone(&inner);
            fabric_threads.push(
                std::thread::Builder::new()
                    .name("orchestrator".into())
                    .spawn(move || orchestrator::controller(ctl_inner))
                    .expect("spawn orchestrator controller"),
            );
        }

        // Nodes: one merged DLU daemon each (FLU workers spawn lazily
        // inside the node schedulers on first submit).
        let mut nodes = Vec::new();
        for (node_id, rx) in dlu_rx.into_iter().enumerate() {
            nodes.push(self.spawn_node(&inner, node_id, rx));
        }

        // Runtime-wide autoscaler: one thread samples every function's
        // pressure and resizes the hosting nodes' active-slot windows.
        if self.cfg.autoscale.enabled {
            let scaler_inner = Arc::clone(&inner);
            fabric_threads.push(
                std::thread::Builder::new()
                    .name("autoscaler".into())
                    .spawn(move || autoscaler(scaler_inner))
                    .expect("spawn autoscaler"),
            );
        }
        // Runtime-wide janitor for passive expire across every node.
        if let Some(ttl) = self.cfg.rt.sink_ttl {
            let janitor_inner = Arc::clone(&inner);
            fabric_threads.push(
                std::thread::Builder::new()
                    .name("janitor".into())
                    .spawn(move || janitor(janitor_inner, ttl))
                    .expect("spawn janitor"),
            );
        }

        Ok(ClusterRuntime {
            inner,
            nodes,
            fabric_threads,
            next_req: AtomicU64::new(0),
        })
    }

    /// Worker-process variant of [`ClusterRuntimeBuilder::start`]: builds
    /// the full cluster bookkeeping (every node's sink vector, placement,
    /// per-directed-link retention windows over the **endpoint** space —
    /// nodes plus the trailing coordinator) but spawns executor / DLU /
    /// janitor / autoscaler threads only for `spec.local`, the one node
    /// this OS process embodies. No in-process fabric and no recovery
    /// daemon are spawned; the outbound frame queues land in
    /// [`WireState`] and their receivers are returned so the TCP
    /// transport can attach one shipping agent per directed link
    /// (retransmission of ack-stale transfers is the transport's job
    /// too). Transfer ids are namespaced by `spec.epoch` so a restarted
    /// worker can never collide with ids from its previous incarnation.
    pub(crate) fn start_worker(self, spec: WireSpec) -> Result<WorkerStart, RtError> {
        self.validate()?;
        let node_count = self.placement.node_count();
        assert!(
            spec.local < node_count,
            "worker index {} outside the {node_count}-node topology",
            spec.local
        );
        let endpoints = node_count + 1;
        let (scale, initial_replicas) = self.pool_gauges();
        let scheds: Vec<NodeScheduler> = (0..node_count)
            .map(|n| self.node_scheduler(n, &initial_replicas))
            .collect();
        // Only the local node gets a DLU ingress: frames for remote
        // functions never queue here, they ride the wire.
        let mut dlu_tx: Vec<Option<Sender<DluMsg>>> = (0..node_count).map(|_| None).collect();
        let (local_dlu_tx, local_dlu_rx) = bounded::<DluMsg>(self.cfg.rt.dlu_queue_capacity);
        dlu_tx[spec.local] = Some(local_dlu_tx);
        let node_states: Vec<Arc<NodeState>> = (0..node_count)
            .map(|_| Arc::new(NodeState::new(self.cfg.rt.sink_stripes)))
            .collect();
        let link_depth: Vec<Arc<AtomicUsize>> = (0..endpoints * endpoints)
            .map(|_| Arc::new(AtomicUsize::new(0)))
            .collect();
        let faults = if self.cfg.faults.is_noop() {
            None
        } else {
            Some(FaultState::new(self.cfg.faults.clone()))
        };
        let retention: Vec<Mutex<LinkRetention>> = if self.cfg.recovery.enabled {
            (0..endpoints * endpoints)
                .map(|_| {
                    let mut r = LinkRetention::default();
                    // Orchestrator wire mode: a relocated function lands
                    // on a node holding none of its bytes, so completed
                    // transfers must stay replayable until their request
                    // is purged.
                    r.set_retain_acked(self.cfg.orchestrator);
                    Mutex::new(r)
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut out: Vec<Option<RingSender<NetMsg>>> = Vec::with_capacity(endpoints);
        let mut out_rx: Vec<Option<RingReceiver<NetMsg>>> = Vec::with_capacity(endpoints);
        for dst in 0..endpoints {
            if dst == spec.local {
                out.push(None);
                out_rx.push(None);
            } else {
                let (tx, rx) = ring::ring::<NetMsg>(self.cfg.link.queue_capacity);
                out.push(Some(tx));
                out_rx.push(Some(rx));
            }
        }
        let inner = Arc::new_cyclic(|me| Inner {
            workflow: Arc::clone(&self.workflow),
            cfg: self.cfg.clone(),
            placement: RwLock::new(self.placement.clone()),
            policy: self.policy.clone(),
            me: me.clone(),
            scheds,
            bodies: self.bodies.clone(),
            dlu_tx: RwLock::new(dlu_tx),
            reqs: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            nodes: node_states,
            counters: Counters::default(),
            gate: AdmissionGate::new(self.cfg.admission),
            shutdown: Arc::new(AtomicBool::new(false)),
            shutdown_mx: Mutex::new(()),
            shutdown_cv: Condvar::new(),
            next_transfer: AtomicU64::new(worker_transfer_base(spec.local, spec.epoch)),
            scale,
            initial_replicas,
            scale_events: Mutex::new(Vec::new()),
            started: Instant::now(),
            link_depth,
            faults,
            retention,
            wire: Some(WireState {
                local: spec.local,
                endpoints,
                out,
                purged: Mutex::new(HashSet::new()),
            }),
            links: RwLock::new(Vec::new()),
            recorder: None,
        });

        // Only the local node runs threads; its DLU daemons route over
        // the wire's outbound queues instead of in-process links. Every
        // source node maps to the same outbound wire row.
        let wire_row = Arc::new(
            inner
                .wire
                .as_ref()
                .expect("wire state just built")
                .out
                .clone(),
        );
        *inner.links.write().expect("links lock poisoned") =
            vec![Arc::clone(&wire_row); node_count];
        drop(wire_row);
        let mut nodes = Vec::new();
        for node_id in 0..node_count {
            if node_id == spec.local {
                nodes.push(self.spawn_node(&inner, node_id, Some(local_dlu_rx.clone())));
            } else {
                nodes.push(NodeRuntime {
                    id: node_id,
                    functions: self.hosted_on(node_id),
                    state: Arc::clone(&inner.nodes[node_id]),
                    threads: Vec::new(),
                });
            }
        }
        drop(local_dlu_rx);
        // The worker's autoscaler and janitor ride on the local node's
        // thread set (there is no fabric thread vector in wire mode).
        if self.cfg.autoscale.enabled {
            let scaler_inner = Arc::clone(&inner);
            nodes[spec.local].threads.push(
                std::thread::Builder::new()
                    .name("autoscaler".into())
                    .spawn(move || autoscaler(scaler_inner))
                    .expect("spawn autoscaler"),
            );
        }
        if let Some(ttl) = self.cfg.rt.sink_ttl {
            let janitor_inner = Arc::clone(&inner);
            nodes[spec.local].threads.push(
                std::thread::Builder::new()
                    .name("janitor".into())
                    .spawn(move || janitor(janitor_inner, ttl))
                    .expect("spawn janitor"),
            );
        }

        Ok((
            ClusterRuntime {
                inner,
                nodes,
                fabric_threads: Vec::new(),
                next_req: AtomicU64::new(0),
            },
            out_rx,
        ))
    }

    /// Shared validation of [`ClusterRuntimeBuilder::start`] and
    /// [`ClusterRuntimeBuilder::start_worker`] (see `start`'s docs for
    /// the panic and error contract).
    fn validate(&self) -> Result<(), RtError> {
        assert!(self.cfg.chunk_bytes > 0, "chunk_bytes must be positive");
        assert!(
            self.cfg.checkpoint_interval_bytes > 0,
            "checkpoint_interval_bytes must be positive"
        );
        if let Err(e) = self.cfg.autoscale.validate() {
            panic!("{e}");
        }
        if let Err(e) = self.cfg.faults.validate() {
            panic!("{e}");
        }
        for kill in &self.cfg.faults.kills {
            assert!(
                kill.node < self.placement.node_count(),
                "fault plan kills node {}, but the topology has {} node(s)",
                kill.node,
                self.placement.node_count()
            );
        }
        for f in self.workflow.function_ids() {
            let name = &self.workflow.function(f).name;
            if !self.bodies.contains_key(name) {
                return Err(RtError::UnregisteredFunction(name.clone()));
            }
        }
        for name in self.bodies.keys().chain(self.replicas.keys()) {
            if self.workflow.function_by_name(name).is_none() {
                return Err(RtError::UnknownFunction(name.clone()));
            }
        }
        self.placement
            .validate(&self.workflow)
            .map_err(RtError::InvalidPlacement)
    }

    /// Builds the per-function pool gauges and the t=0 replica counts.
    #[allow(clippy::type_complexity)]
    fn pool_gauges(&self) -> (HashMap<String, Arc<FnScale>>, HashMap<String, usize>) {
        let scaling = self.cfg.autoscale.enabled;
        let mut scale = HashMap::new();
        let mut initial_replicas = HashMap::new();
        for f in self.workflow.function_ids() {
            let name = self.workflow.function(f).name.clone();
            let mut replicas = *self
                .replicas
                .get(&name)
                .unwrap_or(&self.cfg.rt.flu_replicas)
                .max(&1);
            if scaling {
                replicas = replicas.clamp(
                    self.cfg.autoscale.min_replicas,
                    self.cfg.autoscale.max_replicas,
                );
            }
            scale.insert(name.clone(), Arc::new(FnScale::new(replicas)));
            initial_replicas.insert(name, replicas);
        }
        (scale, initial_replicas)
    }

    /// Builds one node's work-stealing FLU scheduler. The slot ceiling
    /// is migration-safe: the sum over **all** functions of each one's
    /// replica cap, because relocation or live migration can land any
    /// function here later. The initial active window is the replica
    /// sum of just the functions the placement starts on this node.
    fn node_scheduler(
        &self,
        node_id: usize,
        initial_replicas: &HashMap<String, usize>,
    ) -> NodeScheduler {
        let scaling = self.cfg.autoscale.enabled;
        let mut max_slots = 0usize;
        let mut active = 0usize;
        for f in self.workflow.function_ids() {
            let name = &self.workflow.function(f).name;
            let initial = initial_replicas[name];
            max_slots += if scaling {
                self.cfg.autoscale.max_replicas.max(initial)
            } else {
                initial
            };
            if self.placement.node_of(name) == node_id {
                active += initial;
            }
        }
        NodeScheduler::new(format!("node{node_id}"), max_slots.max(1), active.max(1))
    }

    /// Names of the functions the placement puts on `node_id`, in
    /// workflow order.
    fn hosted_on(&self, node_id: usize) -> Vec<String> {
        self.workflow
            .function_ids()
            .filter_map(|f| {
                let name = &self.workflow.function(f).name;
                (self.placement.node_of(name) == node_id).then(|| name.clone())
            })
            .collect()
    }

    /// Spawns one node's worth of threads: the node's **merged DLU
    /// daemon** (routes every hosted function's puts) and, in in-process
    /// orchestrator mode, its heartbeat responder. FLU invocations run
    /// on the node's work-stealing scheduler, whose worker threads spawn
    /// lazily on first submit rather than here. Outbound routing fetches
    /// the node's link row from `Inner.links` per put.
    fn spawn_node(
        &self,
        inner: &Arc<Inner>,
        node_id: usize,
        dlu_rx: Option<Receiver<DluMsg>>,
    ) -> NodeRuntime {
        let mut threads = Vec::new();
        if let Some(rx) = dlu_rx {
            let daemon_inner = Arc::clone(inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("node{node_id}-dlu"))
                    .spawn(move || dlu_daemon(daemon_inner, rx))
                    .expect("spawn dlu daemon"),
            );
        }
        // Heartbeat responder (in-process orchestrator mode): stamps the
        // node's keep-alive beat while the node is up. Wire-mode
        // heartbeats are coordinator pings over the control channel
        // instead.
        if self.cfg.orchestrator && inner.wire.is_none() {
            let hb_inner = Arc::clone(inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("node{node_id}-heartbeat"))
                    .spawn(move || orchestrator::heartbeat_responder(hb_inner, node_id))
                    .expect("spawn heartbeat responder"),
            );
        }
        NodeRuntime {
            id: node_id,
            functions: self.hosted_on(node_id),
            state: Arc::clone(&inner.nodes[node_id]),
            threads,
        }
    }
}

/// Identity of a worker process in a TCP cluster: which node it
/// embodies and which incarnation it is.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WireSpec {
    /// The node index this process embodies.
    pub(crate) local: usize,
    /// Restart epoch (0 on first launch). Namespaces transfer ids so a
    /// restarted worker's streams can never collide with acks or
    /// duplicates addressed to its previous life.
    pub(crate) epoch: u32,
}

/// First transfer id a worker mints: epoch in the top 16 bits, the node
/// index below it, so every (incarnation, sender) pair draws from a
/// disjoint id space. The coordinator uses the same scheme with the
/// endpoint index past the last node.
pub(crate) fn worker_transfer_base(local: usize, epoch: u32) -> u64 {
    ((epoch as u64) << 48) | ((local as u64 & 0xff) << 40)
}

/// A running multi-node FLU/DLU runtime. Create with
/// [`ClusterRuntimeBuilder`]; for the single-node special case,
/// [`RuntimeBuilder`] is a thinner front door.
pub struct ClusterRuntime {
    pub(crate) inner: Arc<Inner>,
    nodes: Vec<NodeRuntime>,
    fabric_threads: Vec<JoinHandle<()>>,
    next_req: AtomicU64,
}

impl ClusterRuntime {
    /// Invokes the workflow with client inputs `(data_name, payload)`.
    /// Returns immediately; collect results with [`ClusterRuntime::wait`].
    pub fn invoke(&self, inputs: Vec<(String, Bytes)>) -> ReqId {
        let req = ReqId(self.next_req.fetch_add(1, Ordering::Relaxed));
        let wf = &self.inner.workflow;
        // Resolve switches deterministically per request — the same
        // derivation every worker process repeats from the request id
        // alone, so all endpoints agree on the active graph.
        let active = resolve_active(wf, req.0);
        self.inner.trace_with(|| TraceEventKind::Request {
            req: req.0,
            payload_bytes: inputs.iter().map(|(_, p)| p.len() as u64).sum(),
        });

        let outputs_missing = wf
            .client_outputs()
            .filter(|e| active.edge_active(*e))
            .count();
        self.inner
            .reqs
            .lock()
            .expect("runtime lock poisoned")
            .insert(
                req.0,
                ClientReqState {
                    outputs_missing,
                    outputs: Vec::new(),
                    errors: Vec::new(),
                },
            );

        // Seed every node's sink with the request's missing-input counts
        // for the functions it hosts.
        for (node_id, node) in self.inner.nodes.iter().enumerate() {
            node.sink
                .insert(req.0, seed_req_state(&self.inner, node_id, &active));
        }

        // Deliver the client inputs by data name (cluster ingress: no
        // inter-node shaping on the way in).
        for (name, payload) in inputs {
            let mut matched = false;
            for eid in wf.client_inputs().collect::<Vec<_>>() {
                let e = wf.edge(eid);
                if e.data_name == name {
                    matched = true;
                    if let Endpoint::Function(dst) = e.target {
                        let dst_node = self.inner.node_of(&wf.function(dst).name);
                        deliver(
                            &self.inner,
                            dst_node,
                            req,
                            eid,
                            format!("{name}@$USER"),
                            payload.clone(),
                        );
                    }
                }
            }
            if !matched {
                let mut reqs = self.inner.reqs.lock().expect("runtime lock poisoned");
                if let Some(rs) = reqs.get_mut(&req.0) {
                    rs.errors
                        .push(format!("no client input edge named `{name}`"));
                }
                self.inner.done.notify_all();
            }
        }
        req
    }

    /// Invokes the workflow on behalf of `tenant`, subject to the
    /// configured admission caps ([`ClusterRtConfig::admission`]). The
    /// in-flight slot is released when the request completes via
    /// [`ClusterRuntime::wait`] or is abandoned via
    /// [`ClusterRuntime::forget`].
    ///
    /// # Errors
    ///
    /// [`Rejected`] when the tenant (or the whole gate) is at its
    /// in-flight cap; nothing enters the data plane in that case.
    pub fn try_invoke(
        &self,
        tenant: &str,
        inputs: Vec<(String, Bytes)>,
    ) -> Result<ReqId, Rejected> {
        if let Err(r) = self.inner.gate.try_admit(tenant) {
            self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(r);
        }
        self.inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
        let req = self.invoke(inputs);
        self.inner.gate.bind(req.0, tenant);
        Ok(req)
    }

    /// Per-tenant admission counters (admitted/rejected/completed/
    /// failed/in-flight), sorted by tenant name. Empty when no
    /// [`ClusterRuntime::try_invoke`] traffic arrived.
    pub fn tenant_stats(&self) -> Vec<(String, TenantStats)> {
        self.inner.gate.tenant_stats()
    }

    /// The recorded trace so far, in record order (`None` unless the
    /// runtime was built with [`ClusterRuntimeBuilder::record_trace`]).
    /// Feed it to [`trace::replay`](crate::trace::replay) and
    /// [`trace::diff`](crate::trace::diff) for sim↔live differential
    /// checking.
    pub fn trace_events(&self) -> Option<Vec<TraceEvent>> {
        self.inner.recorder.as_ref().map(|r| r.events())
    }

    /// The recorded trace in its on-disk encoding (the [`crate::trace`]
    /// `DFTR` format), ready to write to a file.
    ///
    /// This is a live snapshot: transfers off a request's critical path
    /// (a sibling branch still shipping when the last client output
    /// lands) record their events concurrently with
    /// [`ClusterRuntime::wait`] returning, so a trace read while the
    /// cluster is up may miss trailing events. For a complete trace,
    /// use [`ClusterRuntime::shutdown_into_trace`].
    pub fn trace_bytes(&self) -> Option<Vec<u8>> {
        self.inner.recorder.as_ref().map(|r| r.to_bytes())
    }

    /// Shuts the runtime down ([`ClusterRuntime::shutdown`]) and returns
    /// the recorded trace in its on-disk [`crate::trace`] encoding
    /// (`None` unless built with
    /// [`ClusterRuntimeBuilder::record_trace`]). Unlike
    /// [`ClusterRuntime::trace_bytes`], the trace is read only after
    /// every node and fabric thread has drained and joined, so it is
    /// guaranteed to hold every event of every completed request.
    pub fn shutdown_into_trace(self) -> Option<Vec<u8>> {
        let recorder = self.inner.recorder.clone();
        self.shutdown();
        recorder.map(|r| r.to_bytes())
    }

    /// Blocks until every client output of `req` arrived, or `timeout`.
    ///
    /// A successful wait releases everything the runtime tracked for the
    /// request. A timed-out or faulted request stays tracked so `wait`
    /// can be retried; callers abandoning such a request should
    /// [`ClusterRuntime::forget`] it, or its parked payloads remain in
    /// the node sinks for the runtime's lifetime.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] if the deadline passes first;
    /// [`RtError::Faulted`] if any function body reported an error (e.g.
    /// a `put` with an unknown data name); [`RtError::UnknownRequest`]
    /// for a foreign id.
    pub fn wait(&self, req: ReqId, timeout: Duration) -> Result<Vec<(String, Bytes)>, RtError> {
        let deadline = Instant::now() + timeout;
        let mut reqs = self.inner.reqs.lock().expect("runtime lock poisoned");
        loop {
            let rs = reqs.get(&req.0).ok_or(RtError::UnknownRequest)?;
            if !rs.errors.is_empty() {
                return Err(RtError::Faulted(rs.errors.join("; ")));
            }
            if rs.outputs_missing == 0 {
                let rs = reqs.remove(&req.0).expect("checked above");
                drop(reqs);
                // Drop the request's per-node sink state (leftover
                // entries of switched-off branches, reassembly buffers).
                self.purge_nodes(req);
                self.inner.gate.finish(req.0, true);
                return Ok(rs.outputs);
            }
            // Re-check the deadline on every wakeup (spurious or not)
            // and saturate the remaining-time arithmetic: an `Instant`
            // subtraction panics on underflow, and a wakeup can land
            // after the deadline passed.
            let now = Instant::now();
            if now >= deadline {
                return Err(RtError::Timeout);
            }
            reqs = self
                .inner
                .done
                .wait_timeout(reqs, deadline.saturating_duration_since(now))
                .expect("runtime lock poisoned")
                .0;
        }
    }

    /// Abandons a request: drops its client-side state and every node's
    /// parked payloads and reassembly buffers for it. Call this after
    /// giving up on a timed-out or faulted request so a long-lived
    /// runtime does not accumulate dead sink entries; in-flight puts for
    /// the request are discarded on arrival afterwards.
    pub fn forget(&self, req: ReqId) {
        self.inner
            .reqs
            .lock()
            .expect("runtime lock poisoned")
            .remove(&req.0);
        self.purge_nodes(req);
        self.inner.gate.finish(req.0, false);
    }

    fn purge_nodes(&self, req: ReqId) {
        for node in &self.inner.nodes {
            node.sink.remove(req.0);
        }
        if self.inner.cfg.orchestrator && self.inner.cfg.recovery.enabled {
            // Retain-acked mode parks completed transfers for relocation
            // replay instead of freeing them on ack — a collected request
            // is the reclamation point.
            for r in self.inner.retention.iter() {
                r.lock().expect("retention lock poisoned").purge_req(req.0);
            }
        }
    }

    /// Number of worker nodes in the topology.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node at `index` (work-stealing FLU scheduler, merged DLU
    /// daemon and sink of the functions placed there).
    pub fn node(&self, index: usize) -> &NodeRuntime {
        &self.nodes[index]
    }

    /// The node currently hosting function `name` per the **live**
    /// placement — relocation and [`ClusterRuntime::migrate_function`]
    /// move this answer at runtime.
    pub fn node_of(&self, name: &str) -> usize {
        self.inner.node_of(name)
    }

    /// Replica gauge of function `name`: how many worker slots of its
    /// hosting node's scheduler it contributes. With elastic scaling
    /// enabled this is a **live gauge** that moves as the autoscaler
    /// grows and shrinks the function's share of stealing parallelism.
    pub fn replicas_of(&self, name: &str) -> Option<usize> {
        self.inner
            .scale
            .get(name)
            .map(|s| s.replicas.load(Ordering::Relaxed))
    }

    /// The current Eq. 1 pressure sample of function `name`, seconds:
    /// `α · backlog / Bw − T_FLU` with the configured autoscale
    /// coefficients. Positive means the DLU is not keeping up.
    pub fn pressure_of(&self, name: &str) -> Option<f64> {
        let s = self.inner.scale.get(name)?;
        let auto = &self.inner.cfg.autoscale;
        Some(pressure_secs(
            auto.alpha,
            s.backlog_bytes.load(Ordering::Relaxed) as f64,
            auto.drain_bw_bytes_per_sec,
            s.t_flu.lock().expect("t_flu lock poisoned").get_or(0.0),
        ))
    }

    /// Bytes currently sitting in (or being drained from) the DLU queues
    /// of the functions hosted on `node` — the node's outbound pressure.
    pub fn node_pressure(&self, node: usize) -> u64 {
        node_pressure_of(&self.inner, node)
    }

    /// Messages queued (or in shaping) on the fabric links **into**
    /// `node` — the node's inbound pressure.
    pub fn fabric_inbound_depth(&self, node: usize) -> usize {
        let s = stride(&self.inner);
        (0..s)
            .filter(|src| *src != node)
            .map(|src| self.inner.link_depth[src * s + node].load(Ordering::Relaxed))
            .sum()
    }

    /// The node with the least combined pressure: DLU backlog bytes plus
    /// inbound fabric queue depth (scaled by the chunk size so both terms
    /// are bytes). The orchestrator feeds this figure into
    /// [`PlacementPolicy::relocate`] after a node loss, and callers can
    /// use it to pick [`ClusterRuntime::migrate_function`] targets.
    pub fn least_pressured_node(&self) -> usize {
        let chunk = self.inner.cfg.chunk_bytes as u64;
        (0..self.nodes.len())
            .min_by_key(|n| self.node_pressure(*n) + self.fabric_inbound_depth(*n) as u64 * chunk)
            .unwrap_or(0)
    }

    /// Crashes `node` (§6.2 data-plane crash): from now until
    /// [`ClusterRuntime::restart_node`], every fabric frame inbound to
    /// the node is lost, and the node's in-flight reassembly state was
    /// rolled back to the last checkpoint mark of each stream — progress
    /// past a mark is volatile, progress below it is durable.
    ///
    /// With [`RecoveryConfig`] enabled the crash is survivable: senders
    /// retain every un-acked frame, and the restart replays each
    /// incomplete transfer from its last acknowledged mark. Without
    /// recovery, a crash mid-request loses data and `wait` times out —
    /// exactly the failure the checkpoint protocol exists to fix.
    ///
    /// Returns a [`CrashReport`] describing the damage; crashing an
    /// already-down node is a no-op (`was_up == false`).
    ///
    /// Fault-plan kills ([`FaultPlan::kill_node`](crate::fault::FaultPlan::kill_node))
    /// drive this same path at a deterministic logical event.
    pub fn crash_node(&self, node: usize) -> CrashReport {
        crash_node_inner(&self.inner, node)
    }

    /// Restarts a crashed node. With [`RecoveryConfig`] enabled, replays
    /// every incomplete inbound transfer from the senders' retention
    /// windows — resuming chunked streams at their last acknowledged
    /// checkpoint mark, not byte 0 — before returning; the surviving
    /// Wait-Match sink entries were never lost (the sink is modeled
    /// durable, per the paper's function-exclusive disk backing).
    /// Restarting a node that is not down is a no-op.
    pub fn restart_node(&self, node: usize) {
        restart_node_inner(&self.inner, node)
    }

    /// Transfers currently held in the §6.2 retention windows across all
    /// links: sent but not yet fully acknowledged. Zero when recovery is
    /// disabled, and zero again once a quiesced runtime has delivered
    /// and acked everything — retention must never leak.
    pub fn retained_transfers(&self) -> usize {
        self.inner
            .retention
            .iter()
            .map(|r| r.lock().expect("retention lock poisoned").len())
            .sum()
    }

    /// Every scale event since the runtime started, in time order (empty
    /// while autoscaling is disabled).
    pub fn scaling_timeline(&self) -> Vec<ScaleEvent> {
        self.inner
            .scale_events
            .lock()
            .expect("scale events lock poisoned")
            .clone()
    }

    /// The per-function replica counts over time as a
    /// [`dataflower_metrics::Timeline`]: one series per function, starting
    /// at its initial pool size, stepping on every scale event.
    pub fn replica_timeline(&self) -> Timeline {
        let mut t = Timeline::new();
        for f in self.inner.workflow.function_ids() {
            let name = &self.inner.workflow.function(f).name;
            t.record(name.clone(), 0.0, self.inner.initial_replicas[name] as f64);
        }
        for ev in self.scaling_timeline() {
            t.record(ev.function, ev.at.as_secs_f64(), ev.to_replicas as f64);
        }
        t
    }

    /// Runtime counters, aggregated across all nodes and links.
    pub fn stats(&self) -> RtStats {
        self.inner.counters.snapshot()
    }

    /// Stops all node and fabric threads and waits for them (clean
    /// teardown; prefer this over relying on `Drop`, which detaches
    /// without joining).
    ///
    /// Teardown cascades: scheduler workers drain their queues and park
    /// permanently, in-flight invocations drop their DLU senders, the
    /// merged DLU daemons drain and drop the link senders, the link
    /// shippers drain and exit.
    pub fn shutdown(mut self) {
        self.signal_shutdown();
        for sched in &self.inner.scheds {
            sched.stop();
        }
        for node in &mut self.nodes {
            for t in node.threads.drain(..) {
                let _ = t.join();
            }
        }
        for t in self.fabric_threads.drain(..) {
            let _ = t.join();
        }
    }

    fn signal_shutdown(&self) {
        // The lock orders the store before any janitor's or autoscaler's
        // next wait (none can sleep through the signal) and freezes the
        // replica gauges: the autoscaler only scales while holding this
        // same mutex.
        let _guard = self
            .inner
            .shutdown_mx
            .lock()
            .expect("shutdown lock poisoned");
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.shutdown_cv.notify_all();
        // Wake every scheduler worker (non-blocking; `shutdown` joins).
        for sched in &self.inner.scheds {
            sched.signal_stop();
        }
        // Drop the DLU senders: each node's daemon exits once in-flight
        // invocations drop their clones and the queue drains.
        for tx in self
            .inner
            .dlu_tx
            .write()
            .expect("dlu senders lock poisoned")
            .iter_mut()
        {
            *tx = None;
        }
        // Drop the link rows: they hold the only long-lived senders into
        // the link shippers, which exit when their ring disconnects.
        self.inner
            .links
            .write()
            .expect("links lock poisoned")
            .clear();
    }
}

impl Drop for ClusterRuntime {
    fn drop(&mut self) {
        // Non-blocking teardown: signal and detach (C-DTOR-BLOCK).
        self.signal_shutdown();
    }
}

impl fmt::Debug for ClusterRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterRuntime")
            .field("workflow", &self.inner.workflow.name())
            .field("nodes", &self.nodes.len())
            .field("links", &self.fabric_threads.len())
            .finish()
    }
}

/// Builder for a single-node [`Runtime`]: register one body per workflow
/// function, then [`RuntimeBuilder::start`].
pub struct RuntimeBuilder {
    builder: ClusterRuntimeBuilder,
    cfg: RtConfig,
}

impl RuntimeBuilder {
    /// Starts building a runtime for `workflow`.
    pub fn new(workflow: Arc<Workflow>) -> Self {
        RuntimeBuilder {
            builder: ClusterRuntimeBuilder::new(workflow),
            cfg: RtConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn config(mut self, cfg: RtConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Registers the body of function `name`.
    pub fn register<F>(mut self, name: impl Into<String>, body: F) -> Self
    where
        F: Fn(&mut FluContext) + Send + Sync + 'static,
    {
        self.builder = self.builder.register(name, body);
        self
    }

    /// Overrides the executor-thread count for function `name`
    /// (scale-out within the process).
    pub fn replicas(mut self, name: impl Into<String>, n: usize) -> Self {
        self.builder = self.builder.replicas(name, n);
        self
    }

    /// Validates registrations and spawns all threads.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::UnregisteredFunction`] if a workflow function
    /// has no body, or [`RtError::UnknownFunction`] if a body or replica
    /// override names a function not in the workflow.
    pub fn start(self) -> Result<Runtime, RtError> {
        let cluster = self
            .builder
            .config(ClusterRtConfig {
                rt: self.cfg,
                ..ClusterRtConfig::default()
            })
            .placement(Placement::with_nodes(1))
            .start()?;
        Ok(Runtime { cluster })
    }
}

/// A running single-node FLU/DLU runtime — a [`ClusterRuntime`] pinned to
/// one worker node. Create with [`RuntimeBuilder`].
///
/// # Examples
///
/// A real two-stage pipeline that uppercases then reverses a string:
///
/// ```
/// use std::sync::Arc;
/// use dataflower_rt::{Bytes, RuntimeBuilder};
/// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new("pipeline");
/// let upper = b.function("upper", WorkModel::fixed(0.001));
/// let rev = b.function("rev", WorkModel::fixed(0.001));
/// b.client_input(upper, "text", SizeModel::Fixed(64.0));
/// b.edge(upper, rev, "upped", SizeModel::Fixed(64.0));
/// b.client_output(rev, "result", SizeModel::Fixed(64.0));
/// let wf = Arc::new(b.build()?);
///
/// let rt = RuntimeBuilder::new(wf)
///     .register("upper", |ctx| {
///         let s = String::from_utf8_lossy(ctx.input("text").unwrap()).to_uppercase();
///         ctx.put("upped", Bytes::from(s.into_bytes()));
///     })
///     .register("rev", |ctx| {
///         let s: String = String::from_utf8_lossy(ctx.input("upped").unwrap())
///             .chars().rev().collect();
///         ctx.put("result", Bytes::from(s.into_bytes()));
///     })
///     .start()
///     .unwrap();
///
/// let req = rt.invoke(vec![("text".into(), Bytes::from_static(b"dataflower"))]);
/// let outputs = rt.wait(req, std::time::Duration::from_secs(5)).unwrap();
/// assert_eq!(outputs[0].1.as_ref(), b"REWOLFATAD");
/// rt.shutdown();
/// # Ok::<(), dataflower_workflow::WorkflowError>(())
/// ```
pub struct Runtime {
    cluster: ClusterRuntime,
}

impl Runtime {
    /// Invokes the workflow with client inputs `(data_name, payload)`.
    /// Returns immediately; collect results with [`Runtime::wait`].
    pub fn invoke(&self, inputs: Vec<(String, Bytes)>) -> ReqId {
        self.cluster.invoke(inputs)
    }

    /// Blocks until every client output of `req` arrived, or `timeout`.
    ///
    /// # Errors
    ///
    /// See [`ClusterRuntime::wait`].
    pub fn wait(&self, req: ReqId, timeout: Duration) -> Result<Vec<(String, Bytes)>, RtError> {
        self.cluster.wait(req, timeout)
    }

    /// Abandons a request; see [`ClusterRuntime::forget`].
    pub fn forget(&self, req: ReqId) {
        self.cluster.forget(req)
    }

    /// Number of FLU executor threads serving `name` (scale-out view).
    pub fn replicas_of(&self, name: &str) -> Option<usize> {
        self.cluster.replicas_of(name)
    }

    /// Runtime counters.
    pub fn stats(&self) -> RtStats {
        self.cluster.stats()
    }

    /// Stops all threads and waits for them (clean teardown; prefer this
    /// over relying on `Drop`, which detaches without joining).
    pub fn shutdown(self) {
        self.cluster.shutdown()
    }
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("cluster", &self.cluster)
            .finish()
    }
}

/// Queues one invocation of `name` on its hosting node's work-stealing
/// scheduler. The task captures a `Weak<Inner>`: if the runtime was
/// dropped before a worker gets to it, the invocation is discarded —
/// consistent with detached teardown. A node whose DLU sender is gone
/// (shutdown, or a remote node in wire mode) drops the invocation the
/// same way the old per-function queues did on disconnect.
pub(crate) fn submit_invoke(
    inner: &Inner,
    name: &str,
    req: ReqId,
    inputs: BTreeMap<String, Bytes>,
) {
    let node = inner.node_of(name);
    let Some(dlu) = inner.dlu_sender(node) else {
        return;
    };
    let me = inner.me.clone();
    let body = Arc::clone(&inner.bodies[name]);
    let scale = Arc::clone(&inner.scale[name]);
    let fn_name = name.to_string();
    inner.scheds[node].submit(Box::new(move || {
        let Some(inner) = me.upgrade() else {
            return;
        };
        run_invocation(&inner, &fn_name, req, inputs, &body, dlu, &scale);
    }));
}

/// Runs one function invocation on the calling scheduler worker.
fn run_invocation(
    inner: &Inner,
    fn_name: &str,
    req: ReqId,
    inputs: BTreeMap<String, Bytes>,
    body: &Body,
    dlu: Sender<DluMsg>,
    scale: &Arc<FnScale>,
) {
    // The in-flight gauge: migration drains wait on this hitting 0.
    scale.live.fetch_add(1, Ordering::SeqCst);
    inner.counters.invocations.fetch_add(1, Ordering::Relaxed);
    inner.trace_with(|| TraceEventKind::Invoke {
        req: req.0,
        func: inner
            .workflow
            .function_by_name(fn_name)
            .map_or(u32::MAX, |f| f.index() as u32),
    });
    let mut ctx = FluContext::new(req, fn_name.to_string(), inputs, dlu, Arc::clone(scale));
    let t0 = Instant::now();
    body(&mut ctx);
    // Eq. 1's T_FLU is compute time: discount what the body spent
    // blocked in `put` behind a saturated DLU, or backpressure would
    // masquerade as useful work and suppress the very pressure it
    // signals.
    let t_flu = t0.elapsed().saturating_sub(ctx.blocked);
    scale
        .t_flu
        .lock()
        .expect("t_flu lock poisoned")
        .push(t_flu.as_secs_f64());
    scale.live.fetch_sub(1, Ordering::SeqCst);
}

/// One node's merged DLU daemon: drains the node-wide put queue and
/// routes each payload, charging the drained bytes back to the source
/// function's Eq. 1 backlog gauge. Exits when the queue disconnects
/// (shutdown cleared the long-lived sender and in-flight invocations
/// dropped their clones) or the shutdown flag is up.
pub(crate) fn dlu_daemon(inner: Arc<Inner>, rx: Receiver<DluMsg>) {
    while let Ok(msg) = rx.recv() {
        if inner.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let len = msg.payload.len() as u64;
        let scale = inner.scale.get(&msg.src_fn).cloned();
        route(&inner, msg);
        // The payload left the DLU (routing finished, including any time
        // blocked on a saturated inter-node link): drop it from the
        // Eq. 1 backlog gauge.
        if let Some(scale) = scale {
            scale.backlog_bytes.fetch_sub(len, Ordering::Relaxed);
        }
    }
}

/// Re-derives `node`'s active worker-slot window from the live placement
/// and replica gauges: the sum of the replicas of every function the
/// placement currently puts there. Called after every scale event,
/// relocation and migration.
pub(crate) fn refresh_scheduler_active(inner: &Inner, node: usize) {
    let placement = inner.placement.read().expect("placement lock poisoned");
    let slots: usize = inner
        .scale
        .iter()
        .filter(|(name, _)| placement.node_of(name) == node)
        .map(|(_, s)| s.replicas.load(Ordering::Relaxed))
        .sum();
    drop(placement);
    inner.scheds[node].set_active(slots);
}

/// The runtime-wide elastic scaling loop: every `sample_interval`,
/// convert each function's DLU backlog into Eq. 1 pressure-seconds and
/// let its [`ScalePolicy`] move the replica gauge between the bounds.
/// A scale event does not spawn or retire threads — it resizes the
/// hosting node's *active worker-slot window*
/// ([`NodeScheduler::set_active`]), i.e. how much stealing parallelism
/// the node's scheduler may use. Scaling happens under the shutdown
/// mutex so teardown always sees a consistent replica count.
fn autoscaler(inner: Arc<Inner>) {
    let auto = inner.cfg.autoscale.clone();
    let local = inner.wire.as_ref().map(|w| w.local);
    let mut fns: Vec<(String, ScalePolicy)> = inner
        .workflow
        .function_ids()
        .map(|f| {
            (
                inner.workflow.function(f).name.clone(),
                ScalePolicy::new(&auto),
            )
        })
        .collect();
    loop {
        let mut guard = inner.shutdown_mx.lock().expect("shutdown lock poisoned");
        if inner.shutdown.load(Ordering::Relaxed) {
            break;
        }
        guard = inner
            .shutdown_cv
            .wait_timeout(guard, auto.sample_interval)
            .expect("shutdown lock poisoned")
            .0;
        if inner.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let now = inner.started.elapsed();
        for (name, policy) in fns.iter_mut() {
            let node = inner.node_of(name);
            // Wire mode: each worker process scales only the functions
            // it currently hosts.
            if local.is_some_and(|l| l != node) {
                continue;
            }
            let scale = &inner.scale[name];
            let backlog = scale.backlog_bytes.load(Ordering::Relaxed) as f64;
            let t_flu = scale.t_flu.lock().expect("t_flu lock poisoned").get_or(0.0);
            let pressure = pressure_secs(auto.alpha, backlog, auto.drain_bw_bytes_per_sec, t_flu);
            let replicas = scale.replicas.load(Ordering::Relaxed);
            let Some(direction) = policy.decide(now.as_secs_f64(), pressure, replicas) else {
                continue;
            };
            let to_replicas = match direction {
                ScaleDirection::Out => {
                    inner.counters.scale_outs.fetch_add(1, Ordering::Relaxed);
                    scale.replicas.fetch_add(1, Ordering::SeqCst) + 1
                }
                ScaleDirection::In => {
                    inner.counters.scale_ins.fetch_add(1, Ordering::Relaxed);
                    scale.replicas.fetch_sub(1, Ordering::SeqCst) - 1
                }
            };
            refresh_scheduler_active(&inner, node);
            inner.trace_with(|| TraceEventKind::Scale {
                func: inner
                    .workflow
                    .function_by_name(name)
                    .map_or(u32::MAX, |f| f.index() as u32),
                node: node as u32,
                out: direction == ScaleDirection::Out,
                from_replicas: replicas as u32,
                to_replicas: to_replicas as u32,
            });
            inner
                .scale_events
                .lock()
                .expect("scale events lock poisoned")
                .push(ScaleEvent {
                    at: now,
                    function: name.clone(),
                    node,
                    direction,
                    from_replicas: replicas,
                    to_replicas,
                    pressure_secs: pressure,
                });
        }
        drop(guard);
    }
}

/// Routes one DLU put along the matching data edges, classifying each
/// inter-function transfer through the paper's three-way pipe choice.
/// The source node — and with it the link row and retention window —
/// comes from the *live* placement, so a DLU daemon keeps routing
/// correctly after its function migrated to another node.
fn route(inner: &Inner, msg: DluMsg) {
    inner.counters.puts.fetch_add(1, Ordering::Relaxed);
    let wf = &inner.workflow;
    let Some(src) = wf.function_by_name(&msg.src_fn) else {
        return;
    };
    let src_node = inner.node_of(&msg.src_fn);
    let Some(links) = inner.link_row(src_node) else {
        return; // rows cleared: shutdown in progress
    };
    let active = match inner.nodes[src_node]
        .sink
        .with(msg.req.0, |rs| rs.map(|r| Arc::clone(&r.active)))
    {
        Some(a) => a,
        None => return, // request already collected
    };
    let mut matched = false;
    for eid in wf.outputs(src).to_vec() {
        let e = wf.edge(eid);
        if e.data_name != msg.data_name {
            continue;
        }
        let target_ok = match (&msg.target, e.target) {
            (PutTarget::All, _) => true,
            (PutTarget::Function(name), Endpoint::Function(t)) => wf.function(t).name == *name,
            (PutTarget::Function(_), Endpoint::Client) => false,
        };
        if !target_ok {
            continue;
        }
        matched = true;
        if !active.edge_active(eid) {
            continue; // switched-off branch: data dropped by design
        }
        match e.target {
            Endpoint::Client => {
                if let Some(w) = &inner.wire {
                    // Worker process: the client lives in the coordinator
                    // — ship the output over the wire to the trailing
                    // endpoint, retained and acked like any transfer.
                    let key = format!("{}@{}", msg.data_name, msg.src_fn);
                    ship(
                        inner,
                        &links,
                        src_node,
                        w.endpoints - 1,
                        msg.req,
                        eid,
                        key,
                        &msg.payload,
                    );
                } else {
                    let mut reqs = inner.reqs.lock().expect("runtime lock poisoned");
                    if let Some(rs) = reqs.get_mut(&msg.req.0) {
                        rs.outputs
                            .push((msg.data_name.clone(), msg.payload.clone()));
                        rs.outputs_missing = rs.outputs_missing.saturating_sub(1);
                        if rs.outputs_missing == 0 {
                            inner.done.notify_all();
                        }
                    }
                }
            }
            Endpoint::Function(t) => {
                let dst_node = inner.node_of(&wf.function(t).name);
                let key = format!("{}@{}", msg.data_name, msg.src_fn);
                ship(
                    inner,
                    &links,
                    src_node,
                    dst_node,
                    msg.req,
                    eid,
                    key,
                    &msg.payload,
                );
            }
        }
    }
    if !matched {
        let mut reqs = inner.reqs.lock().expect("runtime lock poisoned");
        if let Some(rs) = reqs.get_mut(&msg.req.0) {
            rs.errors.push(format!(
                "function `{}` put unknown data `{}`",
                msg.src_fn, msg.data_name
            ));
            inner.done.notify_all();
        }
    }
}

/// Ships one inter-function payload over the pipe kind §7 prescribes:
/// direct socket under the threshold, local pipe when co-located,
/// chunked streaming remote pipe with checkpoint marks otherwise.
#[allow(clippy::too_many_arguments)]
fn ship(
    inner: &Inner,
    links: &[Option<RingSender<NetMsg>>],
    src_node: usize,
    dst_node: usize,
    req: ReqId,
    edge: EdgeId,
    key: String,
    payload: &Bytes,
) {
    let len = payload.len();
    let kind = choose_pipe(
        len as f64,
        inner.cfg.direct_threshold_bytes as f64,
        src_node == dst_node,
    );
    // §7 decisions are only sim-comparable for inter-function edges;
    // wire-mode client outputs ride ship() too but have no simulated
    // pipe-choice counterpart.
    let traced = inner.recorder.is_some()
        && matches!(inner.workflow.edge(edge).target, Endpoint::Function(_));
    if traced {
        inner.trace_with(|| TraceEventKind::PipeChoice {
            req: req.0,
            edge: edge.index() as u32,
            kind,
            bytes: len as u64,
        });
    }
    match kind {
        PipeKind::DirectSocket => {
            inner.counters.direct_socket.fetch_add(1, Ordering::Relaxed);
            if src_node == dst_node {
                deliver(inner, dst_node, req, edge, key, payload.clone());
            } else {
                inner
                    .counters
                    .remote_bytes
                    .fetch_add(len as u64, Ordering::Relaxed);
                ship_whole(inner, links, src_node, dst_node, req, edge, key, payload);
            }
        }
        PipeKind::LocalPipe => {
            inner.counters.local_pipe.fetch_add(1, Ordering::Relaxed);
            deliver(inner, dst_node, req, edge, key, payload.clone());
        }
        PipeKind::RemotePipe => {
            inner.counters.remote_pipe.fetch_add(1, Ordering::Relaxed);
            inner
                .counters
                .remote_bytes
                .fetch_add(len as u64, Ordering::Relaxed);
            if len == 0 {
                // Nothing to stream: chunk_spans yields no spans for an
                // empty payload, so ship one direct frame instead of a
                // useless empty chunk.
                ship_whole(inner, links, src_node, dst_node, req, edge, key, payload);
                return;
            }
            let link = links[dst_node].as_ref().expect("cross-node link exists");
            let depth = &inner.link_depth[src_node * stride(inner) + dst_node];
            let transfer = inner.next_transfer.fetch_add(1, Ordering::Relaxed);
            let cp = CheckpointSchedule::new(inner.cfg.checkpoint_interval_bytes as f64);
            let spans = chunk_spans(len, inner.cfg.chunk_bytes);
            // Record the prescribed chunk/mark counts *before* streaming:
            // the instant the last chunk lands the consumer can run and
            // complete the request, so a record after the loop can race
            // the end-of-run trace snapshot and go missing. The counts
            // are pure functions of (len, chunk_bytes, interval) — the
            // same numbers the §7 replay derives.
            if traced {
                let chunks = spans.len() as u32;
                let marks: u64 = spans
                    .iter()
                    .map(|&(lo, hi)| cp.marks_crossed(lo as f64, hi as f64))
                    .sum();
                inner.trace_with(|| TraceEventKind::RemoteMarks {
                    req: req.0,
                    edge: edge.index() as u32,
                    chunks,
                    marks: marks as u32,
                });
            }
            for (lo, hi) in spans {
                inner.counters.remote_chunks.fetch_add(1, Ordering::Relaxed);
                let crossed = cp.marks_crossed(lo as f64, hi as f64);
                inner
                    .counters
                    .remote_checkpoints
                    .fetch_add(crossed, Ordering::Relaxed);
                // Zero-copy: each chunk frame is an O(1) view into the
                // payload's shared allocation, not a copied sub-buffer —
                // and so is the retained replay copy (a refcount bump).
                let bytes = payload.slice(lo..hi);
                if inner.cfg.recovery.enabled {
                    retention_of(inner, src_node, dst_node)
                        .lock()
                        .expect("retention lock poisoned")
                        .retain(transfer, req.0, edge, &key, len, true, lo, bytes.clone());
                }
                depth.fetch_add(1, Ordering::Relaxed);
                let sent = link.send(NetMsg::Chunk {
                    req: req.0,
                    edge,
                    key: key.clone(),
                    transfer,
                    offset: lo,
                    total: len,
                    bytes,
                });
                if sent.is_err() {
                    depth.fetch_sub(1, Ordering::Relaxed);
                    break; // link torn down mid-transfer (shutdown)
                }
            }
        }
    }
}

/// Ships one unchunked cross-node frame, registering it in the §6.2
/// retention window first (when recovery is on) so a frame lost at a
/// crashed node stays replayable.
#[allow(clippy::too_many_arguments)]
fn ship_whole(
    inner: &Inner,
    links: &[Option<RingSender<NetMsg>>],
    src_node: usize,
    dst_node: usize,
    req: ReqId,
    edge: EdgeId,
    key: String,
    payload: &Bytes,
) {
    let link = links[dst_node].as_ref().expect("cross-node link exists");
    let depth = &inner.link_depth[src_node * stride(inner) + dst_node];
    let transfer = inner.next_transfer.fetch_add(1, Ordering::Relaxed);
    if inner.cfg.recovery.enabled {
        retention_of(inner, src_node, dst_node)
            .lock()
            .expect("retention lock poisoned")
            .retain(
                transfer,
                req.0,
                edge,
                &key,
                payload.len(),
                false,
                0,
                payload.clone(),
            );
    }
    depth.fetch_add(1, Ordering::Relaxed);
    let sent = link.send(NetMsg::Whole {
        req: req.0,
        edge,
        key,
        transfer,
        payload: payload.clone(),
    });
    if sent.is_err() {
        depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The retention window of the directed link `src → dst`. Only called
/// with recovery enabled (the vector is empty otherwise).
pub(crate) fn retention_of(inner: &Inner, src: usize, dst: usize) -> &Mutex<LinkRetention> {
    &inner.retention[src * stride(inner) + dst]
}

/// Fault-injection wrapper around the destination-side fabric handler.
/// Runs on the shipper thread of link `src → dst`: it ticks the global
/// logical event counter, executes due fault-plan kills, and applies the
/// frame's fate (drop / duplicate / delayed wakeup) before handing the
/// frame to [`handle_net_msg`]. With no fault plan, the whole wrapper is
/// one `Option` check.
pub(crate) fn chaos_ingress(inner: &Inner, src: usize, dst: usize, msg: NetMsg) {
    if let Some(fs) = &inner.faults {
        let frame = fs.next_frame();
        for kill in fs.take_due_kills(frame) {
            let report = crash_node_inner(inner, kill.node);
            if report.was_up {
                fs.schedule_restart(kill.node, Instant::now() + kill.outage);
            }
        }
        match fs.plan().frame_fate(frame, src, dst) {
            FrameFate::Deliver => {}
            FrameFate::Drop => {
                // Lost in flight. The frame stays in the sender's
                // retention window (recovery retransmits it once its ack
                // times out); without recovery it is simply gone.
                inner.counters.chaos_drops.fetch_add(1, Ordering::Relaxed);
                inner.trace_with(|| TraceEventKind::FaultFate {
                    src: src as u32,
                    dst: dst as u32,
                    fate: FateKind::Drop,
                });
                return;
            }
            FrameFate::Duplicate => {
                inner.counters.chaos_dups.fetch_add(1, Ordering::Relaxed);
                inner.trace_with(|| TraceEventKind::FaultFate {
                    src: src as u32,
                    dst: dst as u32,
                    fate: FateKind::Duplicate,
                });
                handle_net_msg(inner, src, dst, msg.clone());
            }
            FrameFate::Delay(d) => {
                inner.counters.chaos_delays.fetch_add(1, Ordering::Relaxed);
                inner.trace_with(|| TraceEventKind::FaultFate {
                    src: src as u32,
                    dst: dst as u32,
                    fate: FateKind::Delay,
                });
                if !inner.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(d);
                }
            }
        }
    }
    handle_net_msg(inner, src, dst, msg);
}

/// What one chunk frame advanced a transfer to — decided under the sink
/// stripe lock, acted on (delivery, acks) after it is released.
enum ChunkProgress {
    /// The request is no longer tracked on this node (collected or
    /// forgotten): ack the transfer away so retention cannot leak.
    Orphan,
    /// The chunk completed the transfer.
    Complete(Bytes),
    /// Still incomplete; the contiguous prefix so far.
    Prefix(usize),
}

/// Destination-side handler of fabric messages arriving at `dst_node`
/// from `src` — the real ingress, shared by the live link path and the
/// recovery replay path. A frame inbound to a crashed node is lost; a
/// delivered frame is acknowledged back to the sender's retention window
/// (whole frames on delivery, chunked streams per checkpoint mark their
/// contiguous prefix crosses). In wire mode, ack frames arriving *back*
/// from a receiver are applied to the local (sender-side) retention
/// window here too.
pub(crate) fn handle_net_msg(inner: &Inner, src: usize, dst_node: usize, msg: NetMsg) {
    // Relocation forwarding: a data frame addressed to a node that no
    // longer hosts its target function chases the live placement
    // instead of dying with the old address. Checked *before* the
    // down-check so frames already in flight when a node was declared
    // lost still reach the function's new home.
    if let Some(cur) = frame_target_node(inner, &msg) {
        if cur != dst_node {
            inner
                .counters
                .forwarded_frames
                .fetch_add(1, Ordering::Relaxed);
            if let Some(w) = &inner.wire {
                if cur != w.local {
                    // Another process hosts the function now: relay the
                    // frame over the wire. The sender's retention entry
                    // is re-homed by the coordinator's relocate
                    // broadcast, so the new host's acks find it there.
                    if let Some(tx) = w.out.get(cur).and_then(|t| t.as_ref()) {
                        let _ = tx.send(msg);
                    }
                    return;
                }
                // cur == local: fall through and ingest under the new
                // node id below.
            } else if inner.cfg.recovery.enabled {
                // In-process: drag the sender's retention entry along to
                // the new destination link, or the acks coming back from
                // the new host would miss it and the old-link entry
                // would retransmit forever.
                if let NetMsg::Whole { transfer, .. } | NetMsg::Chunk { transfer, .. } = &msg {
                    let moved = retention_of(inner, src, dst_node)
                        .lock()
                        .expect("retention lock poisoned")
                        .take(*transfer);
                    if let Some(t) = moved {
                        retention_of(inner, src, cur)
                            .lock()
                            .expect("retention lock poisoned")
                            .adopt(*transfer, t, false);
                    }
                }
            }
            handle_net_msg(inner, src, cur, msg);
            return;
        }
    }
    if inner.nodes[dst_node].down.load(Ordering::SeqCst) {
        inner.counters.frames_lost.fetch_add(1, Ordering::Relaxed);
        return;
    }
    match msg {
        NetMsg::AckMark { transfer, mark } => {
            // `src` acknowledged a mark of a transfer *we* sent on the
            // directed link `dst_node → src`.
            apply_ack_mark(inner, dst_node, src, transfer, mark);
        }
        NetMsg::AckComplete { transfer } => {
            apply_ack_complete(inner, dst_node, src, transfer);
        }
        NetMsg::Whole {
            req,
            edge,
            key,
            transfer,
            payload,
        } => {
            ensure_seeded(inner, dst_node, req);
            deliver(inner, dst_node, ReqId(req), edge, key, payload);
            ack_complete(inner, src, dst_node, transfer);
        }
        NetMsg::Chunk {
            req,
            edge,
            key,
            transfer,
            offset,
            total,
            bytes,
        } => {
            ensure_seeded(inner, dst_node, req);
            let progress = inner.nodes[dst_node].sink.with(req, |rs| {
                let Some(rs) = rs else {
                    return ChunkProgress::Orphan;
                };
                if rs.done.contains(&(edge, transfer)) {
                    // Late duplicate/retransmission of a finished
                    // transfer: ack it away instead of re-creating a
                    // ghost reassembler that could never complete.
                    return ChunkProgress::Orphan;
                }
                let r = rs
                    .partial
                    .entry((edge, transfer))
                    .or_insert_with(|| crate::fabric::Reassembler::new(total));
                // Zero-copy fast path: a chunk covering the whole
                // transfer is adopted without a memcpy.
                r.write_bytes(offset, bytes);
                if r.complete() {
                    rs.done.insert((edge, transfer));
                    match rs.partial.remove(&(edge, transfer)) {
                        Some(r) => ChunkProgress::Complete(r.into_bytes()),
                        None => ChunkProgress::Orphan,
                    }
                } else {
                    ChunkProgress::Prefix(r.contiguous_prefix())
                }
            });
            match progress {
                ChunkProgress::Orphan => ack_complete(inner, src, dst_node, transfer),
                ChunkProgress::Complete(payload) => {
                    deliver(inner, dst_node, ReqId(req), edge, key, payload);
                    ack_complete(inner, src, dst_node, transfer);
                }
                ChunkProgress::Prefix(prefix) => {
                    // Ack the last checkpoint mark the contiguous prefix
                    // crossed: everything below it is §6.2-durable and
                    // leaves the sender's retention window.
                    let interval = inner.cfg.checkpoint_interval_bytes;
                    let mark = (prefix / interval) * interval;
                    if mark > 0 {
                        ack_mark(inner, src, dst_node, transfer, mark);
                    }
                }
            }
        }
    }
}

/// Delivery acknowledgement: releases the sender's retention entry for a
/// fully delivered (or orphaned) transfer. In-process, acks are a direct
/// call back into the source link's retention window — the return path
/// of the §6.2 checkpoint protocol. In wire mode the sender lives in a
/// different OS process, so the ack becomes an [`NetMsg::AckComplete`]
/// frame enqueued back over the wire instead.
fn ack_complete(inner: &Inner, src: usize, dst: usize, transfer: u64) {
    if !inner.cfg.recovery.enabled {
        return;
    }
    if let Some(w) = &inner.wire {
        if src != w.local {
            if let Some(tx) = w.out.get(src).and_then(|t| t.as_ref()) {
                let _ = tx.send(NetMsg::AckComplete { transfer });
            }
            return;
        }
    }
    apply_ack_complete(inner, src, dst, transfer);
}

/// Checkpoint-mark acknowledgement: trims the sender's retention window
/// for `transfer` to the durable `mark`. Emitted as an
/// [`NetMsg::AckMark`] frame in wire mode, like [`ack_complete`].
fn ack_mark(inner: &Inner, src: usize, dst: usize, transfer: u64, mark: usize) {
    if !inner.cfg.recovery.enabled {
        return;
    }
    if let Some(w) = &inner.wire {
        if src != w.local {
            if let Some(tx) = w.out.get(src).and_then(|t| t.as_ref()) {
                let _ = tx.send(NetMsg::AckMark { transfer, mark });
            }
            return;
        }
    }
    apply_ack_mark(inner, src, dst, transfer, mark);
}

/// Applies a completion ack to the local retention window of the
/// directed link `src → dst` (`src` is the sender — in wire mode, this
/// process).
pub(crate) fn apply_ack_complete(inner: &Inner, src: usize, dst: usize, transfer: u64) {
    if !inner.cfg.recovery.enabled {
        return;
    }
    retention_of(inner, src, dst)
        .lock()
        .expect("retention lock poisoned")
        .ack_complete(transfer);
}

/// Applies a checkpoint-mark ack to the local retention window of the
/// directed link `src → dst`, counting the marks the ack crossed.
pub(crate) fn apply_ack_mark(inner: &Inner, src: usize, dst: usize, transfer: u64, mark: usize) {
    if !inner.cfg.recovery.enabled {
        return;
    }
    let advanced = retention_of(inner, src, dst)
        .lock()
        .expect("retention lock poisoned")
        .ack_mark(transfer, mark);
    if let Some(prev) = advanced {
        let cp = CheckpointSchedule::new(inner.cfg.checkpoint_interval_bytes as f64);
        inner.counters.acked_marks.fetch_add(
            cp.marks_crossed(prev as f64, mark as f64),
            Ordering::Relaxed,
        );
    }
}

/// Deterministic per-request switch resolution, identical in every
/// process of a cluster: the active graph is a pure function of the
/// workflow and the request id.
pub(crate) fn resolve_active(wf: &Workflow, req: u64) -> Arc<ActiveGraph> {
    Arc::new(wf.resolve_switches(|group, n| ((req ^ group as u64) % n as u64) as usize))
}

/// The node currently hosting the target function of a data frame, per
/// the live placement — `None` for ack frames and client-output frames
/// (whose destination is an endpoint, not a function).
fn frame_target_node(inner: &Inner, msg: &NetMsg) -> Option<usize> {
    let edge = match msg {
        NetMsg::Whole { edge, .. } | NetMsg::Chunk { edge, .. } => *edge,
        _ => return None,
    };
    match inner.workflow.edge(edge).target {
        Endpoint::Function(t) => Some(inner.node_of(&inner.workflow.function(t).name)),
        Endpoint::Client => None,
    }
}

/// Bytes queued in (or draining from) the DLU queues of the functions
/// the live placement currently puts on `node` — the orchestrator's
/// pressure gauge for relocation targets.
pub(crate) fn node_pressure_of(inner: &Inner, node: usize) -> u64 {
    let placement = inner.placement.read().expect("placement lock poisoned");
    inner
        .scale
        .iter()
        .filter(|(name, _)| placement.node_of(name) == node)
        .map(|(_, s)| s.backlog_bytes.load(Ordering::Relaxed))
        .sum()
}

/// The missing-input counts `node_id` tracks for one request: one entry
/// per hosted active function, counting its active input edges.
fn missing_for(inner: &Inner, node_id: usize, active: &ActiveGraph) -> HashMap<FnId, usize> {
    let wf = &inner.workflow;
    let mut missing = HashMap::new();
    for f in wf.function_ids() {
        let name = &wf.function(f).name;
        if inner.node_of(name) != node_id || !active.function_active(f) {
            continue;
        }
        let count = wf
            .inputs(f)
            .iter()
            .filter(|e| active.edge_active(**e))
            .count();
        missing.insert(f, count);
    }
    missing
}

/// A fresh per-node sink record for one request — what
/// [`ClusterRuntime::invoke`] seeds eagerly and the wire-mode ingress
/// seeds lazily on first frame arrival.
pub(crate) fn seed_req_state(
    inner: &Inner,
    node_id: usize,
    active: &Arc<ActiveGraph>,
) -> NodeReqState {
    NodeReqState {
        active: Arc::clone(active),
        missing: missing_for(inner, node_id, active),
        entries: HashMap::new(),
        partial: HashMap::new(),
        done: HashSet::new(),
    }
}

/// Wire-mode lazy request seeding: a worker process never sees
/// `invoke`, so the first data frame of a request must create the local
/// sink state the in-process runtime seeds eagerly. Runs under one
/// stripe-lock acquisition ([`crate::ShardedSink::with_or_insert`]) so a
/// concurrent purge cannot race the insert; a request the coordinator
/// already collected is left unseeded — its late frames fall through the
/// existing orphan handling and get acked away. In-process (`wire ==
/// None`) this is a no-op.
fn ensure_seeded(inner: &Inner, node_id: usize, req: u64) {
    let Some(w) = &inner.wire else {
        return;
    };
    if w.purged
        .lock()
        .expect("purged lock poisoned")
        .contains(&req)
    {
        return;
    }
    inner.nodes[node_id].sink.with_or_insert(
        req,
        || {
            let active = resolve_active(&inner.workflow, req);
            seed_req_state(inner, node_id, &active)
        },
        |_| (),
    );
}

/// Takes `node` down (§6.2 data-plane crash) and rolls its in-flight
/// reassembly state back to the last checkpoint mark of each stream.
/// See [`ClusterRuntime::crash_node`].
fn crash_node_inner(inner: &Inner, node: usize) -> CrashReport {
    let mut report = CrashReport {
        node,
        was_up: false,
        inflight_transfers: 0,
        durable_bytes: 0,
    };
    if inner.nodes[node].down.swap(true, Ordering::SeqCst) {
        return report; // already down
    }
    report.was_up = true;
    inner.counters.node_crashes.fetch_add(1, Ordering::Relaxed);
    inner.trace_with(|| TraceEventKind::Crash { node: node as u32 });
    let interval = inner.cfg.checkpoint_interval_bytes;
    inner.nodes[node].sink.for_each_mut(|_, rs| {
        for r in rs.partial.values_mut() {
            report.inflight_transfers += 1;
            let mark = (r.contiguous_prefix() / interval) * interval;
            r.rollback_to(mark);
            report.durable_bytes += mark as u64;
        }
    });
    report
}

/// Brings a crashed node back and (with recovery enabled) replays every
/// incomplete inbound transfer from the senders' retention windows.
/// See [`ClusterRuntime::restart_node`].
fn restart_node_inner(inner: &Inner, node: usize) {
    if inner.nodes[node].lost.load(Ordering::SeqCst) {
        return; // declared permanently lost: its functions moved away
    }
    if !inner.nodes[node].down.swap(false, Ordering::SeqCst) {
        return; // not down
    }
    inner.counters.node_restarts.fetch_add(1, Ordering::Relaxed);
    inner.trace_with(|| TraceEventKind::Restart { node: node as u32 });
    if inner.cfg.recovery.enabled {
        replay_links_into(inner, node, None);
    }
}

/// Replays retained frames into `dst` from every other node's retention
/// window: all incomplete transfers on the restart path (`older_than ==
/// None`), or only ack-stale ones on the retransmit path. Frames stay
/// retained until acked, so a replay lost to another fault is replayed
/// again. The replay pays the link's serialization delay (skipped during
/// shutdown), so recovery latency scales with the re-sent volume — which
/// the checkpoint interval bounds.
fn replay_links_into(inner: &Inner, dst: usize, older_than: Option<Duration>) {
    let n = inner.nodes.len();
    for src in 0..n {
        // Self-links included: local sends never retain, but relocation
        // forwarding drags a retention entry onto `src → src` when the
        // function moved to the sender's own node, and those entries
        // starve without a retransmit scan.
        let summary = retention_of(inner, src, dst)
            .lock()
            .expect("retention lock poisoned")
            .replay(Instant::now(), older_than);
        if summary.transfers == 0 {
            continue;
        }
        if older_than.is_none() {
            inner
                .counters
                .recovered_transfers
                .fetch_add(summary.transfers, Ordering::Relaxed);
            inner
                .counters
                .resumed_from_mark
                .fetch_add(summary.resumed_from_mark_bytes, Ordering::Relaxed);
        } else {
            inner
                .counters
                .retransmitted
                .fetch_add(summary.transfers, Ordering::Relaxed);
        }
        for msg in summary.frames {
            if let Some(bw) = inner.cfg.link.bandwidth_bytes_per_sec {
                if bw > 0.0 && !inner.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_secs_f64(msg.wire_bytes() as f64 / bw));
                }
            }
            inner
                .counters
                .replayed_frames
                .fetch_add(1, Ordering::Relaxed);
            inner
                .counters
                .replayed_bytes
                .fetch_add(msg.wire_bytes() as u64, Ordering::Relaxed);
            handle_net_msg(inner, src, dst, msg);
        }
    }
}

/// The recovery daemon: a per-runtime background thread that executes
/// fault-plan restarts once their outage elapsed, and retransmits
/// transfers whose acks never arrived (frames lost in flight). Sleeps on
/// the shutdown condvar like the janitors, so teardown never waits out a
/// tick.
fn recovery_daemon(inner: Arc<Inner>) {
    let timeout = inner.cfg.recovery.retransmit_timeout;
    let tick = (timeout / 2).clamp(Duration::from_millis(1), Duration::from_millis(25));
    loop {
        {
            let guard = inner.shutdown_mx.lock().expect("shutdown lock poisoned");
            let _ = inner
                .shutdown_cv
                .wait_timeout(guard, tick)
                .expect("shutdown lock poisoned");
        }
        if inner.shutdown.load(Ordering::Relaxed) {
            break;
        }
        if let Some(fs) = &inner.faults {
            for node in fs.take_due_restarts(Instant::now()) {
                restart_node_inner(&inner, node);
            }
        }
        if inner.cfg.recovery.enabled {
            for dst in 0..inner.nodes.len() {
                if inner.nodes[dst].lost.load(Ordering::SeqCst) {
                    // Straggler healing: retention that still points at a
                    // permanently lost node (a send raced the relocation)
                    // is re-homed toward the live placement and replayed.
                    orchestrator::sweep_lost_node_retention(&inner, dst);
                } else if !inner.nodes[dst].down.load(Ordering::SeqCst) {
                    replay_links_into(&inner, dst, Some(timeout));
                }
            }
        }
    }
}

/// Inserts data for `edge` into the destination node's sink; triggers the
/// destination FLU when its inputs are complete (proactive release: the
/// inputs leave the sink as the invocation message).
fn deliver(inner: &Inner, dst_node: usize, req: ReqId, edge: EdgeId, key: String, payload: Bytes) {
    /// What one delivery did under the sink stripe lock.
    enum Delivered {
        /// Dropped (untracked request / inactive branch) or parked.
        Done,
        /// Completed the consumer's inputs: trigger its FLU.
        Ready(BTreeMap<String, Bytes>),
        /// The consumer moved off this node after the migration sweep
        /// copied this stripe: un-parked, re-deliver at the new host.
        Moved(SinkEntry),
    }
    let wf = &inner.workflow;
    let e = wf.edge(edge);
    let Endpoint::Function(dst) = e.target else {
        return;
    };
    let name = &wf.function(dst).name;
    inner.counters.deliveries.fetch_add(1, Ordering::Relaxed);
    let outcome = inner.nodes[dst_node].sink.with(req.0, |rs| {
        let Some(rs) = rs else {
            return Delivered::Done;
        };
        if !rs.active.edge_active(edge) || !rs.active.function_active(dst) {
            return Delivered::Done;
        }
        // Seed count for a consumer this node's request seeding did not
        // cover — a function relocated here mid-request. (The common
        // path finds the count `seed_req_state` already put there, or
        // the `usize::MAX` sentinel of an already-triggered consumer.)
        let late_seed = wf
            .inputs(dst)
            .iter()
            .filter(|e| rs.active.edge_active(**e))
            .count();
        let entry = SinkEntry {
            key,
            payload,
            arrived: Instant::now(),
            spilled: false,
        };
        let fresh = rs
            .entries
            .entry(dst)
            .or_default()
            .insert(edge, entry)
            .is_none();
        let missing = rs.missing.entry(dst).or_insert(late_seed);
        if fresh && *missing != usize::MAX {
            debug_assert!(*missing > 0, "over-delivery on {edge}");
            *missing -= 1;
        }
        if *missing == 0 {
            // Proactive release: hand all inputs to the FLU and drop them
            // from the sink. The sentinel guards against double-trigger
            // on duplicate final delivery.
            let entries = rs.entries.remove(&dst).unwrap_or_default();
            let mut inputs = BTreeMap::new();
            for (_, entry) in entries {
                inputs.insert(entry.key, entry.payload);
            }
            *missing = usize::MAX;
            return Delivered::Ready(inputs);
        }
        let sentinel = *missing == usize::MAX;
        // Relocation self-heal (in-process): re-check the live placement
        // *after* parking. If the consumer moved off this node, the
        // migration sweep either already copied this stripe (then this
        // entry slipped in behind it) or will copy it later (then it
        // sees the entry) — un-parking here makes both interleavings
        // safe. Wire mode relies on the relocate re-send instead, since
        // a parked entry cannot be handed across processes.
        if inner.wire.is_none() && inner.node_of(name) != dst_node {
            if let Some(entry) = rs.entries.get_mut(&dst).and_then(|m| m.remove(&edge)) {
                if fresh && !sentinel {
                    *rs.missing.get_mut(&dst).expect("seeded above") += 1;
                }
                return Delivered::Moved(entry);
            }
        }
        // The payload parks until its consumer's other inputs land:
        // compact it so a small zero-copy view cannot pin a large
        // parent allocation for the wait (in-flight slices stay
        // zero-copy; only parked ones may pay a copy).
        if let Some(e) = rs.entries.get_mut(&dst).and_then(|m| m.get_mut(&edge)) {
            let parked = std::mem::take(&mut e.payload);
            e.payload = parked.compact();
        }
        Delivered::Done
    });
    match outcome {
        Delivered::Done => {}
        Delivered::Ready(inputs) => {
            submit_invoke(inner, name, req, inputs);
        }
        Delivered::Moved(entry) => {
            inner
                .counters
                .forwarded_frames
                .fetch_add(1, Ordering::Relaxed);
            deliver(
                inner,
                inner.node_of(name),
                req,
                edge,
                entry.key,
                entry.payload,
            );
        }
    }
}

/// The runtime-wide passive-expire sweep: one thread walks every node's
/// sink each tick (stripe at a time, so it never blocks a whole node's
/// data plane the way a single-lock scan would).
fn janitor(inner: Arc<Inner>, ttl: Duration) {
    let tick = ttl.min(Duration::from_millis(50));
    while !inner.shutdown.load(Ordering::Relaxed) {
        {
            // Interruptible tick: shutdown wakes the janitor immediately
            // instead of waiting out the sleep.
            let guard = inner.shutdown_mx.lock().expect("shutdown lock poisoned");
            let _ = inner
                .shutdown_cv
                .wait_timeout(guard, tick)
                .expect("shutdown lock poisoned");
        }
        if inner.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let now = Instant::now();
        for node in &inner.nodes {
            node.sink.for_each_mut(|_, rs| {
                for entries in rs.entries.values_mut() {
                    for entry in entries.values_mut() {
                        if !entry.spilled && now.duration_since(entry.arrived) >= ttl {
                            // Passive expire: the payload moves to the
                            // function-exclusive disk tier. In-process we
                            // keep the bytes (the "disk") and count the
                            // eviction.
                            entry.spilled = true;
                            inner.counters.spills.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    }
}
