//! Per-tenant admission control for the cluster ingress.
//!
//! Open-loop load does not slow down when the runtime saturates — the
//! arrival process keeps its schedule, so sustained overload must be
//! *shed*, not queued, or in-flight state (and tail latency) grows
//! without bound. The [`AdmissionGate`] is that shedding point: each
//! request arrives under a tenant label, the gate tracks per-tenant and
//! total in-flight counts, and an arrival that would exceed either cap
//! is rejected up front with [`Rejected`] instead of entering the data
//! plane. Per-tenant caps are also the fairness mechanism: one tenant's
//! burst exhausts *its own* in-flight budget and cannot starve the
//! others.
//!
//! [`ClusterRuntime::try_invoke`](crate::ClusterRuntime::try_invoke) is
//! the gated ingress of the in-process runtime. The gate is also usable
//! standalone on the client side of a connection-oriented transport
//! (the load harness fronts [`TcpCluster`](crate::TcpCluster) with one),
//! which is why its methods are public rather than runtime-internal.
//!
//! # Examples
//!
//! ```
//! use dataflower_rt::{AdmissionConfig, AdmissionGate};
//!
//! let gate = AdmissionGate::new(AdmissionConfig {
//!     max_inflight_per_tenant: 1,
//!     max_inflight_total: 0, // unlimited
//! });
//! assert!(gate.try_admit("alice").is_ok());
//! gate.bind(7, "alice");
//! // alice is at her cap until request 7 finishes:
//! assert!(gate.try_admit("alice").is_err());
//! gate.finish(7, true);
//! assert!(gate.try_admit("alice").is_ok());
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// In-flight caps enforced by an [`AdmissionGate`]. A zero cap means
/// unlimited; the all-zero default admits everything (the gate still
/// keeps per-tenant stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum requests one tenant may have in flight (0 = unlimited).
    pub max_inflight_per_tenant: usize,
    /// Maximum requests in flight across all tenants (0 = unlimited).
    pub max_inflight_total: usize,
}

impl AdmissionConfig {
    /// True when at least one cap is set.
    pub fn is_limiting(&self) -> bool {
        self.max_inflight_per_tenant > 0 || self.max_inflight_total > 0
    }
}

/// Why an arrival was turned away at the gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The tenant is at its per-tenant in-flight cap.
    TenantLimit {
        /// The tenant that hit its cap.
        tenant: String,
        /// The cap it hit.
        limit: usize,
    },
    /// The whole gate is at the total in-flight cap.
    TotalLimit {
        /// The cap that was hit.
        limit: usize,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::TenantLimit { tenant, limit } => {
                write!(f, "tenant `{tenant}` at its in-flight cap ({limit})")
            }
            Rejected::TotalLimit { limit } => {
                write!(f, "gate at its total in-flight cap ({limit})")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// Point-in-time admission counters of one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests admitted through the gate.
    pub admitted: u64,
    /// Arrivals rejected at the gate.
    pub rejected: u64,
    /// Admitted requests that finished successfully.
    pub completed: u64,
    /// Admitted requests abandoned (timeout/fault → forget).
    pub failed: u64,
    /// Requests currently in flight.
    pub inflight: usize,
}

#[derive(Debug, Default)]
struct TenantState {
    stats: TenantStats,
}

#[derive(Debug, Default)]
struct GateState {
    tenants: BTreeMap<String, TenantState>,
    /// Which tenant each in-flight request was admitted under.
    req_tenant: HashMap<u64, String>,
    total_inflight: usize,
}

/// The admission-control gate: caps in-flight requests per tenant and in
/// total, and keeps per-tenant admit/reject/complete counters. All
/// methods are thread-safe (one internal mutex; the critical sections
/// are a couple of map operations).
#[derive(Debug)]
pub struct AdmissionGate {
    cfg: AdmissionConfig,
    state: Mutex<GateState>,
}

impl AdmissionGate {
    /// A gate enforcing `cfg`.
    pub fn new(cfg: AdmissionConfig) -> AdmissionGate {
        AdmissionGate {
            cfg,
            state: Mutex::new(GateState::default()),
        }
    }

    /// The caps this gate enforces.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Tries to take an in-flight slot for `tenant`. On success the slot
    /// is held; pair it with [`AdmissionGate::bind`] once the request id
    /// is known, and release it via [`AdmissionGate::finish`]. On
    /// rejection the arrival is counted against the tenant and nothing
    /// is held.
    pub fn try_admit(&self, tenant: &str) -> Result<(), Rejected> {
        let mut s = self.state.lock().expect("admission lock poisoned");
        let total_cap = self.cfg.max_inflight_total;
        if total_cap > 0 && s.total_inflight >= total_cap {
            s.tenants
                .entry(tenant.to_string())
                .or_default()
                .stats
                .rejected += 1;
            return Err(Rejected::TotalLimit { limit: total_cap });
        }
        let per_cap = self.cfg.max_inflight_per_tenant;
        let t = s.tenants.entry(tenant.to_string()).or_default();
        if per_cap > 0 && t.stats.inflight >= per_cap {
            t.stats.rejected += 1;
            return Err(Rejected::TenantLimit {
                tenant: tenant.to_string(),
                limit: per_cap,
            });
        }
        t.stats.admitted += 1;
        t.stats.inflight += 1;
        s.total_inflight += 1;
        Ok(())
    }

    /// Associates an admitted slot with its request id so
    /// [`AdmissionGate::finish`] can release it by id. Call once per
    /// successful [`AdmissionGate::try_admit`].
    pub fn bind(&self, req: u64, tenant: &str) {
        let mut s = self.state.lock().expect("admission lock poisoned");
        s.req_tenant.insert(req, tenant.to_string());
    }

    /// Releases the slot held by request `req` (a no-op for ids the gate
    /// never saw, so ungated [`invoke`](crate::ClusterRuntime::invoke)
    /// traffic can share the runtime). `success` decides whether the
    /// request counts as completed or failed.
    pub fn finish(&self, req: u64, success: bool) {
        let mut s = self.state.lock().expect("admission lock poisoned");
        let Some(tenant) = s.req_tenant.remove(&req) else {
            return;
        };
        s.total_inflight = s.total_inflight.saturating_sub(1);
        if let Some(t) = s.tenants.get_mut(&tenant) {
            t.stats.inflight = t.stats.inflight.saturating_sub(1);
            if success {
                t.stats.completed += 1;
            } else {
                t.stats.failed += 1;
            }
        }
    }

    /// Requests currently in flight across all tenants.
    pub fn inflight(&self) -> usize {
        self.state
            .lock()
            .expect("admission lock poisoned")
            .total_inflight
    }

    /// Per-tenant counters, sorted by tenant name.
    pub fn tenant_stats(&self) -> Vec<(String, TenantStats)> {
        let s = self.state.lock().expect("admission lock poisoned");
        s.tenants
            .iter()
            .map(|(name, t)| (name.clone(), t.stats))
            .collect()
    }

    /// Total (admitted, rejected) arrivals across all tenants.
    pub fn totals(&self) -> (u64, u64) {
        let s = self.state.lock().expect("admission lock poisoned");
        s.tenants.values().fold((0, 0), |(a, r), t| {
            (a + t.stats.admitted, r + t.stats.rejected)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(per: usize, total: usize) -> AdmissionGate {
        AdmissionGate::new(AdmissionConfig {
            max_inflight_per_tenant: per,
            max_inflight_total: total,
        })
    }

    #[test]
    fn unlimited_gate_admits_everything() {
        let g = gate(0, 0);
        for i in 0..100 {
            g.try_admit("t").unwrap();
            g.bind(i, "t");
        }
        assert_eq!(g.inflight(), 100);
        let stats = g.tenant_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.admitted, 100);
        assert_eq!(stats[0].1.rejected, 0);
    }

    #[test]
    fn per_tenant_cap_rejects_only_the_saturated_tenant() {
        let g = gate(2, 0);
        g.try_admit("a").unwrap();
        g.bind(0, "a");
        g.try_admit("a").unwrap();
        g.bind(1, "a");
        let err = g.try_admit("a").unwrap_err();
        assert_eq!(
            err,
            Rejected::TenantLimit {
                tenant: "a".into(),
                limit: 2
            }
        );
        // Another tenant is unaffected.
        g.try_admit("b").unwrap();
        g.bind(2, "b");
        assert_eq!(g.totals(), (3, 1));
    }

    #[test]
    fn total_cap_rejects_across_tenants() {
        let g = gate(0, 2);
        g.try_admit("a").unwrap();
        g.bind(0, "a");
        g.try_admit("b").unwrap();
        g.bind(1, "b");
        assert_eq!(
            g.try_admit("c").unwrap_err(),
            Rejected::TotalLimit { limit: 2 }
        );
    }

    #[test]
    fn finish_releases_the_slot_and_classifies_the_outcome() {
        let g = gate(1, 0);
        g.try_admit("a").unwrap();
        g.bind(0, "a");
        g.finish(0, true);
        g.try_admit("a").unwrap();
        g.bind(1, "a");
        g.finish(1, false);
        let (_, s) = &g.tenant_stats()[0];
        assert_eq!(s.completed, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.inflight, 0);
        assert_eq!(g.inflight(), 0);
    }

    #[test]
    fn finish_ignores_foreign_request_ids() {
        let g = gate(1, 1);
        g.finish(42, true);
        assert_eq!(g.inflight(), 0);
        assert!(g.tenant_stats().is_empty());
    }

    #[test]
    fn rejection_messages_name_the_cap() {
        let e = Rejected::TenantLimit {
            tenant: "a".into(),
            limit: 3,
        };
        assert!(e.to_string().contains("`a`"));
        assert!(e.to_string().contains('3'));
        assert!(Rejected::TotalLimit { limit: 9 }.to_string().contains('9'));
    }
}
