//! The two-level orchestrator control plane (the paper's ε-CON analog):
//! per-node keep-alive heartbeats, node-loss relocation and voluntary
//! live migration.
//!
//! The in-process half lives here. Each node runs a **heartbeat
//! responder** thread that stamps the node's [`NodeState::last_beat`]
//! gauge every interval while the node is up; one **controller** thread
//! reads the stamps, counts consecutive misses, and after
//! [`ClusterRtConfig::heartbeat_miss_threshold`] of them declares the
//! node permanently lost and relocates every function it hosted to the
//! least-pressured survivors (or wherever the cluster's
//! [`PlacementPolicy::relocate`] points). Relocation re-pins the
//! function in the live placement (the routing authority every
//! route/deliver decision reads), drains and respawns its FLU pool,
//! moves its parked sink state, re-homes the senders' retention entries
//! onto the new link and replays them from the last acked checkpoint
//! mark — extending the same-node restart protocol of §6.2 into
//! placement-changing recovery.
//!
//! [`ClusterRuntime::migrate_function`] reuses the exact same rehome
//! machinery voluntarily: drain, move state, re-patch links, resume.
//!
//! The TCP half (coordinator pings over the control channel, a
//! `relocate` broadcast) lives in `transport.rs` and shares the
//! counters and config knobs defined here.
//!
//! [`NodeState::last_beat`]: crate::node::NodeState
//! [`ClusterRtConfig::heartbeat_miss_threshold`]: crate::ClusterRtConfig::heartbeat_miss_threshold
//! [`PlacementPolicy::relocate`]: crate::PlacementPolicy::relocate
//! [`ClusterRuntime::migrate_function`]: crate::ClusterRuntime::migrate_function

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use dataflower_workflow::{EdgeId, Endpoint, FnId};

use crate::error::RtError;
use crate::node::{NodeReqState, SinkEntry};
use crate::runtime::{
    handle_net_msg, node_pressure_of, refresh_scheduler_active, resolve_active, retention_of,
    seed_req_state, stride, submit_invoke, ClusterRuntime, Inner,
};
use crate::trace::EventKind as TraceEventKind;

/// Stamps `node`'s keep-alive beat every heartbeat interval while the
/// node is up (a crashed node stops stamping — that silence is what the
/// controller detects). Spawned per node in in-process orchestrator
/// mode; sleeps on the shutdown condvar so teardown never waits out a
/// tick.
pub(crate) fn heartbeat_responder(inner: Arc<Inner>, node: usize) {
    let tick = inner.cfg.heartbeat_interval;
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            break;
        }
        if !inner.nodes[node].down.load(Ordering::SeqCst) {
            let ms = inner.started.elapsed().as_millis() as u64;
            inner.nodes[node].last_beat.store(ms, Ordering::SeqCst);
            inner.counters.heartbeats.fetch_add(1, Ordering::Relaxed);
        }
        let guard = inner.shutdown_mx.lock().expect("shutdown lock poisoned");
        let _ = inner
            .shutdown_cv
            .wait_timeout(guard, tick)
            .expect("shutdown lock poisoned");
    }
}

/// The controller thread (ε-CON analog): checks every node's last beat
/// once per heartbeat interval, counts consecutive stale reads, and
/// relocates a node's functions after the configured miss threshold.
/// A beat is stale once it is older than 1.5 intervals — the slack
/// absorbs scheduler jitter so a slow-but-alive node is never declared
/// dead (its responder thread stamps regardless of data-plane load).
pub(crate) fn controller(inner: Arc<Inner>) {
    let interval = inner.cfg.heartbeat_interval;
    let interval_ms = (interval.as_millis() as u64).max(1);
    let threshold = inner.cfg.heartbeat_miss_threshold.max(1);
    let mut misses = vec![0u32; inner.nodes.len()];
    loop {
        {
            let guard = inner.shutdown_mx.lock().expect("shutdown lock poisoned");
            let _ = inner
                .shutdown_cv
                .wait_timeout(guard, interval)
                .expect("shutdown lock poisoned");
        }
        if inner.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let now_ms = inner.started.elapsed().as_millis() as u64;
        for (n, miss) in misses.iter_mut().enumerate() {
            if inner.nodes[n].lost.load(Ordering::SeqCst) {
                continue;
            }
            let age = now_ms.saturating_sub(inner.nodes[n].last_beat.load(Ordering::SeqCst));
            if age > interval_ms + interval_ms / 2 {
                *miss += 1;
                inner
                    .counters
                    .heartbeat_misses
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                *miss = 0;
            }
            if *miss >= threshold {
                *miss = 0;
                relocate_node(&inner, n);
            }
        }
    }
}

/// Declares `dead` permanently lost and relocates every function it
/// hosts to the surviving nodes. Exactly-once: the `lost` flag is a
/// swap-guard, so a second kill (or a concurrent controller tick) during
/// relocation is a no-op. With no survivors the call does nothing —
/// there is nowhere to relocate to.
pub(crate) fn relocate_node(inner: &Arc<Inner>, dead: usize) {
    let live: Vec<usize> = (0..inner.nodes.len())
        .filter(|n| *n != dead && !inner.nodes[*n].lost.load(Ordering::SeqCst))
        .collect();
    if live.is_empty() {
        return;
    }
    if inner.nodes[dead].lost.swap(true, Ordering::SeqCst) {
        return; // already being relocated
    }
    // The dead node's data plane is fenced either way: relocation after
    // a real crash finds `down` already set, a voluntary loss sets it.
    inner.nodes[dead].down.store(true, Ordering::SeqCst);
    inner.counters.node_losses.fetch_add(1, Ordering::Relaxed);

    // Pressure gauges of the full topology (dead nodes included so the
    // ids line up), handed to the relocation policy per function.
    let pressure: Vec<f64> = (0..inner.nodes.len())
        .map(|n| node_pressure_of(inner, n) as f64)
        .collect();
    let placement = inner.placement_snapshot();
    let moves: Vec<(String, usize)> = inner
        .workflow
        .function_ids()
        .filter_map(|f| {
            let name = &inner.workflow.function(f).name;
            if placement.node_of(name) != dead {
                return None;
            }
            let to = match &inner.policy {
                Some(p) => p.relocate(dead, &live, &pressure),
                None => fallback_relocate(&live, &pressure),
            };
            Some((name.clone(), to))
        })
        .collect();
    rehome_functions(inner, dead, &moves);
    inner
        .counters
        .relocated_fns
        .fetch_add(moves.len() as u64, Ordering::Relaxed);
    inner.trace_with(|| TraceEventKind::Relocate {
        dead_node: dead as u32,
        moved: moves.len() as u32,
    });
}

/// The default relocation choice when no policy was given: the
/// least-pressured survivor. Also the coordinator-side choice in wire
/// mode, where no policy object exists.
pub(crate) fn fallback_relocate(live: &[usize], pressure: &[f64]) -> usize {
    *live
        .iter()
        .min_by(|a, b| {
            let pa = pressure.get(**a).copied().unwrap_or(0.0);
            let pb = pressure.get(**b).copied().unwrap_or(0.0);
            pa.total_cmp(&pb)
        })
        .expect("relocate needs at least one surviving node")
}

/// Moves each `(function, to)` off node `from`: re-pins the live
/// placement, drains and respawns the FLU pool on the new node, moves
/// the function's parked sink state across, re-homes the senders'
/// retention entries onto the new link and replays them. Shared by
/// node-loss relocation and voluntary live migration — the only
/// difference between the two is who decided to call it.
pub(crate) fn rehome_functions(inner: &Arc<Inner>, from: usize, moves: &[(String, usize)]) {
    if moves.is_empty() {
        return;
    }
    // 1. Swap the routing authority first: every subsequent put, seed
    //    and forward targets the new nodes, so no new state accrues at
    //    `from` while the rest of the move runs.
    {
        let mut placement = inner.placement.write().expect("placement lock poisoned");
        for (name, to) in moves {
            placement.reassign(name.clone(), *to);
        }
    }
    let moved_fns: Vec<(FnId, String, usize)> = moves
        .iter()
        .filter_map(|(name, to)| {
            inner
                .workflow
                .function_by_name(name)
                .map(|f| (f, name.clone(), *to))
        })
        .collect();
    // 2. Drain each function's in-flight invocations, then shift its
    //    worker slots from the old node's scheduler to the new one's.
    for (_, name, to) in &moved_fns {
        rehome_pool(inner, name, from, *to);
    }
    // 3. Move parked sink state (missing counts, parked inputs, partial
    //    reassemblies, done-transfer dedup) to the new hosts, firing any
    //    function whose inputs the merge completed.
    move_sink_state(inner, from, &moved_fns);
    // 4. Re-home the retention windows still pointing at `from` and
    //    replay them toward the new hosts, resuming from each stream's
    //    last acked checkpoint mark (the moved sink state holds the
    //    bytes below it).
    move_retention(inner, from);
}

/// Drains `name`'s in-flight invocations (a bounded wait on the live
/// gauge), then re-derives both schedulers' active-slot windows from the
/// already-re-pinned placement: the old node sheds the function's worker
/// slots, the new node gains them. No threads move — the work-stealing
/// schedulers exist on every node for the runtime's lifetime, and tasks
/// queued toward the old node stay correct because routing reads the
/// live placement per put. On drain timeout the re-derive proceeds
/// anyway; stragglers finish on the old node's workers harmlessly.
fn rehome_pool(inner: &Arc<Inner>, name: &str, from: usize, to: usize) {
    {
        // Serialize with the autoscaler (it scales under this mutex).
        let _guard = inner.shutdown_mx.lock().expect("shutdown lock poisoned");
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
    }
    let scale = Arc::clone(&inner.scale[name]);
    // Bounded drain: invocations started before the placement re-pin
    // finish on the old node's workers.
    let deadline = Instant::now() + inner.cfg.migration_drain_timeout;
    while scale.live.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    activate_pool(inner, name, to);
    refresh_scheduler_active(inner, from);
}

/// Points `name`'s worker slots at node `to` **without** draining first
/// — the wire-mode relocation path, where the previous host was a
/// process that no longer exists. Repairs a mid-move scale-to-zero so
/// the function keeps at least one slot, then re-derives the new host's
/// active window from the re-pinned placement.
pub(crate) fn activate_pool(inner: &Arc<Inner>, name: &str, to: usize) {
    let scale = &inner.scale[name];
    let _ = scale
        .replicas
        .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst);
    refresh_scheduler_active(inner, to);
}

/// What one request contributed to a function's move: the per-function
/// slices of its old node's sink record.
struct MovedReq {
    req: u64,
    missing: HashMap<FnId, usize>,
    entries: HashMap<FnId, std::collections::BTreeMap<EdgeId, SinkEntry>>,
    partial: HashMap<(EdgeId, u64), crate::fabric::Reassembler>,
    done: Vec<(EdgeId, u64)>,
}

/// Moves the moved functions' sink state from `from` to each function's
/// new node, merging with whatever already accrued there (frames
/// forwarded ahead of the sweep). Merge rules: entries union by edge;
/// `done` unions; a conflicting partial keeps the longer contiguous
/// prefix (provably ≥ the sender's acked mark, so replay always covers
/// the hole); missing-counts are recomputed from the merged entries —
/// and a function whose inputs the merge completes triggers right here.
fn move_sink_state(inner: &Arc<Inner>, from: usize, moved: &[(FnId, String, usize)]) {
    let wf = &inner.workflow;
    // Pass 1: extract the moved functions' slices out of the old node's
    // sink, one stripe lock at a time.
    let mut extracted: Vec<MovedReq> = Vec::new();
    inner.nodes[from].sink.for_each_mut(|req, rs| {
        let mut m = MovedReq {
            req,
            missing: HashMap::new(),
            entries: HashMap::new(),
            partial: HashMap::new(),
            done: Vec::new(),
        };
        for (f, _, _) in moved {
            if let Some(c) = rs.missing.remove(f) {
                m.missing.insert(*f, c);
            }
            if let Some(e) = rs.entries.remove(f) {
                m.entries.insert(*f, e);
            }
        }
        let targets_moved = |edge: EdgeId| {
            matches!(wf.edge(edge).target, Endpoint::Function(t) if moved.iter().any(|(f, _, _)| *f == t))
        };
        let keys: Vec<(EdgeId, u64)> = rs
            .partial
            .keys()
            .filter(|(e, _)| targets_moved(*e))
            .copied()
            .collect();
        for k in keys {
            if let Some(r) = rs.partial.remove(&k) {
                m.partial.insert(k, r);
            }
        }
        m.done
            .extend(rs.done.iter().filter(|(e, _)| targets_moved(*e)).copied());
        if !m.missing.is_empty()
            || !m.entries.is_empty()
            || !m.partial.is_empty()
            || !m.done.is_empty()
        {
            extracted.push(m);
        }
    });
    // Pass 2: merge into the new hosts and fire any now-complete pools.
    let mut triggers: Vec<(u64, FnId, std::collections::BTreeMap<String, crate::Bytes>)> =
        Vec::new();
    for mut m in extracted {
        for (f, _, to) in moved {
            let old_missing = m.missing.remove(f);
            let old_entries = m.entries.remove(f).unwrap_or_default();
            let partial_keys: Vec<(EdgeId, u64)> = m
                .partial
                .keys()
                .filter(|(e, _)| edge_targets(wf, *e, *f))
                .copied()
                .collect();
            let partial: Vec<((EdgeId, u64), crate::fabric::Reassembler)> = partial_keys
                .into_iter()
                .filter_map(|k| m.partial.remove(&k).map(|r| (k, r)))
                .collect();
            let done: Vec<(EdgeId, u64)> = m
                .done
                .iter()
                .filter(|(e, _)| edge_targets(wf, *e, *f))
                .copied()
                .collect();
            if old_missing.is_none()
                && old_entries.is_empty()
                && partial.is_empty()
                && done.is_empty()
            {
                continue;
            }
            let fired = inner.nodes[*to].sink.with_or_insert(
                m.req,
                || {
                    let active = resolve_active(wf, m.req);
                    seed_req_state(inner, *to, &active)
                },
                |rs| merge_fn_state(wf, rs, *f, old_missing, old_entries, partial, &done),
            );
            if let Some(inputs) = fired {
                triggers.push((m.req, *f, inputs));
            }
        }
    }
    for (req, f, inputs) in triggers {
        let name = &wf.function(f).name;
        submit_invoke(inner, name, crate::ReqId(req), inputs);
    }
}

/// True when `edge`'s target is function `f`.
fn edge_targets(wf: &dataflower_workflow::Workflow, edge: EdgeId, f: FnId) -> bool {
    matches!(wf.edge(edge).target, Endpoint::Function(t) if t == f)
}

/// Merges one function's extracted old-node state into its new node's
/// request record. Returns the completed input set if the merge
/// finished the function's inputs (the caller fires the FLU outside the
/// stripe lock).
fn merge_fn_state(
    wf: &dataflower_workflow::Workflow,
    rs: &mut NodeReqState,
    f: FnId,
    old_missing: Option<usize>,
    old_entries: std::collections::BTreeMap<EdgeId, SinkEntry>,
    partial: Vec<((EdgeId, u64), crate::fabric::Reassembler)>,
    done: &[(EdgeId, u64)],
) -> Option<std::collections::BTreeMap<String, crate::Bytes>> {
    if !rs.active.function_active(f) {
        return None;
    }
    rs.done.extend(done.iter().copied());
    for ((e, t), r) in partial {
        // Conflict rule: keep the reassembler with the longer contiguous
        // prefix. Whichever side is shorter is below the sender's acked
        // mark on at most one of them — and the longer prefix is always
        // ≥ that mark, so the replay from the mark fills every hole.
        let keep_old = match rs.partial.get(&(e, t)) {
            Some(cur) => r.contiguous_prefix() > cur.contiguous_prefix(),
            None => true,
        };
        if keep_old && !rs.done.contains(&(e, t)) {
            rs.partial.insert((e, t), r);
        }
    }
    // Union the parked entries (either side's copy of an edge is fine:
    // both came from the same deterministic sender).
    let merged = rs.entries.entry(f).or_default();
    for (e, entry) in old_entries {
        merged.entry(e).or_insert(entry);
    }
    let new_missing = rs.missing.get(&f).copied();
    // `usize::MAX` on either side means the function already triggered
    // for this request somewhere — never re-trigger.
    if old_missing == Some(usize::MAX) || new_missing == Some(usize::MAX) {
        rs.missing.insert(f, usize::MAX);
        rs.entries.remove(&f);
        return None;
    }
    // Recompute from first principles: active inputs minus distinct
    // merged arrivals (each side may have decremented for a different
    // subset of edges).
    let seed = wf
        .inputs(f)
        .iter()
        .filter(|e| rs.active.edge_active(**e))
        .count();
    let arrived = rs.entries.get(&f).map_or(0, |m| m.len());
    let missing = seed.saturating_sub(arrived);
    if missing == 0 && seed > 0 {
        let entries = rs.entries.remove(&f).unwrap_or_default();
        let mut inputs = std::collections::BTreeMap::new();
        for (_, entry) in entries {
            inputs.insert(entry.key, entry.payload);
        }
        rs.missing.insert(f, usize::MAX);
        return Some(inputs);
    }
    rs.missing.insert(f, missing);
    None
}

/// Re-homes every sender's retention window still pointing at `from`
/// onto the link toward each transfer's *current* destination node, and
/// replays the moved transfers. The moved sink state holds everything
/// below each stream's acked mark, so the replay resumes from the mark
/// — the §6.2 protocol, now across a placement change.
pub(crate) fn move_retention(inner: &Arc<Inner>, from: usize) {
    if !inner.cfg.recovery.enabled || inner.wire.is_some() {
        return;
    }
    let wf = &inner.workflow;
    let n = stride(inner);
    for src in 0..n {
        if src == from {
            continue;
        }
        let moved = retention_of(inner, src, from)
            .lock()
            .expect("retention lock poisoned")
            .extract(|_| true);
        if moved.is_empty() {
            continue;
        }
        // Group by current destination, adopt, then replay exactly the
        // adopted ids on each link.
        let mut by_dst: HashMap<usize, Vec<u64>> = HashMap::new();
        for (id, t) in moved {
            let dst = match wf.edge(t.edge).target {
                Endpoint::Function(tf) => inner.node_of(&wf.function(tf).name),
                Endpoint::Client => continue,
            };
            if dst == from {
                // Still placed on the lost node (no survivor inherited
                // it): drop the entry back where it was; a later sweep
                // re-homes it once the placement moved.
                retention_of(inner, src, from)
                    .lock()
                    .expect("retention lock poisoned")
                    .adopt(id, t, false);
                continue;
            }
            retention_of(inner, src, dst)
                .lock()
                .expect("retention lock poisoned")
                .adopt(id, t, false);
            by_dst.entry(dst).or_default().push(id);
        }
        for (dst, ids) in by_dst {
            let summary = retention_of(inner, src, dst)
                .lock()
                .expect("retention lock poisoned")
                .replay_ids(Instant::now(), &ids);
            inner
                .counters
                .recovered_transfers
                .fetch_add(summary.transfers, Ordering::Relaxed);
            inner
                .counters
                .resumed_from_mark
                .fetch_add(summary.resumed_from_mark_bytes, Ordering::Relaxed);
            for msg in summary.frames {
                inner
                    .counters
                    .replayed_frames
                    .fetch_add(1, Ordering::Relaxed);
                inner
                    .counters
                    .replayed_bytes
                    .fetch_add(msg.wire_bytes() as u64, Ordering::Relaxed);
                handle_net_msg(inner, src, dst, msg);
            }
        }
    }
}

/// Recovery-daemon sweep for a lost node: retention that still points at
/// it (a send raced the relocation) is re-homed per the live placement
/// and replayed. Idempotent and cheap when nothing is left.
pub(crate) fn sweep_lost_node_retention(inner: &Arc<Inner>, lost: usize) {
    move_retention(inner, lost);
}

impl ClusterRuntime {
    /// Live-migrates function `name` to node `to`: drains its FLU pool,
    /// re-pins the live placement, moves its parked sink state and the
    /// senders' retention onto the new node's links, respawns the pool
    /// there, and replays in-flight transfers from their last acked
    /// checkpoint marks. In-flight and future requests keep flowing
    /// throughout — the move is invisible in the outputs.
    ///
    /// Pick `to` with [`ClusterRuntime::least_pressured_node`] for the
    /// paper's pressure-driven rebalancing.
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownFunction`] if the workflow has no function
    /// `name`; [`RtError::InvalidPlacement`] if `to` is outside the
    /// topology or the current host was declared lost mid-call.
    pub fn migrate_function(&self, name: &str, to: usize) -> Result<(), RtError> {
        let inner = &self.inner;
        if inner.workflow.function_by_name(name).is_none() {
            return Err(RtError::UnknownFunction(name.to_string()));
        }
        if to >= inner.nodes.len() {
            return Err(RtError::InvalidPlacement(format!(
                "node {to} is outside the {}-node topology",
                inner.nodes.len()
            )));
        }
        if inner.nodes[to].lost.load(Ordering::SeqCst) {
            return Err(RtError::InvalidPlacement(format!(
                "node {to} was declared lost"
            )));
        }
        let from = inner.node_of(name);
        if from == to {
            return Ok(());
        }
        rehome_functions(inner, from, &[(name.to_string(), to)]);
        inner
            .counters
            .live_migrations
            .fetch_add(1, Ordering::Relaxed);
        inner.trace_with(|| TraceEventKind::Migrate {
            func: inner
                .workflow
                .function_by_name(name)
                .map_or(u32::MAX, |f| f.index() as u32),
            to_node: to as u32,
        });
        Ok(())
    }

    /// Declares `node` permanently lost right now — the manual override
    /// of the heartbeat detector (the controller calls the same path
    /// after the miss threshold). Relocates every hosted function to the
    /// surviving nodes, moves state, re-patches links and replays
    /// in-flight transfers. Idempotent: a second kill during or after
    /// relocation is a no-op, and so is losing the only node.
    pub fn declare_node_lost(&self, node: usize) {
        if node < self.inner.nodes.len() {
            relocate_node(&self.inner, node);
        }
    }
}
