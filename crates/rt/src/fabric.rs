//! The in-process inter-node fabric: per-link bounded SPSC rings,
//! optional bandwidth/latency shaping, and the chunked streaming
//! protocol of the remote pipe connector (§7).
//!
//! Every ordered pair of distinct nodes is connected by one directed
//! **link**: a bounded [`ring`](crate::ring) drained by a shipper
//! thread. Each link has exactly one steady-state producer (the source
//! node's merged DLU daemon) and one consumer (the shipper), the SPSC
//! shape the ring's striped-slot fast path is built for. The bounded
//! ring gives cross-node backpressure (a DLU daemon that out-produces a
//! link blocks, exactly like a saturated local DLU queue), and the
//! shipper drains up to [`SHIPPER_BATCH`] frames per wakeup, applying
//! the link's [`LinkConfig`] shaping to each before handing it to the
//! destination node's ingress.
//!
//! Transfers routed through the **streaming remote pipe** are cut into
//! chunks by [`chunk_spans`]; each chunk frame carries a zero-copy
//! [`Bytes`] view into the payload (no per-chunk copy on send), and the
//! destination [`Reassembler`] adopts a single-chunk transfer whole
//! without a memcpy. Checkpoint marks along the stream follow the
//! [`CheckpointSchedule`](dataflower::CheckpointSchedule) of the engine
//! crate, so the live runtime and the simulator share one fault-recovery
//! model: with recovery enabled, the sender retains refcounted views of
//! every frame past the destination's last acknowledged mark, and a
//! restarted node resumes reassembly from that mark instead of byte 0
//! (see [`Reassembler::rollback_to`] and the
//! [`fault`](crate::fault) module).
//!
//! # Examples
//!
//! Streaming one payload through the chunking/reassembly protocol by
//! hand — exactly what the fabric does per remote-pipe transfer:
//!
//! ```
//! use dataflower_rt::fabric::{chunk_spans, Reassembler};
//! use dataflower_rt::Bytes;
//!
//! let payload = Bytes::from((0..100u8).collect::<Vec<_>>());
//! let mut r = Reassembler::new(payload.len());
//! for (lo, hi) in chunk_spans(payload.len(), 32) {
//!     // Each frame is an O(1) view into the payload, not a copy.
//!     r.write_bytes(lo, payload.slice(lo..hi));
//! }
//! assert!(r.complete());
//! assert_eq!(r.into_bytes(), payload);
//! ```
//!
//! A crash mid-transfer rolls reassembly back to the last checkpoint
//! mark; replaying from the mark (what the sender's retention window
//! holds) completes the transfer byte-identically:
//!
//! ```
//! use dataflower_rt::fabric::{chunk_spans, Reassembler};
//!
//! let payload: Vec<u8> = (0..200u8).collect();
//! let mut r = Reassembler::new(payload.len());
//! r.write(0, &payload[0..150]); // crash hits at 150 bytes...
//! r.rollback_to(128);           // ...mark interval 64: resume at 128
//! assert_eq!(r.contiguous_prefix(), 128);
//! for (lo, hi) in chunk_spans(payload.len(), 32) {
//!     if hi > 128 {
//!         r.write(lo, &payload[lo..hi]); // replay past the mark only
//!     }
//! }
//! assert!(r.complete());
//! assert_eq!(&*r.into_bytes(), &payload[..]);
//! ```

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dataflower_workflow::EdgeId;

use crate::bytes::Bytes;

/// Frames a link shipper drains per wakeup: one wakeup moves up to this
/// many queued frames, instead of one `recv` per frame.
pub const SHIPPER_BATCH: usize = 32;

/// Shaping parameters of one directed inter-node link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Propagation delay applied once per transfer (on the whole message,
    /// or on the first chunk of a streamed one — later chunks are
    /// pipelined behind it).
    pub latency: Duration,
    /// Serialization rate; `None` leaves the link unshaped (messages are
    /// forwarded as fast as the shipper thread runs).
    pub bandwidth_bytes_per_sec: Option<f64>,
    /// Capacity of the link's bounded ring (rounded up to a power of
    /// two); a full link blocks the sending DLU daemon (cross-node
    /// backpressure).
    pub queue_capacity: usize,
}

impl Default for LinkConfig {
    /// An unshaped link with a 128-message queue.
    fn default() -> Self {
        LinkConfig {
            latency: Duration::ZERO,
            bandwidth_bytes_per_sec: None,
            queue_capacity: 128,
        }
    }
}

/// A message travelling over an inter-node link. Cloning is O(1) in the
/// byte count — payloads are refcounted views — which is what lets fault
/// injection deliver a frame twice and retention replay re-send frames
/// without copying bytes.
#[derive(Clone)]
pub(crate) enum NetMsg {
    /// An unchunked transfer: a small payload over the direct socket.
    Whole {
        req: u64,
        edge: EdgeId,
        key: String,
        /// Transfer id, so the destination's delivery ack can release the
        /// sender's retention entry.
        transfer: u64,
        payload: Bytes,
    },
    /// One chunk of a streaming remote-pipe transfer. `bytes` is a
    /// zero-copy [`Bytes`] view into the sender's payload allocation.
    Chunk {
        req: u64,
        edge: EdgeId,
        key: String,
        /// Distinguishes interleaved transfers on the same edge.
        transfer: u64,
        offset: usize,
        total: usize,
        bytes: Bytes,
    },
    /// Destination-side acknowledgement of a durable checkpoint mark of
    /// a chunked transfer, flowing back to the sender so its retention
    /// window can be trimmed. The in-process fabric applies acks as
    /// direct function calls and never enqueues this variant; the TCP
    /// transport carries it as a real frame.
    AckMark {
        /// The acknowledged transfer.
        transfer: u64,
        /// The durable contiguous prefix (a checkpoint-mark multiple).
        mark: usize,
    },
    /// Destination-side acknowledgement that a transfer was fully
    /// delivered (or recognized as an orphan); releases the sender's
    /// retention entry. Like [`NetMsg::AckMark`], only the TCP transport
    /// puts this on the wire.
    AckComplete {
        /// The acknowledged transfer.
        transfer: u64,
    },
}

impl NetMsg {
    pub(crate) fn wire_bytes(&self) -> usize {
        match self {
            NetMsg::Whole { payload, .. } => payload.len(),
            NetMsg::Chunk { bytes, .. } => bytes.len(),
            NetMsg::AckMark { .. } | NetMsg::AckComplete { .. } => 0,
        }
    }

    pub(crate) fn starts_transfer(&self) -> bool {
        match self {
            NetMsg::Whole { .. } => true,
            NetMsg::Chunk { offset, .. } => *offset == 0,
            NetMsg::AckMark { .. } | NetMsg::AckComplete { .. } => false,
        }
    }
}

/// The byte ranges a payload of `total` bytes is cut into when streamed
/// through the remote pipe connector in `chunk_bytes`-sized chunks.
///
/// Spans are contiguous, disjoint, in order, and cover `0..total`
/// exactly. An empty payload yields **no** spans — a zero-length transfer
/// has nothing to stream, so the fabric ships it as a single direct
/// frame instead of a useless empty chunk.
///
/// # Examples
///
/// ```
/// use dataflower_rt::chunk_spans;
///
/// assert_eq!(chunk_spans(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
/// assert_eq!(chunk_spans(8, 4), vec![(0, 4), (4, 8)]);
/// // The empty-transfer contract: NO spans — not the placeholder
/// // `[(0, 0)]` span of earlier revisions.
/// assert_eq!(chunk_spans(0, 4), Vec::<(usize, usize)>::new());
/// assert!(chunk_spans(0, 1).is_empty());
/// ```
///
/// # Panics
///
/// Panics if `chunk_bytes` is zero.
pub fn chunk_spans(total: usize, chunk_bytes: usize) -> Vec<(usize, usize)> {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    let mut spans = Vec::with_capacity(total.div_ceil(chunk_bytes));
    let mut lo = 0;
    while lo < total {
        let hi = (lo + chunk_bytes).min(total);
        spans.push((lo, hi));
        lo = hi;
    }
    spans
}

/// Reassembles the chunks of one streaming remote-pipe transfer back into
/// the original payload.
///
/// Chunks may arrive in any order (the fabric delivers them in order, but
/// the reassembler does not rely on it); each byte position must be
/// written exactly once. [`Reassembler::complete`] reports when every
/// byte of the announced total has arrived.
///
/// A transfer whose first chunk covers the whole announced total is
/// **adopted without a copy**: [`Reassembler::write_bytes`] keeps the
/// incoming [`Bytes`] view and [`Reassembler::into_bytes`] hands it back
/// as-is — the single-chunk fast path of the zero-copy data plane. The
/// assembly buffer is only allocated when a genuinely partial chunk
/// arrives.
///
/// # Examples
///
/// ```
/// use dataflower_rt::{chunk_spans, Reassembler};
///
/// let payload: Vec<u8> = (0..100u8).collect();
/// let mut r = Reassembler::new(payload.len());
/// for (lo, hi) in chunk_spans(payload.len(), 7) {
///     r.write(lo, &payload[lo..hi]);
/// }
/// assert!(r.complete());
/// assert_eq!(&*r.into_bytes(), &payload[..]);
/// ```
#[derive(Debug)]
pub struct Reassembler {
    /// Announced transfer size.
    total: usize,
    /// A whole-payload chunk adopted without copying (single-chunk fast
    /// path); later duplicate writes are retransmissions and ignored.
    whole: Option<Bytes>,
    /// Copy-assembly buffer, allocated lazily on the first partial chunk.
    buf: Vec<u8>,
    /// Disjoint, sorted, merged byte ranges written so far. Coverage is
    /// tracked positionally (not as a byte count) so duplicated or
    /// overlapping chunks — e.g. a §6.2 checkpoint resume re-sending
    /// from the last mark — can never make the transfer look complete
    /// while bytes are still missing.
    covered: Vec<(usize, usize)>,
}

impl Reassembler {
    /// Prepares to receive a transfer of `total` bytes. No buffer is
    /// allocated yet: a single-chunk transfer is adopted without one.
    pub fn new(total: usize) -> Reassembler {
        Reassembler {
            total,
            whole: None,
            buf: Vec::new(),
            covered: Vec::new(),
        }
    }

    /// Copies one chunk into place. Re-writing already-covered positions
    /// (a retransmission) is harmless and does not advance completion.
    ///
    /// Returns `false` (ignoring the chunk) if it would overrun the
    /// announced total; a well-behaved sender never triggers this.
    pub fn write(&mut self, offset: usize, chunk: &[u8]) -> bool {
        let Some(end) = offset.checked_add(chunk.len()) else {
            return false;
        };
        if end > self.total {
            return false;
        }
        if self.whole.is_some() {
            // Already adopted whole: any in-range write is a
            // retransmission of bytes we have.
            return true;
        }
        if self.buf.capacity() == 0 {
            // One exact allocation, *not* zero-filled: the buffer grows
            // append-wise below, so an in-order stream (the fabric's
            // delivery order) never pays a 2nd pass over the bytes.
            self.buf.reserve_exact(self.total);
        }
        let filled = self.buf.len();
        if offset > filled {
            // Out-of-order chunk landing past the frontier: zero-fill
            // the gap (it is covered-tracked, so completion still
            // requires the real bytes to arrive and overwrite it).
            self.buf.resize(offset, 0);
            self.buf.extend_from_slice(chunk);
        } else {
            let overlap = (filled - offset).min(chunk.len());
            self.buf[offset..offset + overlap].copy_from_slice(&chunk[..overlap]);
            self.buf.extend_from_slice(&chunk[overlap..]);
        }
        if offset < end {
            self.cover(offset, end);
        }
        true
    }

    /// Writes one chunk that arrived as an owned [`Bytes`] view. When the
    /// chunk is the **entire** announced payload and nothing was written
    /// yet, the view is adopted as-is — zero copies, zero allocation.
    /// Otherwise this falls back to [`Reassembler::write`].
    pub fn write_bytes(&mut self, offset: usize, chunk: Bytes) -> bool {
        if offset == 0
            && chunk.len() == self.total
            && self.whole.is_none()
            && self.covered.is_empty()
        {
            self.whole = Some(chunk);
            return true;
        }
        self.write(offset, &chunk)
    }

    /// Merges `[lo, hi)` into the covered-interval set.
    fn cover(&mut self, mut lo: usize, mut hi: usize) {
        // Fold every interval touching [lo, hi) into it; keep the rest.
        let mut kept = Vec::with_capacity(self.covered.len() + 1);
        for &(a, b) in &self.covered {
            if b < lo || hi < a {
                kept.push((a, b));
            } else {
                lo = lo.min(a);
                hi = hi.max(b);
            }
        }
        let pos = kept.partition_point(|&(a, _)| a < lo);
        kept.insert(pos, (lo, hi));
        self.covered = kept;
    }

    /// True once every byte of the announced total has been written.
    pub fn complete(&self) -> bool {
        self.total == 0 || self.whole.is_some() || self.covered == [(0, self.total)]
    }

    /// The reassembled payload: the adopted whole-payload view when the
    /// single-chunk fast path hit, otherwise the assembly buffer.
    pub fn into_bytes(self) -> Bytes {
        match self.whole {
            Some(b) => b,
            None => Bytes::from(self.buf),
        }
    }

    /// Length of the contiguous prefix written so far: the largest `p`
    /// such that every byte of `0..p` has arrived. This is the progress
    /// figure the §6.2 ack protocol quantizes into checkpoint marks.
    pub fn contiguous_prefix(&self) -> usize {
        if self.whole.is_some() {
            return self.total;
        }
        match self.covered.first() {
            Some(&(0, hi)) => hi,
            _ => 0,
        }
    }

    /// Discards everything written at or past byte `keep` — the crash
    /// model of §6.2: progress up to the last checkpoint mark is durable,
    /// everything past it is volatile and lost when the receiving node
    /// dies. After the rollback the transfer completes normally once the
    /// sender replays the stream from the mark.
    ///
    /// A `keep` at or past the announced total is a no-op.
    ///
    /// # Examples
    ///
    /// ```
    /// use dataflower_rt::Reassembler;
    ///
    /// let mut r = Reassembler::new(10);
    /// r.write(0, &[1, 2, 3, 4, 5, 6, 7]);
    /// r.rollback_to(4); // the 4-byte mark survived the crash
    /// assert_eq!(r.contiguous_prefix(), 4);
    /// assert!(!r.complete());
    /// r.write(4, &[5, 6, 7, 8, 9, 10]); // replay from the mark
    /// assert!(r.complete());
    /// assert_eq!(&*r.into_bytes(), &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    /// ```
    pub fn rollback_to(&mut self, keep: usize) {
        let keep = keep.min(self.total);
        if keep == self.total {
            return;
        }
        if let Some(w) = self.whole.take() {
            // Demote the adopted whole-payload view to a copied prefix;
            // keep the buffer exact-sized so replay appends never
            // reallocate.
            self.buf = Vec::new();
            self.buf.reserve_exact(self.total);
            self.buf.extend_from_slice(&w[..keep]);
            self.covered.clear();
            if keep > 0 {
                self.covered.push((0, keep));
            }
            return;
        }
        self.buf.truncate(keep);
        let mut kept = Vec::with_capacity(self.covered.len());
        for &(a, b) in &self.covered {
            if a < keep {
                kept.push((a, b.min(keep)));
            }
        }
        self.covered = kept;
    }
}

/// One sender-side retained transfer: the replay window of a single
/// remote transfer, holding zero-copy [`Bytes`] views of every frame at
/// or past the destination's last acknowledged checkpoint mark. Bounded
/// by the checkpoint interval plus the link's in-flight window: each
/// mark ack trims everything below the mark.
pub(crate) struct RetainedTransfer {
    pub req: u64,
    pub edge: EdgeId,
    pub key: String,
    pub total: usize,
    /// False for direct-socket `Whole` frames, true for chunked streams.
    pub chunked: bool,
    /// Durable prefix at the destination: the last acked checkpoint mark.
    pub acked: usize,
    /// Retained frames `(offset, zero-copy view)`, in send order.
    pub frames: Vec<(usize, Bytes)>,
    /// Last send/ack touching this transfer — staleness clock of the
    /// recovery daemon's retransmit sweep.
    pub last_activity: Instant,
    /// Fully acked. Only reachable in retain-acked mode, where completed
    /// transfers stay resident (excluded from replay and [`len`]) until
    /// their request is purged — the replay source for relocating a
    /// function onto a node that holds none of its bytes.
    ///
    /// [`len`]: LinkRetention::len
    pub completed: bool,
}

/// What one replay sweep over a link's retention produced: the frames to
/// re-deliver plus the recovery accounting.
pub(crate) struct ReplaySummary {
    /// Incomplete transfers whose frames were replayed.
    pub transfers: u64,
    /// Bytes *not* re-sent because they sit below an acked checkpoint
    /// mark — the §6.2 savings of resuming from the mark instead of
    /// byte 0.
    pub resumed_from_mark_bytes: u64,
    /// The frames to re-deliver, in original send order per transfer.
    pub frames: Vec<NetMsg>,
}

/// Sender-side retention of one directed link's un-acknowledged remote
/// frames, keyed by transfer id. The runtime keeps one per link when
/// recovery is enabled; acks from the destination trim it, and crash
/// recovery / retransmission replays it.
#[derive(Default)]
pub(crate) struct LinkRetention {
    transfers: HashMap<u64, RetainedTransfer>,
    /// Retain-acked mode: acks stop freeing frames, so the full byte
    /// history of every transfer stays replayable until its request is
    /// purged. The orchestrator's wire mode needs this — relocating a
    /// function to a node that never hosted it means replaying from
    /// byte 0, including transfers the dead node had already acked.
    retain_acked: bool,
}

impl LinkRetention {
    /// Switches this link into retain-acked mode (see the field doc).
    pub fn set_retain_acked(&mut self, on: bool) {
        self.retain_acked = on;
    }
    /// Retains one outbound frame (called just before it is handed to
    /// the link, so a frame lost at a dead node is always replayable).
    #[allow(clippy::too_many_arguments)]
    pub fn retain(
        &mut self,
        transfer: u64,
        req: u64,
        edge: EdgeId,
        key: &str,
        total: usize,
        chunked: bool,
        offset: usize,
        bytes: Bytes,
    ) {
        let t = self
            .transfers
            .entry(transfer)
            .or_insert_with(|| RetainedTransfer {
                req,
                edge,
                key: key.to_owned(),
                total,
                chunked,
                acked: 0,
                frames: Vec::new(),
                last_activity: Instant::now(),
                completed: false,
            });
        t.frames.push((offset, bytes));
        t.last_activity = Instant::now();
    }

    /// Acknowledges a durable checkpoint mark: frames entirely below it
    /// are dropped from the retention window. Returns the previous acked
    /// mark when the ack advanced it, `None` otherwise.
    pub fn ack_mark(&mut self, transfer: u64, mark: usize) -> Option<usize> {
        let t = self.transfers.get_mut(&transfer)?;
        if mark <= t.acked {
            return None;
        }
        let prev = t.acked;
        t.acked = mark;
        if !self.retain_acked {
            t.frames.retain(|(off, b)| off + b.len() > mark);
        }
        t.last_activity = Instant::now();
        Some(prev)
    }

    /// Acknowledges full delivery: the transfer leaves the retention
    /// window entirely (retain-acked mode instead parks it as completed
    /// until the request is purged). Returns true when it was still
    /// live-retained.
    pub fn ack_complete(&mut self, transfer: u64) -> bool {
        if self.retain_acked {
            match self.transfers.get_mut(&transfer) {
                Some(t) if !t.completed => {
                    t.completed = true;
                    t.last_activity = Instant::now();
                    true
                }
                _ => false,
            }
        } else {
            self.transfers.remove(&transfer).is_some()
        }
    }

    /// Drops every retained transfer of one request — the retain-acked
    /// mode's reclamation point, called once the request's outputs are
    /// delivered. Returns how many transfers were freed.
    pub fn purge_req(&mut self, req: u64) -> usize {
        let before = self.transfers.len();
        self.transfers.retain(|_, t| t.req != req);
        before - self.transfers.len()
    }

    /// Removes and returns one retained transfer by id — used when a
    /// forwarded in-flight frame drags its retention entry along to the
    /// destination's new host.
    pub fn take(&mut self, transfer: u64) -> Option<RetainedTransfer> {
        self.transfers.remove(&transfer)
    }

    /// Removes and returns every retained transfer matching `pred` —
    /// the first half of moving retention between links when a function
    /// relocates (the second half is [`adopt`]).
    ///
    /// [`adopt`]: LinkRetention::adopt
    pub fn extract(
        &mut self,
        mut pred: impl FnMut(&RetainedTransfer) -> bool,
    ) -> Vec<(u64, RetainedTransfer)> {
        let ids: Vec<u64> = self
            .transfers
            .iter()
            .filter(|(_, t)| pred(t))
            .map(|(id, _)| *id)
            .collect();
        ids.into_iter()
            .map(|id| (id, self.transfers.remove(&id).expect("extract ids exist")))
            .collect()
    }

    /// Adopts a transfer extracted from another link. With `reset` the
    /// durable-prefix bookkeeping is cleared (acked mark to 0, completed
    /// off) so a later replay re-sends every frame — required when the
    /// new destination holds none of the transfer's bytes. Frames of an
    /// already-resident entry (a send raced the move) are merged in.
    pub fn adopt(&mut self, transfer: u64, mut t: RetainedTransfer, reset: bool) {
        if reset {
            t.acked = 0;
            t.completed = false;
        }
        match self.transfers.entry(transfer) {
            Entry::Vacant(v) => {
                v.insert(t);
            }
            Entry::Occupied(mut o) => {
                let cur = o.get_mut();
                let have: HashSet<usize> = cur.frames.iter().map(|(off, _)| *off).collect();
                for (off, bytes) in t.frames {
                    if !have.contains(&off) {
                        cur.frames.push((off, bytes));
                    }
                }
                cur.acked = cur.acked.max(t.acked);
                cur.completed = cur.completed || t.completed;
                cur.last_activity = Instant::now();
            }
        }
    }

    /// Replays exactly the given transfers (regardless of idle time or
    /// completion), in full from their retained frames — the relocation
    /// path, called right after [`adopt`] re-homed them onto this link.
    ///
    /// [`adopt`]: LinkRetention::adopt
    pub fn replay_ids(&mut self, now: Instant, ids: &[u64]) -> ReplaySummary {
        let mut summary = ReplaySummary {
            transfers: 0,
            resumed_from_mark_bytes: 0,
            frames: Vec::new(),
        };
        for id in ids {
            if let Some(t) = self.transfers.get_mut(id) {
                t.last_activity = now;
                summary.transfers += 1;
                summary.resumed_from_mark_bytes += t.acked as u64;
                push_replay_frames(&mut summary.frames, *id, t);
            }
        }
        summary
    }

    /// Collects the frames of every retained (= incomplete) transfer for
    /// re-delivery. With `older_than` set, only transfers idle longer
    /// than that are swept (the retransmit path); `None` replays
    /// everything (the node-restart path). Frames stay retained until
    /// acked, so a replay that is lost again can be replayed again.
    pub fn replay(&mut self, now: Instant, older_than: Option<Duration>) -> ReplaySummary {
        let mut summary = ReplaySummary {
            transfers: 0,
            resumed_from_mark_bytes: 0,
            frames: Vec::new(),
        };
        for (id, t) in &mut self.transfers {
            if t.completed {
                continue;
            }
            if let Some(timeout) = older_than {
                if now.duration_since(t.last_activity) < timeout {
                    continue;
                }
            }
            t.last_activity = now;
            summary.transfers += 1;
            summary.resumed_from_mark_bytes += t.acked as u64;
            push_replay_frames(&mut summary.frames, *id, t);
        }
        summary
    }

    /// Number of transfers currently retained and un-acked (retain-acked
    /// mode's completed-but-resident transfers are not counted).
    pub fn len(&self) -> usize {
        self.transfers.values().filter(|t| !t.completed).count()
    }

    /// True when some chunked transfer has crossed at least one acked
    /// checkpoint mark but still has at least `margin` bytes un-acked —
    /// the crash-window probe of the TCP chaos scenario: killing the
    /// destination now guarantees a restart that resumes from a mark
    /// rather than byte 0.
    pub fn has_acked_partial(&self, margin: usize) -> bool {
        self.transfers
            .values()
            .any(|t| t.chunked && t.acked > 0 && t.total - t.acked >= margin)
    }
}

/// Builds the replay frames of one retained transfer, skipping frames
/// that sit entirely below its acked durable prefix (§6.2: resume from
/// the last mark, not byte 0).
fn push_replay_frames(frames: &mut Vec<NetMsg>, id: u64, t: &RetainedTransfer) {
    for (offset, bytes) in &t.frames {
        if *offset + bytes.len() <= t.acked {
            continue;
        }
        frames.push(if t.chunked {
            NetMsg::Chunk {
                req: t.req,
                edge: t.edge,
                key: t.key.clone(),
                transfer: id,
                offset: *offset,
                total: t.total,
                bytes: bytes.clone(),
            }
        } else {
            NetMsg::Whole {
                req: t.req,
                edge: t.edge,
                key: t.key.clone(),
                transfer: id,
                payload: bytes.clone(),
            }
        });
    }
}

/// Destination-side hook a link delivers into: the cluster runtime's
/// per-node ingress.
pub(crate) type Ingress = Arc<dyn Fn(NetMsg) + Send + Sync>;

/// Spawns the shipper thread of one directed link `src → dst`.
///
/// The shipper drains the link's bounded ring in FIFO order — up to
/// [`SHIPPER_BATCH`] frames per wakeup — and for
/// each frame sleeps the shaped transfer time (latency once per transfer
/// plus bytes/bandwidth serialization delay), then hands it to
/// `ingress`. It exits when every sender is gone; when `shutdown` is set
/// it keeps draining but stops sleeping so teardown is prompt.
///
/// `depth` is the link's queue-depth gauge: the sending side increments
/// it per enqueued message, the shipper decrements it once the message
/// was delivered — so the gauge covers both queued and in-shaping
/// messages, and load-aware placement can read the fabric's pressure.
pub(crate) fn spawn_link(
    src: usize,
    dst: usize,
    cfg: LinkConfig,
    rx: crate::ring::RingReceiver<NetMsg>,
    ingress: Ingress,
    shutdown: Arc<AtomicBool>,
    depth: Arc<AtomicUsize>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("link-{src}-{dst}"))
        .spawn(move || {
            let mut batch = Vec::with_capacity(SHIPPER_BATCH);
            while rx.drain_into(&mut batch, SHIPPER_BATCH).is_ok() {
                for msg in batch.drain(..) {
                    if !shutdown.load(Ordering::Relaxed) {
                        let mut delay = Duration::ZERO;
                        if msg.starts_transfer() {
                            delay += cfg.latency;
                        }
                        if let Some(bw) = cfg.bandwidth_bytes_per_sec {
                            if bw > 0.0 {
                                delay += Duration::from_secs_f64(msg.wire_bytes() as f64 / bw);
                            }
                        }
                        if delay > Duration::ZERO {
                            std::thread::sleep(delay);
                        }
                    }
                    ingress(msg);
                    depth.fetch_sub(1, Ordering::Relaxed);
                }
            }
        })
        .expect("spawn link shipper")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_exactly() {
        for (total, chunk) in [
            (0usize, 1usize),
            (1, 1),
            (5, 2),
            (16, 16),
            (17, 16),
            (100, 7),
        ] {
            let spans = chunk_spans(total, chunk);
            if total == 0 {
                assert!(spans.is_empty(), "empty payload must yield no spans");
                continue;
            }
            assert_eq!(spans.first().unwrap().0, 0);
            assert_eq!(spans.last().unwrap().1, total);
            for w in spans.windows(2) {
                assert_eq!(w[0].1, w[1].0, "gap or overlap in {spans:?}");
            }
            for (lo, hi) in &spans {
                assert!(hi - lo <= chunk);
            }
        }
    }

    #[test]
    fn reassembler_rejects_overrun() {
        let mut r = Reassembler::new(4);
        assert!(!r.write(2, &[0, 0, 0]));
        assert!(r.write(0, &[1, 2, 3, 4]));
        assert!(r.complete());
        assert_eq!(&*r.into_bytes(), &[1, 2, 3, 4]);
    }

    #[test]
    fn out_of_order_writes_reassemble() {
        let payload: Vec<u8> = (0..50u8).collect();
        let mut spans = chunk_spans(payload.len(), 8);
        spans.reverse();
        let mut r = Reassembler::new(payload.len());
        for (lo, hi) in spans {
            assert!(!r.complete() || lo == hi);
            r.write(lo, &payload[lo..hi]);
        }
        assert!(r.complete());
        assert_eq!(&*r.into_bytes(), &payload[..]);
    }

    #[test]
    fn retransmitted_chunks_do_not_fake_completion() {
        let payload: Vec<u8> = (0..40u8).collect();
        let mut r = Reassembler::new(payload.len());
        assert!(r.write(0, &payload[0..16]));
        assert!(r.write(8, &payload[8..24])); // checkpoint-resume overlap
        assert!(r.write(0, &payload[0..16])); // exact duplicate
        assert!(!r.complete(), "24 covered bytes must not look like 40");
        assert!(r.write(24, &payload[24..40]));
        assert!(r.complete());
        assert_eq!(&*r.into_bytes(), &payload[..]);
    }

    #[test]
    fn single_chunk_transfer_is_adopted_without_copy() {
        let payload = Bytes::from((0..64u8).collect::<Vec<_>>());
        let mut r = Reassembler::new(payload.len());
        assert!(r.write_bytes(0, payload.clone()));
        assert!(r.complete());
        let out = r.into_bytes();
        // Same allocation, not a copy.
        assert!(std::ptr::eq(out.as_ref(), payload.as_ref()));
        // A retransmission after adoption stays harmless.
        let mut r = Reassembler::new(payload.len());
        assert!(r.write_bytes(0, payload.clone()));
        assert!(r.write_bytes(0, payload.slice(0..16)));
        assert!(r.complete());
        assert_eq!(&*r.into_bytes(), &*payload);
    }

    #[test]
    fn partial_bytes_chunks_fall_back_to_copy_assembly() {
        let payload = Bytes::from((0..50u8).collect::<Vec<_>>());
        let mut r = Reassembler::new(payload.len());
        for (lo, hi) in chunk_spans(payload.len(), 16) {
            assert!(r.write_bytes(lo, payload.slice(lo..hi)));
        }
        assert!(r.complete());
        assert_eq!(&*r.into_bytes(), &*payload);
    }

    #[test]
    fn empty_transfer_is_born_complete() {
        let r = Reassembler::new(0);
        assert!(r.complete());
        assert!(r.into_bytes().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_rejected() {
        chunk_spans(10, 0);
    }

    #[test]
    fn rollback_discards_past_the_mark_and_resumes() {
        let payload: Vec<u8> = (0..100u8).collect();
        let mut r = Reassembler::new(payload.len());
        r.write(0, &payload[0..70]);
        assert_eq!(r.contiguous_prefix(), 70);
        r.rollback_to(64);
        assert_eq!(r.contiguous_prefix(), 64);
        assert!(!r.complete());
        // Replay from the mark, overlapping it by a whole chunk.
        r.write(32, &payload[32..100]);
        assert!(r.complete());
        assert_eq!(&*r.into_bytes(), &payload[..]);
    }

    #[test]
    fn rollback_of_adopted_whole_demotes_to_prefix() {
        let payload = Bytes::from((0..64u8).collect::<Vec<_>>());
        let mut r = Reassembler::new(payload.len());
        assert!(r.write_bytes(0, payload.clone()));
        assert!(r.complete());
        r.rollback_to(16);
        assert!(!r.complete());
        assert_eq!(r.contiguous_prefix(), 16);
        r.write(16, &payload[16..]);
        assert!(r.complete());
        assert_eq!(&*r.into_bytes(), &*payload);
        // Rolling back to (or past) the total is a no-op.
        let mut r = Reassembler::new(4);
        r.write(0, &[9, 9, 9, 9]);
        r.rollback_to(4);
        assert!(r.complete());
    }

    #[test]
    fn rollback_to_zero_restarts_the_transfer() {
        let payload: Vec<u8> = (0..40u8).collect();
        let mut r = Reassembler::new(payload.len());
        r.write(0, &payload[0..30]);
        r.rollback_to(0);
        assert_eq!(r.contiguous_prefix(), 0);
        r.write(0, &payload[..]);
        assert!(r.complete());
        assert_eq!(&*r.into_bytes(), &payload[..]);
    }

    #[test]
    fn retention_trims_on_mark_acks_and_clears_on_completion() {
        use dataflower_workflow::EdgeId;
        let edge = EdgeId::from_index(0);
        let payload = Bytes::from((0..100u8).collect::<Vec<_>>());
        let mut ret = LinkRetention::default();
        for (lo, hi) in chunk_spans(payload.len(), 10) {
            ret.retain(
                7,
                1,
                edge,
                "k",
                payload.len(),
                true,
                lo,
                payload.slice(lo..hi),
            );
        }
        assert_eq!(ret.len(), 1);
        // Ack the 40-byte mark: the four frames below it are dropped.
        assert_eq!(ret.ack_mark(7, 40), Some(0));
        assert_eq!(ret.ack_mark(7, 40), None, "acks are monotone");
        let replay = ret.replay(Instant::now(), None);
        assert_eq!(replay.transfers, 1);
        assert_eq!(replay.resumed_from_mark_bytes, 40);
        assert_eq!(replay.frames.len(), 6, "frames below the mark trimmed");
        // Frames survive a replay (they are only released by acks) and
        // replayed frames carry the original offsets.
        let offsets: Vec<usize> = replay
            .frames
            .iter()
            .map(|m| match m {
                NetMsg::Chunk { offset, .. } => *offset,
                _ => panic!("chunked transfer"),
            })
            .collect();
        assert_eq!(offsets, vec![40, 50, 60, 70, 80, 90]);
        assert!(ret.ack_complete(7));
        assert_eq!(ret.len(), 0);
        assert!(!ret.ack_complete(7));
    }

    #[test]
    fn acked_partial_probe_needs_a_mark_and_margin() {
        use dataflower_workflow::EdgeId;
        let edge = EdgeId::from_index(0);
        let payload = Bytes::from(vec![0u8; 100]);
        let mut ret = LinkRetention::default();
        for (lo, hi) in chunk_spans(payload.len(), 10) {
            ret.retain(3, 1, edge, "k", 100, true, lo, payload.slice(lo..hi));
        }
        // No mark acked yet: not a usable crash window.
        assert!(!ret.has_acked_partial(10));
        ret.ack_mark(3, 40);
        assert!(ret.has_acked_partial(60), "60 bytes remain un-acked");
        assert!(!ret.has_acked_partial(61), "margin larger than remainder");
        // An un-chunked Whole frame never qualifies regardless of acks.
        let mut ret = LinkRetention::default();
        ret.retain(4, 1, edge, "k", 100, false, 0, payload.clone());
        assert!(!ret.has_acked_partial(1));
    }

    #[test]
    fn ack_frames_cost_no_wire_bytes_and_start_nothing() {
        let ack = NetMsg::AckMark {
            transfer: 9,
            mark: 64,
        };
        assert_eq!(ack.wire_bytes(), 0);
        assert!(!ack.starts_transfer());
        let done = NetMsg::AckComplete { transfer: 9 };
        assert_eq!(done.wire_bytes(), 0);
        assert!(!done.starts_transfer());
    }

    #[test]
    fn retransmit_sweep_skips_recently_active_transfers() {
        use dataflower_workflow::EdgeId;
        let mut ret = LinkRetention::default();
        ret.retain(
            1,
            0,
            EdgeId::from_index(0),
            "k",
            4,
            false,
            0,
            Bytes::from_static(&[1, 2, 3, 4]),
        );
        // Just sent: a staleness-gated sweep finds nothing...
        let replay = ret.replay(Instant::now(), Some(Duration::from_secs(60)));
        assert_eq!(replay.transfers, 0);
        // ...but the restart path (no staleness gate) replays it.
        let replay = ret.replay(Instant::now(), None);
        assert_eq!(replay.transfers, 1);
        assert!(matches!(
            replay.frames[0],
            NetMsg::Whole { transfer: 1, .. }
        ));
    }
}
