//! Per-node work-stealing task scheduler — the FLU execution core.
//!
//! Replaces the old thread-per-FLU executor pools: each node owns one
//! [`NodeScheduler`] with a fixed array of worker *slots* (one per
//! potential core slot, sized to the sum of every function's max
//! replicas). Each slot has a local task deque; a shared injector
//! receives submitted invocations. Workers pop locally first, then grab
//! a batch from the injector, then steal half of another slot's deque —
//! the classic Tokio/crossbeam shape, built from std primitives.
//!
//! Elasticity is *stealing parallelism*, not thread count: the
//! autoscaler moves [`NodeScheduler::set_active`] up and down, and a
//! worker whose slot index falls outside the active window drains its
//! local deque back to the injector (so scale-in never strands a queued
//! task — pinned by the `scale_in_during_steal_loses_no_tasks` stress
//! property) and parks until the window grows again. Worker threads are
//! spawned lazily, on the first submission that finds no idle worker,
//! so an idle node costs zero executor threads.
//!
//! Shutdown keeps the old pools' drain guarantee: [`NodeScheduler::stop`]
//! lets every worker keep executing until the injector and all deques
//! are empty, then joins them — queued invocations submitted before the
//! stop still run exactly once.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of FLU work: one function invocation, boxed with its inputs.
pub type Task = Box<dyn FnOnce() + Send>;

/// How many injector tasks a worker claims per grab: it runs the first
/// and stashes the rest on its local deque for itself or stealers.
const INJECT_BATCH: usize = 8;

#[derive(Debug, Default)]
struct ParkState {
    /// Worker threads spawned so far (monotonic; parked workers are
    /// reused when the active window regrows rather than respawned).
    spawned: usize,
    /// Workers currently parked waiting for work.
    idle: usize,
}

struct SchedInner {
    /// Shared submission queue; workers pull batches from the front.
    injector: Mutex<VecDeque<Task>>,
    /// One local deque per slot. Owner pops the front; thieves split
    /// half off the back.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Slots currently allowed to run — the autoscaler's gauge.
    active: AtomicUsize,
    stop: AtomicBool,
    park: Mutex<ParkState>,
    cv: Condvar,
}

impl std::fmt::Debug for SchedInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedInner")
            .field("slots", &self.deques.len())
            .field("active", &self.active.load(Ordering::Relaxed))
            .field("stop", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

/// A node's work-stealing executor. Cheap to clone (shared handle).
#[derive(Debug, Clone)]
pub struct NodeScheduler {
    inner: Arc<SchedInner>,
    label: Arc<str>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NodeScheduler {
    /// A scheduler with `max_slots` worker slots, `active` of them
    /// initially eligible to run. No threads are spawned until the
    /// first [`Self::submit`].
    pub fn new(label: impl Into<String>, max_slots: usize, active: usize) -> NodeScheduler {
        let max_slots = max_slots.max(1);
        NodeScheduler {
            inner: Arc::new(SchedInner {
                injector: Mutex::new(VecDeque::new()),
                deques: (0..max_slots)
                    .map(|_| Mutex::new(VecDeque::new()))
                    .collect(),
                active: AtomicUsize::new(active.clamp(1, max_slots)),
                stop: AtomicBool::new(false),
                park: Mutex::new(ParkState::default()),
                cv: Condvar::new(),
            }),
            label: Arc::from(label.into()),
            handles: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Queues a task for execution. Spawns a worker thread lazily when
    /// no idle worker exists and the active window has unspawned slots;
    /// otherwise wakes a parked worker. Tasks submitted after
    /// [`Self::stop`] are still executed by the draining workers.
    pub fn submit(&self, task: Task) {
        self.inner
            .injector
            .lock()
            .expect("scheduler injector poisoned")
            .push_back(task);
        let mut park = self.inner.park.lock().expect("scheduler park poisoned");
        if park.idle == 0 && park.spawned < self.inner.active.load(Ordering::Acquire) {
            let slot = park.spawned;
            park.spawned += 1;
            drop(park);
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name(format!("{}-w{slot}", self.label))
                .spawn(move || worker(inner, slot))
                .expect("spawn scheduler worker");
            self.handles
                .lock()
                .expect("scheduler handles poisoned")
                .push(handle);
        } else {
            // notify_all, not notify_one: a retired slot's worker may be
            // the one that wakes, re-parks, and would otherwise swallow
            // the signal meant for an active worker.
            self.inner.cv.notify_all();
        }
    }

    /// Resizes the active-slot window (clamped to `1..=max_slots`).
    /// Growing wakes parked workers; shrinking makes out-of-window
    /// workers drain their deques back to the injector and park.
    pub fn set_active(&self, n: usize) {
        let n = n.clamp(1, self.inner.deques.len());
        self.inner.active.store(n, Ordering::Release);
        let _g = self.inner.park.lock().expect("scheduler park poisoned");
        self.inner.cv.notify_all();
    }

    /// Slots currently eligible to run.
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::Acquire)
    }

    /// Total worker slots (the elasticity ceiling).
    pub fn max_slots(&self) -> usize {
        self.inner.deques.len()
    }

    /// Tasks queued but not yet claimed by a worker (racy snapshot).
    pub fn queued(&self) -> usize {
        let mut n = self
            .inner
            .injector
            .lock()
            .expect("scheduler injector poisoned")
            .len();
        for d in &self.inner.deques {
            n += d.lock().expect("scheduler deque poisoned").len();
        }
        n
    }

    /// Signals the scheduler to stop without waiting: workers wake,
    /// finish every queued task (injector and all deques drain to
    /// empty) and exit on their own. Pair with [`NodeScheduler::stop`]
    /// to also join them; detached teardown (`Drop` paths) uses this
    /// alone so it never blocks.
    pub fn signal_stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let _g = self.inner.park.lock().expect("scheduler park poisoned");
        self.inner.cv.notify_all();
    }

    /// Stops the scheduler and joins every worker it ever spawned.
    pub fn stop(&self) {
        self.signal_stop();
        let handles =
            std::mem::take(&mut *self.handles.lock().expect("scheduler handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Claims one runnable task for `slot`, or `None` when every queue the
/// worker may touch is empty.
fn claim(inner: &SchedInner, slot: usize, stopping: bool) -> Option<Task> {
    // Retired slot: push local work back to the shared injector so the
    // active workers (or this worker itself, while draining at stop)
    // pick it up — scale-in must never strand a queued task.
    let retired = slot >= inner.active.load(Ordering::Acquire);
    if retired {
        // Take the local tasks out first, then re-inject without holding
        // the deque lock (keeps every lock pair in injector→deque order).
        let orphans: Vec<Task> = {
            let mut local = inner.deques[slot].lock().expect("scheduler deque poisoned");
            local.drain(..).collect()
        };
        if !orphans.is_empty() {
            inner
                .injector
                .lock()
                .expect("scheduler injector poisoned")
                .extend(orphans);
            // The active workers may all be parked: hand them the
            // re-injected tasks.
            let _g = inner.park.lock().expect("scheduler park poisoned");
            inner.cv.notify_all();
        }
        // While stopping, retired workers still help drain the injector;
        // otherwise they run nothing.
        if !stopping {
            return None;
        }
    } else if let Some(task) = inner.deques[slot]
        .lock()
        .expect("scheduler deque poisoned")
        .pop_front()
    {
        return Some(task);
    }

    // Injector batch-grab: run the first claimed task now, stash the
    // rest locally for later pops (and for thieves).
    {
        let mut inj = inner.injector.lock().expect("scheduler injector poisoned");
        if let Some(first) = inj.pop_front() {
            if !retired {
                let extra = (inj.len() / 2).min(INJECT_BATCH - 1);
                if extra > 0 {
                    let mut local = inner.deques[slot].lock().expect("scheduler deque poisoned");
                    local.extend(inj.drain(..extra));
                }
            }
            return Some(first);
        }
    }
    if retired {
        return None;
    }

    // Steal: split half off the back of another slot's deque.
    let slots = inner.deques.len();
    for k in 1..slots {
        let victim = (slot + k) % slots;
        let mut v = inner.deques[victim]
            .lock()
            .expect("scheduler deque poisoned");
        let take = v.len().div_ceil(2);
        if take == 0 {
            continue;
        }
        let split_at = v.len() - take;
        let stolen: Vec<Task> = v.drain(split_at..).collect();
        drop(v);
        let mut it = stolen.into_iter();
        let first = it.next().expect("stole ≥ 1 task");
        let rest: Vec<Task> = it.collect();
        if !rest.is_empty() {
            let mut local = inner.deques[slot].lock().expect("scheduler deque poisoned");
            local.extend(rest);
        }
        return Some(first);
    }
    None
}

fn worker(inner: Arc<SchedInner>, slot: usize) {
    loop {
        let stopping = inner.stop.load(Ordering::Acquire);
        if let Some(task) = claim(&inner, slot, stopping) {
            task();
            continue;
        }
        // Nothing claimable. At stop, exit once the shared queues are
        // visibly empty — a worker never exits with work it could run.
        let mut park = inner.park.lock().expect("scheduler park poisoned");
        if inner.stop.load(Ordering::Acquire) {
            let empty = inner
                .injector
                .lock()
                .expect("scheduler injector poisoned")
                .is_empty();
            if empty {
                return;
            }
            continue;
        }
        // Re-check for work under the park lock (submit notifies under
        // the same lock, so this cannot miss a wakeup), then park.
        let has_work = !inner
            .injector
            .lock()
            .expect("scheduler injector poisoned")
            .is_empty();
        if has_work && slot < inner.active.load(Ordering::Acquire) {
            continue;
        }
        park.idle += 1;
        let mut park = inner.cv.wait(park).expect("scheduler park poisoned");
        park.idle -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_submitted_tasks_exactly_once() {
        let sched = NodeScheduler::new("t", 4, 2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let hits = Arc::clone(&hits);
            sched.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        sched.stop();
        assert_eq!(hits.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn lazy_spawn_caps_threads_at_active() {
        let sched = NodeScheduler::new("t", 8, 2);
        for _ in 0..100 {
            sched.submit(Box::new(|| {}));
        }
        assert!(sched.inner.park.lock().unwrap().spawned <= 2);
        sched.stop();
    }

    #[test]
    fn scale_in_drains_retired_deques() {
        let sched = NodeScheduler::new("t", 4, 4);
        let hits = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(AtomicBool::new(false));
        for _ in 0..500 {
            let hits = Arc::clone(&hits);
            let gate = Arc::clone(&gate);
            sched.submit(Box::new(move || {
                while !gate.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        sched.set_active(1); // retire three slots while tasks are queued
        gate.store(true, Ordering::Release);
        sched.stop();
        assert_eq!(hits.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn tasks_after_stop_signal_still_drain() {
        let sched = NodeScheduler::new("t", 2, 2);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        sched.submit(Box::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        sched.stop();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn set_active_clamps() {
        let sched = NodeScheduler::new("t", 4, 2);
        sched.set_active(0);
        assert_eq!(sched.active(), 1);
        sched.set_active(100);
        assert_eq!(sched.active(), 4);
        assert_eq!(sched.max_slots(), 4);
        sched.stop();
    }
}
