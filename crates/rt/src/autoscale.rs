//! Pressure-aware elastic scaling of FLU executor capacity (§5.2, Eq. 1).
//!
//! The simulator has always modeled DataFlower's third pillar — an FLU
//! whose DLU cannot drain is blocked, and the engine scales containers
//! out instead of queuing. This module brings the same loop to the live
//! runtime: a runtime-wide autoscaler samples each hosted function's DLU
//! backlog, turns it into seconds of backpressure via
//! [`dataflower::pressure_secs`], and grows or shrinks the function's
//! replica count between configurable bounds. Replica counts no longer
//! map to dedicated threads: they widen or narrow the *active slot
//! window* of the hosting node's work-stealing
//! [`NodeScheduler`](crate::NodeScheduler), so a scale event is a pair
//! of atomic stores rather than a thread spawn or join.
//!
//! The decision kernel ([`ScalePolicy`]) is a pure function of
//! `(now, pressure, replicas)` so the seeded property tests in
//! `tests/properties.rs` can drive it through millions of synthetic
//! pressure trajectories without spawning a thread.
//!
//! # Examples
//!
//! Driving the pure decision kernel through one burst-and-drain cycle —
//! exactly what a node's autoscaler thread does with live gauges:
//!
//! ```
//! use std::time::Duration;
//! use dataflower_rt::autoscale::{AutoscaleConfig, ScaleDirection, ScalePolicy};
//! use dataflower::pressure_secs;
//!
//! let cfg = AutoscaleConfig {
//!     enabled: true,
//!     pressure_threshold_secs: 0.05,
//!     cooldown: Duration::from_millis(100),
//!     ..AutoscaleConfig::default()
//! };
//! let mut policy = ScalePolicy::new(&cfg);
//! let mut replicas = 1;
//!
//! // A burst backs the DLU up by 48 MiB: Eq. 1 pressure spikes…
//! let spike = pressure_secs(cfg.alpha, 48e6, cfg.drain_bw_bytes_per_sec, 0.002);
//! assert!(spike > cfg.pressure_threshold_secs);
//! assert_eq!(policy.decide(0.0, spike, replicas), Some(ScaleDirection::Out));
//! replicas += 1;
//!
//! // …the cool-down guards the very next tick…
//! assert_eq!(policy.decide(0.05, spike, replicas), None);
//!
//! // …and once the backlog drains, the pool shrinks back.
//! let drained = pressure_secs(cfg.alpha, 0.0, cfg.drain_bw_bytes_per_sec, 0.002);
//! assert_eq!(policy.decide(0.2, drained, replicas), Some(ScaleDirection::In));
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize};
use std::sync::Mutex;
use std::time::Duration;

use dataflower::RunningAvg;

/// Tuning knobs of the elastic scaler (per [`ClusterRuntime`]; the same
/// policy instance runs per function).
///
/// Disabled by default: a runtime without explicit opt-in behaves exactly
/// like the fixed-pool runtime of earlier revisions.
///
/// [`ClusterRuntime`]: crate::ClusterRuntime
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleConfig {
    /// Master switch; `false` keeps every pool at its configured size.
    pub enabled: bool,
    /// Lower replica bound per function (≥ 1).
    pub min_replicas: usize,
    /// Upper replica bound per function (≥ `min_replicas`).
    pub max_replicas: usize,
    /// Scale **out** when a function's pressure (Eq. 1) exceeds this many
    /// seconds; scale **in** once pressure drops to zero or below (the
    /// DLU drained).
    pub pressure_threshold_secs: f64,
    /// Connector loss factor `α` of Eq. 1.
    pub alpha: f64,
    /// Estimated DLU drain bandwidth `Bw` of Eq. 1, bytes/second.
    pub drain_bw_bytes_per_sec: f64,
    /// Minimum gap between two scale events of the same function — the
    /// cool-down guard that keeps a draining pool from flapping.
    pub cooldown: Duration,
    /// How often each node samples its hosted functions.
    pub sample_interval: Duration,
}

impl Default for AutoscaleConfig {
    /// Disabled; when enabled, pools of 1–4 replicas, a 10 ms pressure
    /// threshold, α = 1.2, a 64 MiB/s drain estimate, 250 ms cool-down,
    /// 5 ms sampling.
    fn default() -> Self {
        AutoscaleConfig {
            enabled: false,
            min_replicas: 1,
            max_replicas: 4,
            pressure_threshold_secs: 0.010,
            alpha: 1.2,
            drain_bw_bytes_per_sec: 64.0 * 1024.0 * 1024.0,
            cooldown: Duration::from_millis(250),
            sample_interval: Duration::from_millis(5),
        }
    }
}

impl AutoscaleConfig {
    /// Validates the knobs; the runtime builder calls this in `start`.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.min_replicas == 0 {
            return Err("autoscale min_replicas must be at least 1".into());
        }
        if self.max_replicas < self.min_replicas {
            return Err(format!(
                "autoscale max_replicas ({}) below min_replicas ({})",
                self.max_replicas, self.min_replicas
            ));
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err("autoscale alpha must be positive and finite".into());
        }
        if !(self.drain_bw_bytes_per_sec.is_finite() && self.drain_bw_bytes_per_sec > 0.0) {
            return Err("autoscale drain bandwidth must be positive and finite".into());
        }
        if !self.pressure_threshold_secs.is_finite() {
            return Err("autoscale pressure threshold must be finite".into());
        }
        Ok(())
    }
}

/// Which way a scale event moved a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDirection {
    /// Added one replica (pressure past the threshold).
    Out,
    /// Retired one replica (pressure drained, cool-down elapsed).
    In,
}

/// One entry of a runtime's scaling timeline
/// ([`ClusterRuntime::scaling_timeline`](crate::ClusterRuntime::scaling_timeline)).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleEvent {
    /// When the event fired, relative to runtime start.
    pub at: Duration,
    /// The function whose pool changed.
    pub function: String,
    /// The node hosting that pool.
    pub node: usize,
    /// Out (grow) or In (shrink).
    pub direction: ScaleDirection,
    /// Pool size before the event.
    pub from_replicas: usize,
    /// Pool size after the event.
    pub to_replicas: usize,
    /// The Eq. 1 pressure sample that triggered the event, seconds.
    pub pressure_secs: f64,
}

/// The pure per-function scaling decision kernel.
///
/// Feed it time-ordered `(now, pressure, replicas)` samples; it answers
/// with at most one [`ScaleDirection`] per call and self-enforces the
/// `[min, max]` bounds and the cool-down guard. Out-of-bounds pool sizes
/// (e.g. a configuration change at runtime start) are repaired one step
/// per call, ignoring the cool-down.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use dataflower_rt::{AutoscaleConfig, ScaleDirection, ScalePolicy};
///
/// let cfg = AutoscaleConfig {
///     enabled: true,
///     pressure_threshold_secs: 0.05,
///     cooldown: Duration::from_millis(100),
///     ..AutoscaleConfig::default()
/// };
/// let mut p = ScalePolicy::new(&cfg);
/// // Pressure past the threshold: grow.
/// assert_eq!(p.decide(0.0, 0.2, 1), Some(ScaleDirection::Out));
/// // Cool-down: no immediate second event.
/// assert_eq!(p.decide(0.05, 0.2, 2), None);
/// // Drained after the cool-down: shrink.
/// assert_eq!(p.decide(0.2, -0.01, 2), Some(ScaleDirection::In));
/// ```
#[derive(Debug, Clone)]
pub struct ScalePolicy {
    min: usize,
    max: usize,
    threshold_secs: f64,
    cooldown_secs: f64,
    last_event_secs: Option<f64>,
}

impl ScalePolicy {
    /// A policy with `cfg`'s bounds, threshold and cool-down.
    pub fn new(cfg: &AutoscaleConfig) -> ScalePolicy {
        ScalePolicy {
            min: cfg.min_replicas,
            max: cfg.max_replicas,
            threshold_secs: cfg.pressure_threshold_secs,
            cooldown_secs: cfg.cooldown.as_secs_f64(),
            last_event_secs: None,
        }
    }

    /// Decides on one sample. `now_secs` must be non-decreasing across
    /// calls; `pressure_secs` is the Eq. 1 sample; `replicas` the pool
    /// size the caller currently runs.
    pub fn decide(
        &mut self,
        now_secs: f64,
        pressure_secs: f64,
        replicas: usize,
    ) -> Option<ScaleDirection> {
        // Bounds repair first: a pool outside [min, max] moves one step
        // back toward the range regardless of pressure or cool-down.
        if replicas < self.min {
            self.last_event_secs = Some(now_secs);
            return Some(ScaleDirection::Out);
        }
        if replicas > self.max {
            self.last_event_secs = Some(now_secs);
            return Some(ScaleDirection::In);
        }
        if let Some(last) = self.last_event_secs {
            if now_secs - last < self.cooldown_secs {
                return None;
            }
        }
        if pressure_secs > self.threshold_secs && replicas < self.max {
            self.last_event_secs = Some(now_secs);
            return Some(ScaleDirection::Out);
        }
        if pressure_secs <= 0.0 && replicas > self.min {
            self.last_event_secs = Some(now_secs);
            return Some(ScaleDirection::In);
        }
        None
    }
}

/// Shared live gauges of one function: what the FLU invocations and
/// the DLU daemon report, and what the autoscaler samples.
pub(crate) struct FnScale {
    /// Replica count the runtime currently intends — the function's
    /// contribution to its hosting node's active scheduler-slot window.
    pub replicas: AtomicUsize,
    /// Bytes handed to the DLU that it has not finished routing — the
    /// `Size` term of Eq. 1. Includes the payload the daemon is currently
    /// shipping, so a daemon blocked on a saturated inter-node link keeps
    /// the pressure visible.
    pub backlog_bytes: AtomicU64,
    /// Observed FLU execution times — the `T_FLU` term of Eq. 1.
    pub t_flu: Mutex<RunningAvg>,
    /// Invocations of this function currently executing on a scheduler
    /// worker (incremented at task start, decremented when the body
    /// returns). Unlike `replicas` — the *intended* capacity — this is
    /// the observed in-flight count, which is what live migration polls
    /// to know the drain finished.
    pub live: AtomicUsize,
}

impl FnScale {
    pub fn new(initial_replicas: usize) -> FnScale {
        FnScale {
            replicas: AtomicUsize::new(initial_replicas),
            backlog_bytes: AtomicU64::new(0),
            t_flu: Mutex::new(RunningAvg::new()),
            live: AtomicUsize::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig {
            enabled: true,
            min_replicas: 1,
            max_replicas: 3,
            pressure_threshold_secs: 0.05,
            cooldown: Duration::from_millis(100),
            ..AutoscaleConfig::default()
        }
    }

    #[test]
    fn scales_out_then_respects_max() {
        let mut p = ScalePolicy::new(&cfg());
        assert_eq!(p.decide(0.0, 1.0, 1), Some(ScaleDirection::Out));
        assert_eq!(p.decide(0.2, 1.0, 2), Some(ScaleDirection::Out));
        // At max: high pressure changes nothing.
        assert_eq!(p.decide(0.4, 1.0, 3), None);
    }

    #[test]
    fn cooldown_blocks_consecutive_events() {
        let mut p = ScalePolicy::new(&cfg());
        assert_eq!(p.decide(0.0, 1.0, 1), Some(ScaleDirection::Out));
        assert_eq!(p.decide(0.05, 1.0, 2), None);
        assert_eq!(p.decide(0.11, 1.0, 2), Some(ScaleDirection::Out));
    }

    #[test]
    fn scales_in_only_when_drained_and_above_min() {
        let mut p = ScalePolicy::new(&cfg());
        // Mild positive pressure under the threshold: hold.
        assert_eq!(p.decide(0.0, 0.01, 2), None);
        assert_eq!(p.decide(0.1, 0.0, 2), Some(ScaleDirection::In));
        assert_eq!(p.decide(0.3, -1.0, 1), None); // at min already
    }

    #[test]
    fn bounds_repair_ignores_cooldown() {
        let mut p = ScalePolicy::new(&cfg());
        assert_eq!(p.decide(0.0, 0.0, 0), Some(ScaleDirection::Out));
        assert_eq!(p.decide(0.001, 0.0, 5), Some(ScaleDirection::In));
    }

    #[test]
    fn config_validation_catches_bad_knobs() {
        assert!(AutoscaleConfig::default().validate().is_ok());
        let bad = AutoscaleConfig {
            min_replicas: 0,
            ..AutoscaleConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = AutoscaleConfig {
            min_replicas: 4,
            max_replicas: 2,
            ..AutoscaleConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = AutoscaleConfig {
            drain_bw_bytes_per_sec: 0.0,
            ..AutoscaleConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
