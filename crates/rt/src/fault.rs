//! Deterministic, seed-driven fault injection for the live cluster
//! runtime — the chaos half of the §6.2 fault-tolerance story.
//!
//! A [`FaultPlan`] describes everything that goes wrong in a run:
//!
//! * **frame chaos** — each fabric frame can be dropped, delivered
//!   twice, or have its shipper wakeup delayed, decided by a stateless
//!   hash of `(seed, frame number, link)`, so a plan is reproducible
//!   given the same frame sequence;
//! * **node kills** — [`NodeKill`] crashes a node when the global fabric
//!   frame counter reaches a chosen logical event, and the runtime's
//!   recovery daemon restarts it after the configured outage.
//!
//! The default plan is a no-op and costs the data plane nothing beyond
//! one `Option` check per frame. Plans with drops or kills need
//! [`RecoveryConfig`](crate::RecoveryConfig) enabled to stay lossless:
//! recovery retains un-acked frames on the sender and replays them on
//! restart (resuming chunked streams from the last acknowledged
//! checkpoint mark) and retransmits frames whose acks never arrived.
//!
//! # Crash model
//!
//! A "crash" is a *data-plane* crash, the §6.2 pipe-connector view of a
//! node failure: every fabric frame inbound to the dead node is lost,
//! and reassembly progress past the last checkpoint mark is discarded
//! ([`Reassembler::rollback_to`](crate::Reassembler::rollback_to)).
//! Parked Wait-Match sink entries and FLU/DLU compute state are modeled
//! durable — the paper backs the data sink with function-exclusive disk
//! and ReDoes lost compute — so after
//! [`ClusterRuntime::restart_node`](crate::ClusterRuntime::restart_node)
//! the surviving entries are still parked and only the damaged stream
//! state is replayed.
//!
//! # Examples
//!
//! A plan that drops 2 % and duplicates 1 % of frames, and kills node 1
//! at the 40th fabric frame for a 20 ms outage:
//!
//! ```
//! use std::time::Duration;
//! use dataflower_rt::fault::{FaultPlan, FrameFate, NodeKill};
//!
//! let plan = FaultPlan::seeded(42)
//!     .frame_chaos(0.02, 0.01)
//!     .kill_node(1, 40, Duration::from_millis(20));
//! assert!(!plan.is_noop());
//! assert!(plan.validate().is_ok());
//!
//! // Frame fates are a pure function of (seed, frame, link): the same
//! // plan always makes the same decisions.
//! assert_eq!(plan.frame_fate(7, 0, 1), plan.frame_fate(7, 0, 1));
//! let dropped = (0..1000)
//!     .filter(|f| plan.frame_fate(*f, 0, 1) == FrameFate::Drop)
//!     .count();
//! assert!(dropped > 0 && dropped < 100, "~2% of 1000 frames");
//! assert_eq!(plan.kills, vec![NodeKill {
//!     node: 1,
//!     at_frame: 40,
//!     outage: Duration::from_millis(20),
//! }]);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Kill one node when the global fabric frame counter reaches a logical
/// event, then restart it after an outage (executed by the runtime's
/// recovery daemon).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeKill {
    /// The node to crash.
    pub node: usize,
    /// Crash when this many fabric frames have been shipped (a logical
    /// event index, not wall-clock — deterministic under load shifts).
    pub at_frame: u64,
    /// How long the node stays down before the recovery daemon restarts
    /// it and replays the retained streams.
    pub outage: Duration,
}

/// A deterministic, seed-driven fault-injection plan; see the
/// [module docs](self) for the model. The default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-frame chaos decisions.
    pub seed: u64,
    /// Probability a fabric frame is dropped in flight.
    pub drop_frame_rate: f64,
    /// Probability a fabric frame is delivered twice.
    pub duplicate_frame_rate: f64,
    /// Probability a frame's shipper wakeup is delayed by
    /// [`FaultPlan::frame_delay`].
    pub delay_frame_rate: f64,
    /// Delay applied to frames selected by
    /// [`FaultPlan::delay_frame_rate`].
    pub frame_delay: Duration,
    /// Scheduled node crashes.
    pub kills: Vec<NodeKill>,
}

impl Default for FaultPlan {
    /// No faults: every frame delivers once, no node ever dies.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_frame_rate: 0.0,
            duplicate_frame_rate: 0.0,
            delay_frame_rate: 0.0,
            frame_delay: Duration::from_millis(1),
            kills: Vec::new(),
        }
    }
}

/// What fault injection decided for one fabric frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Deliver normally.
    Deliver,
    /// Lose the frame in flight (recovery retransmits it later).
    Drop,
    /// Deliver the frame twice (reassembly and the Wait-Match sink are
    /// idempotent, so duplicates must be harmless).
    Duplicate,
    /// Delay the shipper before delivering.
    Delay(Duration),
}

impl FaultPlan {
    /// An empty plan with the given chaos seed (builder entry point).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the frame drop and duplication rates (builder style).
    pub fn frame_chaos(mut self, drop_rate: f64, duplicate_rate: f64) -> FaultPlan {
        self.drop_frame_rate = drop_rate;
        self.duplicate_frame_rate = duplicate_rate;
        self
    }

    /// Delays `rate` of the shipper wakeups by `delay` (builder style).
    pub fn delay_frames(mut self, rate: f64, delay: Duration) -> FaultPlan {
        self.delay_frame_rate = rate;
        self.frame_delay = delay;
        self
    }

    /// Schedules a node kill (builder style); see [`NodeKill`].
    pub fn kill_node(mut self, node: usize, at_frame: u64, outage: Duration) -> FaultPlan {
        self.kills.push(NodeKill {
            node,
            at_frame,
            outage,
        });
        self
    }

    /// True when the plan injects nothing — the zero-cost default: the
    /// runtime skips all fault bookkeeping for no-op plans.
    pub fn is_noop(&self) -> bool {
        self.drop_frame_rate <= 0.0
            && self.duplicate_frame_rate <= 0.0
            && self.delay_frame_rate <= 0.0
            && self.kills.is_empty()
    }

    /// Validates the plan's rates (each in `[0, 1]`, summing to at most
    /// 1) — the runtime builder calls this in `start`.
    ///
    /// Node indices of [`FaultPlan::kills`] are validated against the
    /// placement's node count there too.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("drop_frame_rate", self.drop_frame_rate),
            ("duplicate_frame_rate", self.duplicate_frame_rate),
            ("delay_frame_rate", self.delay_frame_rate),
        ];
        for (name, r) in rates {
            if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                return Err(format!("fault plan {name} must be within [0, 1], got {r}"));
            }
        }
        let sum = self.drop_frame_rate + self.duplicate_frame_rate + self.delay_frame_rate;
        if sum > 1.0 {
            return Err(format!(
                "fault plan frame rates sum to {sum}, which exceeds 1"
            ));
        }
        Ok(())
    }

    /// The fate of fabric frame number `frame` on link `src → dst`: a
    /// pure function of the plan's seed, so a plan replays identically
    /// for the same frame sequence.
    pub fn frame_fate(&self, frame: u64, src: usize, dst: usize) -> FrameFate {
        if self.drop_frame_rate <= 0.0
            && self.duplicate_frame_rate <= 0.0
            && self.delay_frame_rate <= 0.0
        {
            return FrameFate::Deliver;
        }
        let h = splitmix64(
            self.seed
                ^ frame.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ ((src as u64) << 32 | dst as u64).wrapping_mul(0xd1b5_4a32_d192_ed03),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform [0, 1)
        if u < self.drop_frame_rate {
            FrameFate::Drop
        } else if u < self.drop_frame_rate + self.duplicate_frame_rate {
            FrameFate::Duplicate
        } else if u < self.drop_frame_rate + self.duplicate_frame_rate + self.delay_frame_rate {
            FrameFate::Delay(self.frame_delay)
        } else {
            FrameFate::Deliver
        }
    }
}

/// SplitMix64: the standard 64-bit finalizing mixer — enough entropy for
/// stateless per-frame decisions, no RNG state to share across shipper
/// threads.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Runtime counterpart of a [`FaultPlan`]: the global frame counter and
/// the not-yet-executed kill/restart schedule, shared by every shipper
/// thread and the recovery daemon.
pub(crate) struct FaultState {
    plan: FaultPlan,
    frames: AtomicU64,
    pending_kills: Mutex<Vec<NodeKill>>,
    due_restarts: Mutex<Vec<(Instant, usize)>>,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> FaultState {
        let pending_kills = Mutex::new(plan.kills.clone());
        FaultState {
            plan,
            frames: AtomicU64::new(0),
            pending_kills,
            due_restarts: Mutex::new(Vec::new()),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Ticks the global logical event counter; returns this frame's
    /// event number.
    pub fn next_frame(&self) -> u64 {
        self.frames.fetch_add(1, Ordering::Relaxed)
    }

    /// Kills whose `at_frame` has been reached, removed from the
    /// schedule (each fires once).
    pub fn take_due_kills(&self, frame: u64) -> Vec<NodeKill> {
        let mut pending = self.pending_kills.lock().expect("fault lock poisoned");
        if pending.iter().all(|k| k.at_frame > frame) {
            return Vec::new();
        }
        let mut due = Vec::new();
        pending.retain(|k| {
            if k.at_frame <= frame {
                due.push(k.clone());
                false
            } else {
                true
            }
        });
        due
    }

    /// Schedules a restart of `node` at `at` (executed by the recovery
    /// daemon's next tick past the deadline).
    pub fn schedule_restart(&self, node: usize, at: Instant) {
        self.due_restarts
            .lock()
            .expect("fault lock poisoned")
            .push((at, node));
    }

    /// Restarts whose outage deadline passed, removed from the schedule.
    pub fn take_due_restarts(&self, now: Instant) -> Vec<usize> {
        let mut pending = self.due_restarts.lock().expect("fault lock poisoned");
        let mut due = Vec::new();
        pending.retain(|(at, node)| {
            if *at <= now {
                due.push(*node);
                false
            } else {
                true
            }
        });
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_always_delivers() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        assert!(plan.validate().is_ok());
        for f in 0..100 {
            assert_eq!(plan.frame_fate(f, 0, 1), FrameFate::Deliver);
        }
    }

    #[test]
    fn frame_fates_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::seeded(7)
            .frame_chaos(0.25, 0.25)
            .delay_frames(0.25, Duration::from_millis(2));
        assert!(plan.validate().is_ok());
        let (mut drops, mut dups, mut delays) = (0u32, 0u32, 0u32);
        for f in 0..4000 {
            let fate = plan.frame_fate(f, 1, 2);
            assert_eq!(fate, plan.frame_fate(f, 1, 2), "stateless determinism");
            match fate {
                FrameFate::Drop => drops += 1,
                FrameFate::Duplicate => dups += 1,
                FrameFate::Delay(d) => {
                    assert_eq!(d, Duration::from_millis(2));
                    delays += 1;
                }
                FrameFate::Deliver => {}
            }
        }
        for count in [drops, dups, delays] {
            assert!((700..1300).contains(&count), "≈25% of 4000, got {count}");
        }
        // Distinct links draw distinct streams.
        let differs = (0..100).any(|f| plan.frame_fate(f, 1, 2) != plan.frame_fate(f, 2, 1));
        assert!(differs);
    }

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(FaultPlan::seeded(1)
            .frame_chaos(-0.1, 0.0)
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(1)
            .frame_chaos(1.1, 0.0)
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(1)
            .frame_chaos(0.6, 0.6)
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(1)
            .frame_chaos(f64::NAN, 0.0)
            .validate()
            .is_err());
    }

    #[test]
    fn kills_fire_once_at_their_frame() {
        let plan = FaultPlan::seeded(1)
            .kill_node(2, 10, Duration::from_millis(5))
            .kill_node(1, 20, Duration::from_millis(5));
        let state = FaultState::new(plan);
        assert!(state.take_due_kills(9).is_empty());
        let due = state.take_due_kills(10);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].node, 2);
        assert!(state.take_due_kills(10).is_empty(), "each kill fires once");
        assert_eq!(state.take_due_kills(25).len(), 1);
    }

    #[test]
    fn restarts_become_due_after_their_deadline() {
        let state = FaultState::new(FaultPlan::default());
        let now = Instant::now();
        state.schedule_restart(3, now + Duration::from_millis(50));
        assert!(state.take_due_restarts(now).is_empty());
        let due = state.take_due_restarts(now + Duration::from_millis(51));
        assert_eq!(due, vec![3]);
        assert!(state
            .take_due_restarts(now + Duration::from_secs(1))
            .is_empty());
    }
}
