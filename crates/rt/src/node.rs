//! Per-node state of the multi-node live runtime: the placement map, one
//! [`NodeRuntime`] per simulated worker node, and the node-local data
//! sink the DLU routes into.
//!
//! Each node owns the FLU executor threads and DLU daemon threads of the
//! functions placed on it, its own Wait-Match data sink (inbound payloads
//! keyed by `(request, function, edge)`), the reassembly buffers of
//! in-flight remote-pipe transfers, and a janitor thread that passively
//! expires unconsumed sink entries — the same anatomy the paper gives a
//! worker node in Fig. 4, shrunk to threads inside one process.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use dataflower_workflow::{ActiveGraph, EdgeId, FnId, Workflow};

use crate::bytes::Bytes;
use crate::fabric::Reassembler;
use crate::sink::ShardedSink;

/// Maps every workflow function to the node that hosts it.
///
/// Functions without an explicit assignment default to node 0, so a
/// freshly created placement is the paper's co-located baseline; spread
/// placements are built with [`Placement::assign`], or generated with
/// [`Placement::round_robin`] / [`Placement::by_level`].
///
/// # Examples
///
/// ```
/// use dataflower_rt::Placement;
///
/// let p = Placement::with_nodes(3)
///     .assign("split", 0)
///     .assign("work", 1)
///     .assign("merge", 2);
/// assert_eq!(p.node_count(), 3);
/// assert_eq!(p.node_of("work"), 1);
/// assert_eq!(p.node_of("unassigned"), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    nodes: usize,
    map: HashMap<String, usize>,
}

impl Placement {
    /// A single-node placement: every function co-located (the original
    /// one-worker runtime).
    #[deprecated(
        since = "0.1.0",
        note = "use the `SingleNode` placement policy with \
                `ClusterRuntimeBuilder::policy` instead"
    )]
    pub fn single_node() -> Placement {
        single_node_impl()
    }

    /// A placement over `nodes` worker nodes; functions default to
    /// node 0 until assigned.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn with_nodes(nodes: usize) -> Placement {
        assert!(nodes > 0, "a cluster needs at least one node");
        Placement {
            nodes,
            map: HashMap::new(),
        }
    }

    /// Pins function `name` to `node` (builder style).
    pub fn assign(mut self, name: impl Into<String>, node: usize) -> Placement {
        self.map.insert(name.into(), node);
        self
    }

    /// Re-pins function `name` to `node` in place — the mutation the
    /// orchestrator applies to the live placement when it relocates or
    /// migrates a function.
    pub fn reassign(&mut self, name: impl Into<String>, node: usize) {
        self.map.insert(name.into(), node);
    }

    /// Spreads functions across `nodes` in topological order, one by one
    /// — maximally scattered: almost every data edge crosses nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[deprecated(
        since = "0.1.0",
        note = "use the `RoundRobin` placement policy with \
                `ClusterRuntimeBuilder::policy` instead"
    )]
    pub fn round_robin(wf: &Workflow, nodes: usize) -> Placement {
        round_robin_impl(wf, nodes)
    }

    /// Places each dependency level of the workflow on its own node
    /// (level *l* on node *l* mod `nodes`): stages within a level stay
    /// co-located, every level boundary crosses nodes. This is the spread
    /// used by the `live_cluster` benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[deprecated(
        since = "0.1.0",
        note = "use the `ByLevel` placement policy with \
                `ClusterRuntimeBuilder::policy` instead"
    )]
    pub fn by_level(wf: &Workflow, nodes: usize) -> Placement {
        by_level_impl(wf, nodes)
    }

    /// Routes each function to the currently least-loaded node: a greedy
    /// bin-packing over the workflow's modeled per-function cost, seeded
    /// with `base_load` — one load figure per node, e.g. live fabric
    /// queue depths or DLU backlogs from
    /// [`ClusterRuntime::node_pressure`](crate::ClusterRuntime::node_pressure)
    /// — so new function instances land on the least-pressured node.
    ///
    /// Functions are visited in topological order; each is assigned to
    /// the node with the smallest accumulated load, which then grows by
    /// the function's modeled core-seconds at a 1 MiB reference input.
    /// With an all-zero `base_load` this is a pure balance placement;
    /// with live figures it biases new work away from busy nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or `base_load.len() != nodes`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dataflower_rt::{LoadAware, PlacementPolicy};
    /// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};
    ///
    /// let mut b = WorkflowBuilder::new("pair");
    /// let heavy = b.function("heavy", WorkModel::fixed(1.0));
    /// let light = b.function("light", WorkModel::fixed(0.1));
    /// b.client_input(heavy, "a", SizeModel::Fixed(1.0));
    /// b.client_input(light, "b", SizeModel::Fixed(1.0));
    /// b.client_output(heavy, "oa", SizeModel::Fixed(1.0));
    /// b.client_output(light, "ob", SizeModel::Fixed(1.0));
    /// let wf = b.build().unwrap();
    ///
    /// // Node 0 reports pre-existing pressure: the heavy function lands
    /// // on node 1, after which node 0 is the lighter bin again.
    /// let p = LoadAware::with_base_load(vec![0.5, 0.0]).initial(&wf, 2);
    /// assert_eq!(p.node_of("heavy"), 1);
    /// assert_eq!(p.node_of("light"), 0);
    /// ```
    #[deprecated(
        since = "0.1.0",
        note = "use the `LoadAware` placement policy with \
                `ClusterRuntimeBuilder::policy` instead"
    )]
    pub fn load_aware(wf: &Workflow, nodes: usize, base_load: &[f64]) -> Placement {
        load_aware_impl(wf, nodes, base_load)
    }

    /// The node hosting function `name` (node 0 when unassigned).
    pub fn node_of(&self, name: &str) -> usize {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Number of worker nodes in the topology.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Validates the placement against `wf`: every assignment must name a
    /// workflow function and a node inside the topology.
    pub(crate) fn validate(&self, wf: &Workflow) -> Result<(), String> {
        for (name, node) in &self.map {
            if wf.function_by_name(name).is_none() {
                return Err(format!("placement names unknown function `{name}`"));
            }
            if *node >= self.nodes {
                return Err(format!(
                    "function `{name}` placed on node {node}, but the topology has {} node(s)",
                    self.nodes
                ));
            }
        }
        Ok(())
    }
}

fn single_node_impl() -> Placement {
    Placement::with_nodes(1)
}

fn round_robin_impl(wf: &Workflow, nodes: usize) -> Placement {
    let mut p = Placement::with_nodes(nodes);
    for (i, f) in wf.topo_order().iter().enumerate() {
        p.map.insert(wf.function(*f).name.clone(), i % nodes);
    }
    p
}

fn by_level_impl(wf: &Workflow, nodes: usize) -> Placement {
    let mut p = Placement::with_nodes(nodes);
    for (level, fns) in wf.levels().iter().enumerate() {
        for f in fns {
            p.map.insert(wf.function(*f).name.clone(), level % nodes);
        }
    }
    p
}

fn load_aware_impl(wf: &Workflow, nodes: usize, base_load: &[f64]) -> Placement {
    assert!(nodes > 0, "a cluster needs at least one node");
    assert_eq!(
        base_load.len(),
        nodes,
        "load_aware needs one base-load figure per node"
    );
    const REFERENCE_INPUT_BYTES: f64 = 1024.0 * 1024.0;
    let mut load = base_load.to_vec();
    let mut p = Placement::with_nodes(nodes);
    for f in wf.topo_order() {
        let def = wf.function(*f);
        let cost = def.work.core_secs(REFERENCE_INPUT_BYTES).max(1e-9);
        let target = (0..nodes)
            .min_by(|a, b| load[*a].total_cmp(&load[*b]))
            .expect("nodes > 0");
        load[target] += cost;
        p.map.insert(def.name.clone(), target);
    }
    p
}

/// A live placement strategy: how functions are laid out at `start()`
/// **and** where they go when their node dies or a migration is asked
/// for — the routing-authority half of the orchestrator control plane.
///
/// The old static [`Placement`] constructors (`single_node`,
/// `round_robin`, `by_level`, `load_aware`) are deprecated shims over
/// the policy structs [`SingleNode`], [`RoundRobin`], [`ByLevel`] and
/// [`LoadAware`]; a policy given to
/// [`ClusterRuntimeBuilder::policy`](crate::ClusterRuntimeBuilder::policy)
/// additionally steers node-loss relocation at runtime.
///
/// # Examples
///
/// ```
/// use dataflower_rt::{ByLevel, PlacementPolicy};
/// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new("chain");
/// let a = b.function("a", WorkModel::fixed(0.001));
/// let c = b.function("c", WorkModel::fixed(0.001));
/// b.client_input(a, "in", SizeModel::Fixed(1.0));
/// b.edge(a, c, "mid", SizeModel::Fixed(1.0));
/// b.client_output(c, "out", SizeModel::Fixed(1.0));
/// let wf = b.build().unwrap();
///
/// let p = ByLevel.initial(&wf, 2);
/// assert_eq!(p.node_of("a"), 0);
/// assert_eq!(p.node_of("c"), 1);
/// // Node 0 died; node 2 is idle, node 1 is loaded.
/// assert_eq!(ByLevel.relocate(0, &[1, 2], &[0.0, 9.0, 1.0]), 2);
/// ```
pub trait PlacementPolicy: Send + Sync {
    /// The placement this policy lays `wf` out with on a fresh cluster
    /// of `nodes` worker nodes.
    fn initial(&self, wf: &Workflow, nodes: usize) -> Placement;

    /// Picks the node that inherits one function of the `dead` node.
    /// `live` holds the surviving node ids and `pressure` one gauge per
    /// node of the *full* topology (indexable by node id; dead nodes
    /// included so ids line up). The default routes to the
    /// least-pressured survivor — the ε-CON choice.
    ///
    /// # Panics
    ///
    /// The default implementation panics if `live` is empty: with no
    /// survivors there is nowhere to relocate to.
    fn relocate(&self, dead: usize, live: &[usize], pressure: &[f64]) -> usize {
        let _ = dead;
        *live
            .iter()
            .min_by(|a, b| {
                let pa = pressure.get(**a).copied().unwrap_or(0.0);
                let pb = pressure.get(**b).copied().unwrap_or(0.0);
                pa.total_cmp(&pb)
            })
            .expect("relocate needs at least one surviving node")
    }
}

/// Everything co-located on one node (the paper's single-worker
/// baseline). `initial` ignores the offered node count and returns a
/// one-node topology.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SingleNode;

impl PlacementPolicy for SingleNode {
    fn initial(&self, _wf: &Workflow, _nodes: usize) -> Placement {
        single_node_impl()
    }
}

/// Functions scattered across nodes one by one in topological order —
/// maximally spread, almost every data edge crosses nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl PlacementPolicy for RoundRobin {
    fn initial(&self, wf: &Workflow, nodes: usize) -> Placement {
        round_robin_impl(wf, nodes)
    }
}

/// One dependency level per node (level *l* on node *l* mod `nodes`):
/// stages stay co-located, level boundaries cross nodes. The spread the
/// committed bench baselines use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByLevel;

impl PlacementPolicy for ByLevel {
    fn initial(&self, wf: &Workflow, nodes: usize) -> Placement {
        by_level_impl(wf, nodes)
    }
}

/// Greedy bin-packing over the workflow's modeled per-function cost,
/// optionally seeded with live per-node load figures (see the former
/// `Placement::load_aware` for the algorithm).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadAware {
    base_load: Vec<f64>,
}

impl LoadAware {
    /// Pure balance placement: every node starts from zero load.
    pub fn idle() -> LoadAware {
        LoadAware::default()
    }

    /// Seeds the bin-packing with one pre-existing load figure per node
    /// (e.g. live DLU backlogs), biasing new work away from busy nodes.
    pub fn with_base_load(base_load: Vec<f64>) -> LoadAware {
        LoadAware { base_load }
    }
}

impl PlacementPolicy for LoadAware {
    /// # Panics
    ///
    /// Panics if a non-empty seed load was given whose length differs
    /// from `nodes`.
    fn initial(&self, wf: &Workflow, nodes: usize) -> Placement {
        if self.base_load.is_empty() {
            load_aware_impl(wf, nodes, &vec![0.0; nodes])
        } else {
            load_aware_impl(wf, nodes, &self.base_load)
        }
    }
}

/// One payload parked in a node's data sink.
pub(crate) struct SinkEntry {
    pub key: String,
    pub payload: Bytes,
    pub arrived: Instant,
    pub spilled: bool,
}

/// A node's view of one in-flight request.
pub(crate) struct NodeReqState {
    /// The request's resolved switch choices (shared across nodes).
    pub active: Arc<ActiveGraph>,
    /// Remaining input edges per *locally hosted* function before it
    /// triggers; `usize::MAX` marks an already-triggered function.
    pub missing: HashMap<FnId, usize>,
    /// Inbound data awaiting its local consumer.
    pub entries: HashMap<FnId, BTreeMap<EdgeId, SinkEntry>>,
    /// Reassembly buffers of in-flight remote-pipe transfers, keyed by
    /// `(edge, transfer id)`.
    pub partial: HashMap<(EdgeId, u64), Reassembler>,
    /// Transfers already reassembled and delivered. A late duplicate or
    /// retransmitted chunk of a finished transfer must not re-create a
    /// ghost reassembler in `partial` (it could never complete, and its
    /// first write would allocate a full transfer-sized buffer); this
    /// set lets the ingress recognize and ack such frames away. Bounded
    /// by the request's transfer count and dropped with the request.
    pub done: std::collections::HashSet<(EdgeId, u64)>,
}

/// The shared (thread-accessible) state of one node: its lock-striped
/// Wait-Match data sink, keyed by request id, plus the crash flag of the
/// §6.2 fault model. DLU routing lookups, FLU trigger checks, janitor
/// sweeps and depth gauges each lock only the stripe(s) they touch, so
/// concurrent requests do not contend on one node-wide mutex.
pub(crate) struct NodeState {
    pub sink: ShardedSink<NodeReqState>,
    /// True while the node is crashed (data-plane crash: inbound fabric
    /// frames are lost, reassembly past the last checkpoint mark was
    /// discarded). Set by `ClusterRuntime::crash_node` / fault-plan
    /// kills, cleared by `ClusterRuntime::restart_node`.
    pub down: AtomicBool,
    /// Milliseconds since runtime start of the node's last keep-alive
    /// heartbeat (stamped by its in-process responder thread, read by
    /// the orchestrator controller). A crashed node stops stamping.
    pub last_beat: AtomicU64,
    /// True once the orchestrator declared the node permanently lost and
    /// relocated its functions. A lost node is never restarted, and the
    /// recovery daemon re-homes any retention still pointing at it.
    pub lost: AtomicBool,
}

impl NodeState {
    pub fn new(stripes: usize) -> NodeState {
        NodeState {
            sink: ShardedSink::new(stripes),
            down: AtomicBool::new(false),
            last_beat: AtomicU64::new(0),
            lost: AtomicBool::new(false),
        }
    }
}

/// One worker node of a [`ClusterRuntime`](crate::ClusterRuntime): the
/// FLU executors, DLU daemons, data sink and janitor of the functions
/// placed on it.
///
/// Nodes are created by
/// [`ClusterRuntimeBuilder::start`](crate::ClusterRuntimeBuilder::start);
/// inspect them through [`ClusterRuntime::node`](crate::ClusterRuntime::node).
pub struct NodeRuntime {
    pub(crate) id: usize,
    pub(crate) functions: Vec<String>,
    pub(crate) state: Arc<NodeState>,
    pub(crate) threads: Vec<JoinHandle<()>>,
}

impl NodeRuntime {
    /// This node's index in the topology.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Names of the workflow functions hosted on this node, in workflow
    /// declaration order.
    pub fn hosted_functions(&self) -> &[String] {
        &self.functions
    }

    /// Number of live threads this node owns (FLU executors, DLU daemons
    /// and its janitor).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// True while this node is crashed (see
    /// [`ClusterRuntime::crash_node`](crate::ClusterRuntime::crash_node)):
    /// inbound fabric frames are being lost and will be replayed from the
    /// senders' retention windows on restart.
    pub fn is_down(&self) -> bool {
        self.state.down.load(Ordering::SeqCst)
    }

    /// Remote-pipe transfers currently mid-reassembly in this node's
    /// sink, across all in-flight requests — the in-flight set a crash
    /// would damage. Sums stripe by stripe, one stripe lock at a time.
    pub fn inflight_transfers(&self) -> usize {
        self.state
            .sink
            .fold(0usize, |acc, _, rs| acc + rs.partial.len())
    }

    /// Payloads currently parked in this node's data sink, waiting for
    /// their consumer's remaining inputs (across all in-flight requests).
    /// Sums stripe by stripe, never holding more than one stripe lock.
    pub fn parked_entries(&self) -> usize {
        self.state.sink.fold(0usize, |acc, _, rs| {
            acc + rs.entries.values().map(BTreeMap::len).sum::<usize>()
        })
    }
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("id", &self.id)
            .field("functions", &self.functions)
            .field("threads", &self.threads.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};

    fn chain() -> Workflow {
        let mut b = WorkflowBuilder::new("chain");
        let a = b.function("a", WorkModel::fixed(0.001));
        let c = b.function("c", WorkModel::fixed(0.001));
        b.client_input(a, "in", SizeModel::Fixed(1.0));
        b.edge(a, c, "mid", SizeModel::Fixed(1.0));
        b.client_output(c, "out", SizeModel::Fixed(1.0));
        b.build().unwrap()
    }

    #[test]
    fn by_level_spreads_levels() {
        let wf = chain();
        let p = ByLevel.initial(&wf, 2);
        assert_eq!(p.node_of("a"), 0);
        assert_eq!(p.node_of("c"), 1);
    }

    #[test]
    fn round_robin_cycles() {
        let wf = chain();
        let p = RoundRobin.initial(&wf, 2);
        assert_ne!(p.node_of("a"), p.node_of("c"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_match_their_policies() {
        let wf = chain();
        assert_eq!(Placement::single_node(), SingleNode.initial(&wf, 3));
        assert_eq!(Placement::round_robin(&wf, 2), RoundRobin.initial(&wf, 2));
        assert_eq!(Placement::by_level(&wf, 2), ByLevel.initial(&wf, 2));
        assert_eq!(
            Placement::load_aware(&wf, 2, &[0.0, 0.0]),
            LoadAware::idle().initial(&wf, 2)
        );
        assert_eq!(
            Placement::load_aware(&wf, 2, &[5.0, 0.0]),
            LoadAware::with_base_load(vec![5.0, 0.0]).initial(&wf, 2)
        );
    }

    #[test]
    fn default_relocate_picks_least_pressured_survivor() {
        assert_eq!(ByLevel.relocate(0, &[1, 2, 3], &[9.0, 4.0, 1.0, 2.0]), 2);
        // Ids index the full-topology pressure vector, dead node included.
        assert_eq!(SingleNode.relocate(2, &[0, 1], &[3.0, 0.5, 0.0]), 1);
    }

    #[test]
    #[should_panic(expected = "at least one surviving node")]
    fn relocate_with_no_survivors_panics() {
        ByLevel.relocate(0, &[], &[1.0]);
    }

    #[test]
    fn validate_catches_bad_assignments() {
        let wf = chain();
        assert!(Placement::with_nodes(2)
            .assign("ghost", 0)
            .validate(&wf)
            .is_err());
        assert!(Placement::with_nodes(2)
            .assign("a", 2)
            .validate(&wf)
            .is_err());
        assert!(Placement::with_nodes(2)
            .assign("a", 1)
            .validate(&wf)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        Placement::with_nodes(0);
    }

    #[test]
    fn load_aware_balances_equal_costs() {
        // Four equal-cost independent functions over two idle nodes:
        // greedy bin-packing alternates, two per node.
        let mut b = WorkflowBuilder::new("flat");
        for k in 0..4 {
            let f = b.function(format!("f{k}"), WorkModel::fixed(0.5));
            b.client_input(f, format!("in{k}"), SizeModel::Fixed(1.0));
            b.client_output(f, format!("out{k}"), SizeModel::Fixed(1.0));
        }
        let wf = b.build().unwrap();
        let p = LoadAware::idle().initial(&wf, 2);
        let on_node0 = (0..4).filter(|k| p.node_of(&format!("f{k}")) == 0).count();
        assert_eq!(on_node0, 2, "equal costs must spread evenly");
        assert!(p.validate(&wf).is_ok());
    }

    #[test]
    fn load_aware_avoids_pressured_nodes() {
        let wf = chain();
        // Node 0 carries heavy live pressure: both functions go to node 1.
        let p = LoadAware::with_base_load(vec![1000.0, 0.0]).initial(&wf, 2);
        assert_eq!(p.node_of("a"), 1);
        assert_eq!(p.node_of("c"), 1);
    }

    #[test]
    #[should_panic(expected = "one base-load figure per node")]
    fn load_aware_rejects_mismatched_base_load() {
        LoadAware::with_base_load(vec![0.0]).initial(&chain(), 2);
    }
}
