//! Cheap-to-clone immutable byte buffers with zero-copy slicing.
//!
//! A std-only stand-in for the `bytes` crate: a [`Bytes`] value is a
//! `(allocation, offset, len)` view over either an `Arc<[u8]>` or a
//! `&'static [u8]`, so cloning it for every output edge a payload fans
//! out to is a reference-count bump (or a pointer copy), never a byte
//! copy — and [`Bytes::slice`] carves O(1) sub-views that share the
//! parent allocation, which is what lets the fabric ship chunk frames
//! without copying the payload per chunk.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// The backing storage of a [`Bytes`] view.
#[derive(Clone)]
enum Repr {
    /// A shared heap allocation; clones bump the refcount.
    Shared(Arc<[u8]>),
    /// A `'static` slice; clones copy the pointer, never the bytes.
    Static(&'static [u8]),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Shared(a) => a,
            Repr::Static(s) => s,
        }
    }
}

/// An immutable, reference-counted byte payload.
///
/// Equality, ordering and hashing all act on the *visible* bytes of the
/// view, so a slice compares equal to an independently allocated copy of
/// the same bytes.
///
/// # Examples
///
/// ```
/// use dataflower_rt::Bytes;
///
/// let b = Bytes::from_static(b"dataflower");
/// let c = b.clone(); // O(1): shares the same storage
/// assert_eq!(&*c, b"dataflower");
/// assert_eq!(Bytes::from(String::from("hi")).len(), 2);
///
/// // O(1) sub-view: no bytes are copied.
/// let flower = b.slice(4..);
/// assert_eq!(&*flower, b"flower");
/// ```
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Wraps a static byte slice without copying: the view borrows the
    /// `'static` data directly, so repeated calls for the same fixed
    /// payload never allocate.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            len: bytes.len(),
            repr: Repr::Static(bytes),
            offset: 0,
        }
    }

    /// Copies a slice into a new shared allocation.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes {
            len: bytes.len(),
            repr: Repr::Shared(Arc::from(bytes)),
            offset: 0,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns a payload that does not pin substantially more memory
    /// than it shows: when this view covers less than half of its
    /// (heap) backing allocation, the visible bytes are copied into a
    /// tight new allocation and the parent is released; otherwise the
    /// view is returned as-is. Views of `'static` data never compact —
    /// they pin nothing.
    ///
    /// The runtime calls this before *parking* a payload in a data sink:
    /// zero-copy slices are free while data is in flight, but a 1 KiB
    /// slice waiting minutes for its consumer must not keep an 8 MiB
    /// parent buffer alive.
    ///
    /// # Examples
    ///
    /// ```
    /// use dataflower_rt::Bytes;
    ///
    /// let big = Bytes::from(vec![7u8; 1024]);
    /// let small = big.slice(0..10).compact();
    /// drop(big); // `small` no longer references the 1 KiB allocation
    /// assert_eq!(&*small, &[7u8; 10]);
    /// ```
    pub fn compact(self) -> Bytes {
        match &self.repr {
            Repr::Static(_) => self,
            Repr::Shared(alloc) if self.len * 2 >= alloc.len() => self,
            Repr::Shared(_) => Bytes::copy_from_slice(&self),
        }
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// An O(1) sub-view of `range`, sharing this view's allocation: no
    /// bytes are copied, and the allocation stays alive as long as any
    /// view of it does. This is the zero-copy path the fabric uses to
    /// cut a payload into chunk frames.
    ///
    /// # Panics
    ///
    /// Panics when the range reaches past `self.len()` or its start lies
    /// past its end.
    ///
    /// # Examples
    ///
    /// ```
    /// use dataflower_rt::Bytes;
    ///
    /// let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
    /// assert_eq!(&*b.slice(1..4), &[1, 2, 3]);
    /// assert_eq!(b.slice(2..2).len(), 0);
    /// assert_eq!(&*b.slice(..), &*b);
    /// ```
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            lo <= hi && hi <= self.len,
            "slice {lo}..{hi} out of range for Bytes of length {}",
            self.len
        );
        Bytes {
            repr: self.repr.clone(),
            offset: self.offset + lo,
            len: hi - lo,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::from_static(b"")
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.repr.as_slice()[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            len: v.len(),
            repr: Repr::Shared(Arc::from(v)),
            offset: 0,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        (**self).cmp(&**other)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} B)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_ref(), b.as_ref()));
    }

    #[test]
    fn conversions() {
        assert_eq!(&*Bytes::from_static(b"x"), b"x");
        assert_eq!(&*Bytes::from(String::from("ab")), b"ab");
        assert_eq!(&*Bytes::from("cd"), b"cd");
        assert_eq!(&*Bytes::copy_from_slice(&[9u8]), &[9u8]);
        assert!(Bytes::default().is_empty());
    }

    #[test]
    fn from_static_does_not_allocate() {
        // A static view points straight at the static data.
        let a = Bytes::from_static(b"fixed payload");
        let b = Bytes::from_static(b"fixed payload");
        assert!(std::ptr::eq(a.as_ref(), b.as_ref()));
        // Slices of it stay zero-copy too.
        let s = a.slice(6..);
        assert!(std::ptr::eq(s.as_ref(), &a.as_ref()[6..]));
    }

    #[test]
    fn slice_shares_parent_allocation() {
        let a = Bytes::from((0..100u8).collect::<Vec<_>>());
        let s = a.slice(10..20);
        assert_eq!(&*s, &(10..20u8).collect::<Vec<_>>()[..]);
        assert!(std::ptr::eq(s.as_ref(), &a.as_ref()[10..20]));
        // Nested slicing composes offsets.
        let t = s.slice(5..);
        assert_eq!(&*t, &[15, 16, 17, 18, 19]);
        // The view keeps the allocation alive after the parent drops.
        drop(a);
        assert_eq!(t[0], 15);
    }

    #[test]
    fn equality_is_by_visible_bytes() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(a.slice(1..3), Bytes::from(vec![2u8, 3]));
        assert_ne!(a.slice(0..2), a.slice(2..4));
        use std::collections::hash_map::DefaultHasher;
        let h = |b: &Bytes| {
            let mut s = DefaultHasher::new();
            b.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a.slice(1..3)), h(&Bytes::from(vec![2u8, 3])));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![0u8; 4]).slice(2..6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn backwards_slice_panics() {
        #[allow(clippy::reversed_empty_ranges)]
        Bytes::from(vec![0u8; 4]).slice(3..1);
    }
}
