//! Cheap-to-clone immutable byte buffers.
//!
//! A std-only stand-in for the `bytes` crate: a [`Bytes`] value is an
//! `Arc<[u8]>`, so cloning it for every output edge a payload fans out to
//! is a reference-count bump, never a copy.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte payload.
///
/// # Examples
///
/// ```
/// use dataflower_rt::Bytes;
///
/// let b = Bytes::from_static(b"dataflower");
/// let c = b.clone(); // O(1): shares the same allocation
/// assert_eq!(&*c, b"dataflower");
/// assert_eq!(Bytes::from(String::from("hi")).len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Wraps a static byte slice. (Unlike the `bytes` crate this copies
    /// once into a shared allocation; all clones still share it.)
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Copies a slice into a new shared allocation.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes(Arc::from(s.into_bytes()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes(Arc::from(s))
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} B)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_ref(), b.as_ref()));
    }

    #[test]
    fn conversions() {
        assert_eq!(&*Bytes::from_static(b"x"), b"x");
        assert_eq!(&*Bytes::from(String::from("ab")), b"ab");
        assert_eq!(&*Bytes::from("cd"), b"cd");
        assert_eq!(&*Bytes::copy_from_slice(&[9u8]), &[9u8]);
        assert!(Bytes::default().is_empty());
    }
}
