//! A lock-striped concurrent map keyed by request id — the live
//! runtime's per-node Wait-Match data sink.
//!
//! The original sink was one `Mutex<HashMap<u64, _>>`, which serialized
//! every DLU routing lookup, FLU trigger check, janitor sweep and depth
//! gauge behind a single lock. [`ShardedSink`] splits the map into N
//! stripes (N rounded up to a power of two), each behind its own
//! `Mutex`; a request id is hashed to a stripe, so operations on
//! different requests proceed in parallel and a janitor sweep only ever
//! holds one stripe at a time.
//!
//! # Examples
//!
//! Concurrent producers on distinct requests, with a gauge sweep running
//! alongside — the exact access pattern of a node's data plane:
//!
//! ```
//! use std::sync::Arc;
//! use dataflower_rt::sink::ShardedSink;
//!
//! let sink: Arc<ShardedSink<Vec<u8>>> = Arc::new(ShardedSink::new(16));
//! let producers: Vec<_> = (0..4u64)
//!     .map(|req| {
//!         let sink = Arc::clone(&sink);
//!         std::thread::spawn(move || {
//!             sink.insert(req, vec![req as u8; 64]); // park a payload
//!             sink.with(req, |entry| entry.unwrap().push(0xff)); // one stripe lock
//!         })
//!     })
//!     .collect();
//! for p in producers {
//!     p.join().unwrap();
//! }
//! // A sweep (the janitor / depth-gauge path) visits every entry while
//! // holding only one stripe lock at a time.
//! let parked_bytes = sink.fold(0usize, |acc, _req, payload| acc + payload.len());
//! assert_eq!(parked_bytes, 4 * 65);
//! assert_eq!(sink.remove(2).unwrap().len(), 65);
//! ```

use std::sync::Mutex;

/// Multiplicative (Fibonacci) hash spreading sequential request ids
/// across stripes: without it, ids `0..N` would land on stripes `0..N`
/// in order, which is fine — but adversarial or strided id patterns
/// would collide on one stripe.
const HASH_MULT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Open-addressing `u64 → V` map used inside each stripe. Linear
/// probing with backward-shift deletion (no tombstones), power-of-two
/// capacity, ≤3/4 load. Compared to `std::collections::HashMap` this
/// drops SipHash (one multiply instead) and keeps the entries in one
/// contiguous slot array, so the janitor/depth-gauge sweeps — which
/// iterate every entry while holding the stripe lock — walk linear
/// memory instead of chasing hashbrown control groups.
///
/// Bucket selection uses the *top* bits of the multiplied key while
/// stripe selection uses bits 32.., so keys that collided into one
/// stripe still spread across its buckets.
#[derive(Debug)]
struct OpenMap<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> OpenMap<V> {
    fn new() -> OpenMap<V> {
        OpenMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket(&self, key: u64) -> usize {
        debug_assert!(self.slots.len().is_power_of_two());
        let shift = 64 - self.slots.len().trailing_zeros();
        (key.wrapping_mul(HASH_MULT) >> shift) as usize
    }

    /// Slot index currently holding `key`, if present.
    fn find(&self, key: u64) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find(key)?;
        match &mut self.slots[i] {
            Some((_, v)) => Some(v),
            None => unreachable!("find returned an occupied slot"),
        }
    }

    fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(key);
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if self.find(key).is_none() {
            self.insert(key, default());
        }
        let i = self.find(key).expect("inserted above");
        match &mut self.slots[i] {
            Some((_, v)) => v,
            None => unreachable!("find returned an occupied slot"),
        }
    }

    fn remove(&mut self, key: u64) -> Option<V> {
        let mut i = self.find(key)?;
        let (_, value) = self.slots[i].take().expect("find returned occupied");
        self.len -= 1;
        // Backward-shift the rest of the probe cluster into the gap so
        // lookups never need tombstones: an entry moves back unless it
        // already sits in its home bucket.
        let mask = self.slots.len() - 1;
        let mut j = (i + 1) & mask;
        while let Some((k, _)) = &self.slots[j] {
            if (j.wrapping_sub(self.bucket(*k)) & mask) == 0 {
                break;
            }
            self.slots[i] = self.slots[j].take();
            i = j;
            j = (j + 1) & mask;
        }
        Some(value)
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| None).collect());
        self.len = 0;
        for (k, v) in old.into_iter().flatten() {
            self.insert(k, v);
        }
    }

    fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut V)> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.as_mut().map(|(k, v)| (*k, &mut *v)))
    }
}

/// A lock-striped `u64 → V` map: N independent `Mutex<HashMap>` stripes,
/// selected by key hash.
///
/// All operations lock exactly one stripe (except whole-map sweeps,
/// which visit stripes one at a time), so concurrent producers and
/// consumers working on different requests do not contend.
///
/// # Examples
///
/// ```
/// use dataflower_rt::ShardedSink;
///
/// let sink: ShardedSink<&str> = ShardedSink::new(8);
/// assert!(sink.insert(7, "payload").is_none());
/// assert_eq!(sink.with(7, |v| v.copied()), Some("payload"));
/// assert_eq!(sink.remove(7), Some("payload"));
/// assert!(sink.is_empty());
/// ```
pub struct ShardedSink<V> {
    stripes: Box<[Mutex<OpenMap<V>>]>,
    mask: u64,
}

impl<V> ShardedSink<V> {
    /// Creates a sink with `stripes` lock stripes, rounded up to the
    /// next power of two (minimum 1). `ShardedSink::new(1)` is exactly
    /// the old single-lock sink — useful as a contention baseline.
    pub fn new(stripes: usize) -> ShardedSink<V> {
        let n = stripes.max(1).next_power_of_two();
        ShardedSink {
            stripes: (0..n).map(|_| Mutex::new(OpenMap::new())).collect(),
            mask: n as u64 - 1,
        }
    }

    /// Number of lock stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe(&self, key: u64) -> &Mutex<OpenMap<V>> {
        let idx = (key.wrapping_mul(HASH_MULT) >> 32) & self.mask;
        &self.stripes[idx as usize]
    }

    /// Inserts `value` under `key`, returning the previous value if one
    /// existed.
    pub fn insert(&self, key: u64, value: V) -> Option<V> {
        self.stripe(key)
            .lock()
            .expect("sink stripe poisoned")
            .insert(key, value)
    }

    /// Removes and returns the value under `key`.
    pub fn remove(&self, key: u64) -> Option<V> {
        self.stripe(key)
            .lock()
            .expect("sink stripe poisoned")
            .remove(key)
    }

    /// Runs `f` on the entry under `key` (or `None` if absent) while
    /// holding only that key's stripe lock.
    pub fn with<R>(&self, key: u64, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        let mut map = self.stripe(key).lock().expect("sink stripe poisoned");
        f(map.get_mut(key))
    }

    /// Runs `f` on the entry under `key`, inserting `default()` first if
    /// the key is absent — all under one stripe lock acquisition, so a
    /// concurrent remover cannot race between the miss and the insert.
    /// This is the worker-process ingress path: a data frame may arrive
    /// before any local state for its request was seeded.
    pub fn with_or_insert<R>(
        &self,
        key: u64,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        let mut map = self.stripe(key).lock().expect("sink stripe poisoned");
        f(map.get_or_insert_with(key, default))
    }

    /// Visits every entry mutably, one stripe locked at a time — the
    /// janitor's sweep path. Entries inserted into an already-visited
    /// stripe during the sweep are missed until the next sweep, which is
    /// exactly the passive-expire semantics.
    pub fn for_each_mut(&self, mut f: impl FnMut(u64, &mut V)) {
        for stripe in self.stripes.iter() {
            let mut map = stripe.lock().expect("sink stripe poisoned");
            for (k, v) in map.iter_mut() {
                f(k, v);
            }
        }
        // A sweep is maintenance, and a sweeper that immediately starts
        // the next pass holds *some* stripe lock almost all the time. On
        // saturated hosts that turns every data-plane op into a coin-flip
        // futex wait; yielding here moves the sweeper's deschedule points
        // to where it holds nothing.
        std::thread::yield_now();
    }

    /// Folds over every entry, one stripe locked at a time — the depth
    /// gauge path (e.g. summing parked payloads).
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, u64, &V) -> A) -> A {
        let mut acc = init;
        for stripe in self.stripes.iter() {
            let map = stripe.lock().expect("sink stripe poisoned");
            for (k, v) in map.iter() {
                acc = f(acc, k, v);
            }
        }
        // Same cooperative yield as `for_each_mut`: a gauge loop folding
        // back-to-back must not pin the data plane behind its stripe
        // locks on a saturated core.
        std::thread::yield_now();
        acc
    }

    /// Number of entries across all stripes (sweeps every stripe).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("sink stripe poisoned").len())
            .sum()
    }

    /// True when every stripe is empty.
    pub fn is_empty(&self) -> bool {
        self.stripes
            .iter()
            .all(|s| s.lock().expect("sink stripe poisoned").is_empty())
    }
}

impl<V> std::fmt::Debug for ShardedSink<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSink")
            .field("stripes", &self.stripes.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(ShardedSink::<u8>::new(0).stripe_count(), 1);
        assert_eq!(ShardedSink::<u8>::new(1).stripe_count(), 1);
        assert_eq!(ShardedSink::<u8>::new(5).stripe_count(), 8);
        assert_eq!(ShardedSink::<u8>::new(16).stripe_count(), 16);
    }

    #[test]
    fn insert_with_remove_roundtrip() {
        let s: ShardedSink<String> = ShardedSink::new(4);
        for k in 0..100u64 {
            assert!(s.insert(k, format!("v{k}")).is_none());
        }
        assert_eq!(s.len(), 100);
        s.with(42, |v| {
            *v.expect("present") = "changed".into();
        });
        assert_eq!(s.remove(42).as_deref(), Some("changed"));
        assert!(!s.with(42, |v| v.is_some()));
        assert_eq!(s.len(), 99);
    }

    #[test]
    fn sweeps_and_folds_visit_everything() {
        let s: ShardedSink<u64> = ShardedSink::new(8);
        for k in 0..64u64 {
            s.insert(k, k * 2);
        }
        let mut seen = 0u64;
        s.for_each_mut(|_, v| {
            *v += 1;
            seen += 1;
        });
        assert_eq!(seen, 64);
        let sum = s.fold(0u64, |a, _, v| a + v);
        assert_eq!(sum, (0..64u64).map(|k| k * 2 + 1).sum());
    }

    #[test]
    fn with_or_insert_seeds_exactly_once() {
        let s: ShardedSink<Vec<u32>> = ShardedSink::new(4);
        let len = s.with_or_insert(9, Vec::new, |v| {
            v.push(1);
            v.len()
        });
        assert_eq!(len, 1);
        // Second call finds the seeded entry, not a fresh default.
        let len = s.with_or_insert(
            9,
            || panic!("must not re-seed"),
            |v| {
                v.push(2);
                v.len()
            },
        );
        assert_eq!(len, 2);
        assert_eq!(s.remove(9), Some(vec![1, 2]));
    }

    #[test]
    fn concurrent_inserts_and_removes_balance() {
        let s: Arc<ShardedSink<u64>> = Arc::new(ShardedSink::new(16));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = t * 10_000 + i;
                        s.insert(k, k);
                        assert_eq!(s.remove(k), Some(k));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(s.is_empty());
    }
}
