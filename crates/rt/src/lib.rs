//! # dataflower-rt
//!
//! A **live, multi-threaded implementation of the FLU/DLU programming
//! model** — the same execution model the simulated engine reproduces,
//! but with real threads, real bytes and real channels. It demonstrates
//! that the paper's programming model (Fig. 5a) is directly expressible:
//!
//! * function bodies are plain Rust closures receiving a [`FluContext`];
//! * `ctx.put(...)` hands data to the function's **DLU daemon thread**
//!   mid-function; transfers overlap the rest of the computation;
//! * downstream functions trigger on **data availability** — when the
//!   last input lands in the in-process data sink, not when a controller
//!   says so;
//! * bounded DLU queues exert genuine backpressure on over-producing
//!   functions (Fig. 6a);
//! * unconsumed sink entries passively expire via a janitor thread.
//!
//! The workflow *definition* is shared with the simulator
//! ([`dataflower_workflow`]), so one definition drives both the
//! evaluation figures and real execution.
//!
//! See [`RuntimeBuilder`] for a complete runnable example, and
//! `examples/wordcount_live.rs` for a real word count over generated
//! text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
mod channel;
mod context;
mod error;
mod runtime;

pub use bytes::Bytes;
pub use context::{FluContext, PutTarget};
pub use error::RtError;
pub use runtime::{ReqId, RtConfig, RtStats, Runtime, RuntimeBuilder};
