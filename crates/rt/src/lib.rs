//! # dataflower-rt
//!
//! A **live, multi-threaded, multi-node implementation of the FLU/DLU
//! programming model** — the same execution model the simulated engine
//! reproduces, but with real threads, real bytes and real channels. It
//! demonstrates that the paper's programming model (Fig. 5a) and worker
//! topology (Fig. 4) are directly expressible:
//!
//! * function bodies are plain Rust closures receiving a [`FluContext`];
//!   invocations run as tasks on a per-node **work-stealing scheduler**
//!   ([`NodeScheduler`]) whose worker threads spawn lazily, one per
//!   active executor slot;
//! * `ctx.put(...)` hands data to the hosting node's **DLU daemon
//!   thread** mid-function; transfers overlap the rest of the
//!   computation;
//! * downstream functions trigger on **data availability** — when the
//!   last input lands in the hosting node's data sink (a lock-striped
//!   [`ShardedSink`], so concurrent requests never contend on one
//!   node-wide mutex), not when a controller says so;
//! * a [`ClusterRuntime`] runs one [`NodeRuntime`] per simulated worker
//!   node; a [`Placement`] maps functions to nodes, and every
//!   inter-function transfer is classified through the paper's §7
//!   three-way pipe choice — direct socket under 16 KiB, node-local pipe
//!   when co-located, chunked streaming remote pipe (with §6.2
//!   checkpoint marks) across nodes;
//! * cross-node traffic rides an in-process fabric of per-link
//!   lock-free SPSC rings ([`ring`]) with optional bandwidth/latency
//!   shaping ([`LinkConfig`]);
//! * bounded DLU queues exert genuine backpressure on over-producing
//!   functions (Fig. 6a);
//! * unconsumed sink entries passively expire via a runtime-wide
//!   janitor;
//! * with [`AutoscaleConfig`] enabled, a runtime-wide autoscaler
//!   samples each function's DLU backlog, converts it into Eq. 1
//!   pressure-seconds, and elastically grows/shrinks each node's
//!   *active executor-slot window* between configurable bounds
//!   (scale-out past the threshold, cool-down-guarded scale-in once
//!   drained) — the paper's pressure-aware scaling, §5.2 — without
//!   spawning or killing threads;
//! * with [`RecoveryConfig`] enabled, the runtime is fault tolerant per
//!   §6.2: senders retain zero-copy views of un-acked frames, chunked
//!   streams acknowledge checkpoint marks, and a crashed node
//!   ([`ClusterRuntime::crash_node`], or a seeded [`FaultPlan`] kill)
//!   restarts with every incomplete transfer replayed from its last
//!   acknowledged mark — `wait` returns byte-identical outputs across a
//!   single-node crash.
//!
//! The workflow *definition* is shared with the simulator
//! ([`dataflower_workflow`]), so one definition drives both the
//! evaluation figures and real execution — single-node, co-located or
//! spread, by swapping the [`Placement`].
//!
//! When the in-process fabric is not enough — kill-9 fault tolerance,
//! real serialization costs — the [`transport`] module promotes every
//! directed link to a real TCP socket speaking the versioned [`wire`]
//! frame format, with one OS process per node ([`TcpCluster`]) and the
//! same §6.2 retention/ack protocol carried as explicit ack frames. The
//! in-process fabric remains the default and the fast path.
//!
//! See [`RuntimeBuilder`] (single node) and [`ClusterRuntimeBuilder`]
//! (multi-node) for complete runnable examples,
//! `examples/multinode_live.rs` for the paper benchmarks on a three-node
//! topology, and `examples/checkpoint_recovery.rs` for a crash mid-
//! transfer healed from the checkpoint marks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod autoscale;
mod bytes;
pub mod channel;
mod config;
mod context;
mod error;
pub mod fabric;
pub mod fault;
mod node;
mod orchestrator;
pub mod pool;
pub mod ring;
mod runtime;
pub mod sched;
pub mod sink;
pub mod trace;
pub mod transport;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionGate, Rejected, TenantStats};
pub use autoscale::{AutoscaleConfig, ScaleDirection, ScaleEvent, ScalePolicy};
pub use bytes::Bytes;
pub use config::ClusterConfig;
pub use context::{FluContext, PutTarget};
pub use error::RtError;
pub use fabric::{chunk_spans, LinkConfig, Reassembler};
pub use fault::{FaultPlan, FrameFate, NodeKill};
pub use node::{
    ByLevel, LoadAware, NodeRuntime, Placement, PlacementPolicy, RoundRobin, SingleNode,
};
pub use pool::{BytePool, PooledBuf};
pub use ring::{RingNotify, RingReceiver, RingSender};
pub use runtime::{
    ClusterRtConfig, ClusterRuntime, ClusterRuntimeBuilder, CrashReport, RecoveryConfig, ReqId,
    RtConfig, RtStats, Runtime, RuntimeBuilder,
};
pub use sched::NodeScheduler;
pub use sink::ShardedSink;
pub use trace::{
    diff, replay, Divergence, EventKind, TraceDecoder, TraceError, TraceEvent, TraceRecorder,
};
pub use transport::{worker_env, TcpCluster, WorkerEnv};
pub use wire::{Decoder, Frame, WireError};
