//! # dataflower-rt
//!
//! A **live, multi-threaded, multi-node implementation of the FLU/DLU
//! programming model** — the same execution model the simulated engine
//! reproduces, but with real threads, real bytes and real channels. It
//! demonstrates that the paper's programming model (Fig. 5a) and worker
//! topology (Fig. 4) are directly expressible:
//!
//! * function bodies are plain Rust closures receiving a [`FluContext`];
//! * `ctx.put(...)` hands data to the function's **DLU daemon thread**
//!   mid-function; transfers overlap the rest of the computation;
//! * downstream functions trigger on **data availability** — when the
//!   last input lands in the hosting node's data sink (a lock-striped
//!   [`ShardedSink`], so concurrent requests never contend on one
//!   node-wide mutex), not when a controller says so;
//! * a [`ClusterRuntime`] runs one [`NodeRuntime`] per simulated worker
//!   node; a [`Placement`] maps functions to nodes, and every
//!   inter-function transfer is classified through the paper's §7
//!   three-way pipe choice — direct socket under 16 KiB, node-local pipe
//!   when co-located, chunked streaming remote pipe (with §6.2
//!   checkpoint marks) across nodes;
//! * cross-node traffic rides an in-process fabric of per-link bounded
//!   channels with optional bandwidth/latency shaping ([`LinkConfig`]);
//! * bounded DLU queues exert genuine backpressure on over-producing
//!   functions (Fig. 6a);
//! * unconsumed sink entries passively expire via per-node janitors;
//! * with [`AutoscaleConfig`] enabled, per-node autoscalers sample each
//!   function's DLU backlog, convert it into Eq. 1 pressure-seconds, and
//!   elastically grow/shrink the FLU executor pools between configurable
//!   bounds (scale-out past the threshold, cool-down-guarded scale-in
//!   once drained) — the paper's pressure-aware scaling, §5.2.
//!
//! The workflow *definition* is shared with the simulator
//! ([`dataflower_workflow`]), so one definition drives both the
//! evaluation figures and real execution — single-node, co-located or
//! spread, by swapping the [`Placement`].
//!
//! See [`RuntimeBuilder`] (single node) and [`ClusterRuntimeBuilder`]
//! (multi-node) for complete runnable examples, and
//! `examples/multinode_live.rs` for the paper benchmarks on a three-node
//! topology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoscale;
mod bytes;
pub mod channel;
mod context;
mod error;
mod fabric;
mod node;
mod runtime;
mod sink;

pub use autoscale::{AutoscaleConfig, ScaleDirection, ScaleEvent, ScalePolicy};
pub use bytes::Bytes;
pub use context::{FluContext, PutTarget};
pub use error::RtError;
pub use fabric::{chunk_spans, LinkConfig, Reassembler};
pub use node::{NodeRuntime, Placement};
pub use runtime::{
    ClusterRtConfig, ClusterRuntime, ClusterRuntimeBuilder, ReqId, RtConfig, RtStats, Runtime,
    RuntimeBuilder,
};
pub use sink::ShardedSink;
