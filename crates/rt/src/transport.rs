//! Real TCP transport and worker-process cluster mode.
//!
//! The in-process fabric ships `NetMsg` frames between threads of one
//! process; this module promotes every directed link to a real
//! `std::net::TcpStream` speaking the versioned [`wire`](crate::wire)
//! frame format, and runs **one OS process per node**:
//!
//! * [`TcpCluster::launch`] (the *coordinator*) re-executes the current
//!   binary once per node with `DATAFLOWER_WORKER_*` environment
//!   variables set. Each worker binds a data listener on
//!   `127.0.0.1:0`, reports its port over a line-framed JSON control
//!   channel, and receives the full port map back — so no port is ever
//!   chosen statically.
//! * A worker embeds exactly one node of the cluster via
//!   `ClusterRuntimeBuilder::start_worker`; its DLU daemons enqueue
//!   outbound frames into per-directed-link queues drained by one
//!   *link agent* thread each (`link_agent`), which lazily dials the
//!   destination, writes a `Hello` preamble, and ships frames
//!   zero-copy (header buffer + [`Bytes`] payload view, no
//!   re-serialization of the payload).
//! * The §6.2 retention/ack protocol of the in-process runtime carries
//!   over unchanged, except acks become explicit `AckMark` /
//!   `AckComplete` wire frames flowing back over the reverse link.
//! * Every inbound data frame is appended to a per-worker checkpoint
//!   log **before** it is dispatched, so a `kill -9`'d worker restarted
//!   by [`TcpCluster::restart_worker`] replays its durable ingress,
//!   re-fires its functions idempotently, and the senders replay every
//!   un-acked transfer from the last acknowledged checkpoint mark when
//!   their reconnect succeeds — byte-identical outputs across a hard
//!   worker kill.
//!
//! The in-process fabric remains the default and the fast path; this
//! module is opt-in for callers that want real process isolation (see
//! `examples/socket_cluster.rs`).

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use dataflower::CheckpointSchedule;
use dataflower_workflow::{json, EdgeId, Endpoint, Workflow};

use crate::bytes::Bytes;
use crate::error::RtError;
use crate::fabric::{LinkConfig, LinkRetention, NetMsg, Reassembler, SHIPPER_BATCH};
use crate::node::Placement;
use crate::orchestrator::{activate_pool, fallback_relocate};
use crate::pool::{BytePool, DIRECT_SOCKET_POOL_BYTES};
use crate::ring::{ring, RingReceiver, RingSender};
use crate::runtime::{
    chaos_ingress, handle_net_msg, node_pressure_of, resolve_active, retention_of, stride,
    worker_transfer_base, ClusterRtConfig, ClusterRuntimeBuilder, Counters, CrashReport, Inner,
    ReqId, RtStats, WireSpec,
};
use crate::wire::{encode_into, encode_parts, frame_of, net_of, Decoder, Frame};

const ENV_NODE: &str = "DATAFLOWER_WORKER_NODE";
const ENV_EPOCH: &str = "DATAFLOWER_WORKER_EPOCH";
const ENV_CONTROL: &str = "DATAFLOWER_WORKER_CONTROL";
const ENV_DIR: &str = "DATAFLOWER_WORKER_DIR";
const ENV_TAG: &str = "DATAFLOWER_WORKER_TAG";

/// How long the coordinator waits for a freshly spawned worker to
/// connect and introduce itself on the control channel.
const HELLO_TIMEOUT: Duration = Duration::from_secs(30);

fn loopback(port: u16) -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], port))
}

fn jnum(v: &json::Value, key: &str) -> u64 {
    v.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0) as u64
}

/// Detects whether this process was spawned as a cluster worker.
///
/// [`TcpCluster::launch`] re-executes the current binary with the
/// `DATAFLOWER_WORKER_*` environment variables set; any binary that
/// wants to support worker-process mode calls this **first thing in
/// `main`** and, when it returns `Some`, rebuilds the identical
/// workflow/placement/config (selecting on [`WorkerEnv::tag`]) and
/// hands them to [`WorkerEnv::serve`], which never returns.
pub fn worker_env() -> Option<WorkerEnv> {
    let node = std::env::var(ENV_NODE).ok()?.parse().ok()?;
    let epoch = std::env::var(ENV_EPOCH).ok()?.parse().ok()?;
    let control_port = std::env::var(ENV_CONTROL).ok()?.parse().ok()?;
    let dir = PathBuf::from(std::env::var(ENV_DIR).ok()?);
    let tag = std::env::var(ENV_TAG).unwrap_or_default();
    Some(WorkerEnv {
        node,
        epoch,
        control_port,
        dir,
        tag,
    })
}

/// The identity a worker process was spawned with (see [`worker_env`]).
#[derive(Debug)]
pub struct WorkerEnv {
    node: usize,
    epoch: u32,
    control_port: u16,
    dir: PathBuf,
    tag: String,
}

impl WorkerEnv {
    /// The node index this process embodies.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The incarnation counter: 0 for the first launch, bumped by every
    /// [`TcpCluster::restart_worker`]. Namespaces transfer ids so a
    /// restarted worker can never collide with its previous life.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The opaque tag passed to [`TcpCluster::launch`] — typically a
    /// serialized description of *which* workflow to rebuild, since the
    /// worker must reconstruct the exact same topology as the
    /// coordinator from scratch.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// Runs this process as one cluster node until the coordinator
    /// shuts it down (never returns). `builder` must describe the
    /// *identical* workflow, placement and config the coordinator used
    /// — both sides derive routing from them independently.
    ///
    /// Startup handshake: start the local node's threads, bind the data
    /// listener on an ephemeral port, report `{node, epoch, port}` over
    /// the control channel, receive the full `{ports: [...]}` peer
    /// table back (workers in node order, the coordinator's data port
    /// last), then replay the checkpoint log of any previous
    /// incarnation and start accepting peer connections.
    ///
    /// # Panics
    ///
    /// Panics if the runtime cannot start or the control channel fails
    /// mid-handshake — a worker without a coordinator has nothing
    /// sensible to do but die (the coordinator observes the EOF).
    pub fn serve(self, builder: ClusterRuntimeBuilder) -> ! {
        let spec = WireSpec {
            local: self.node,
            epoch: self.epoch,
        };
        let (rt, mut out_rx) = builder.start_worker(spec).expect("start worker runtime");
        let inner = Arc::clone(&rt.inner);
        let endpoints = stride(&inner);

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker data listener");
        let data_port = listener.local_addr().expect("listener addr").port();

        let control =
            TcpStream::connect(loopback(self.control_port)).expect("connect control channel");
        // The control channel is a request/response RPC line: without
        // nodelay, Nagle + delayed acks cost ~40 ms per round trip,
        // which is slower than the data plane it probes.
        let _ = control.set_nodelay(true);
        let mut control_w = control.try_clone().expect("clone control stream");
        let mut control_r = BufReader::new(control);
        writeln!(
            control_w,
            "{{\"node\":{},\"epoch\":{},\"port\":{}}}",
            self.node, self.epoch, data_port
        )
        .expect("send hello");
        let mut line = String::new();
        control_r.read_line(&mut line).expect("read peer table");
        let peers = json::parse(&line).expect("parse peer table");
        let ports: Vec<u16> = peers
            .get("ports")
            .and_then(|p| p.as_arr())
            .expect("peer table ports")
            .iter()
            .filter_map(|x| x.as_f64())
            .map(|f| f as u16)
            .collect();
        assert_eq!(ports.len(), endpoints, "peer table covers every endpoint");
        let addrs: Vec<Arc<AddrCell>> = ports
            .iter()
            .map(|&p| Arc::new(AddrCell::new(Some(loopback(p)))))
            .collect();

        // One shipping agent per outbound directed link.
        let side = Side::Worker(Arc::clone(&inner));
        for (dst, rx) in out_rx.iter_mut().enumerate() {
            if let Some(rx) = rx.take() {
                let side = side.clone();
                let addr = Arc::clone(&addrs[dst]);
                let (local, epoch) = (self.node, self.epoch);
                thread::spawn(move || link_agent(side, local, dst, epoch, rx, addr));
            }
        }

        // Replay the durable ingress of any previous incarnation before
        // accepting new frames: re-fired functions are idempotent (the
        // consumed-entry sentinel blocks double triggers downstream) and
        // the re-emitted acks drain through the agents just spawned.
        let log_path = self.dir.join(format!("node{}.log", self.node));
        let (log, restored) = CkptLog::open(&log_path).expect("open checkpoint log");
        let log = Arc::new(log);
        for (src, frame) in restored {
            if let Some(msg) = net_of(frame) {
                handle_net_msg(&inner, src as usize, self.node, msg);
            }
        }

        if inner.cfg.recovery.enabled {
            let side = side.clone();
            let out = inner
                .wire
                .as_ref()
                .expect("worker runtime is wire mode")
                .out
                .clone();
            let local = self.node;
            thread::spawn(move || retransmit_pump(side, local, out));
        }

        {
            let inner = Arc::clone(&inner);
            let log = Arc::clone(&log);
            let local = self.node;
            thread::spawn(move || {
                for conn in listener.incoming() {
                    let Ok(stream) = conn else { continue };
                    let inner = Arc::clone(&inner);
                    let log = Arc::clone(&log);
                    thread::spawn(move || worker_reader(inner, log, stream, local));
                }
            });
        }

        // Control request/reply loop — the coordinator serializes
        // requests per worker, so one reply per line read suffices.
        let _rt = rt; // keep the node's threads alive for process life
        let interval = inner.cfg.checkpoint_interval_bytes;
        loop {
            line.clear();
            if control_r.read_line(&mut line).unwrap_or(0) == 0 {
                // Coordinator went away: nothing left to serve.
                std::process::exit(0);
            }
            let Ok(v) = json::parse(&line) else { continue };
            let reply = match v.get("op").and_then(|o| o.as_str()).unwrap_or("") {
                "peer_update" => {
                    let peer = jnum(&v, "node") as usize;
                    let port = jnum(&v, "port") as u16;
                    if let Some(cell) = addrs.get(peer) {
                        cell.set(loopback(port));
                    }
                    "{\"ok\":true}".to_string()
                }
                "ping" => "{\"ok\":true}".to_string(),
                "pressure" => {
                    format!("{{\"pressure\":{}}}", node_pressure_of(&inner, self.node))
                }
                "relocate" => {
                    let dead = jnum(&v, "dead") as usize;
                    let assign = parse_assign(&v);
                    {
                        let mut p = inner.placement.write().expect("placement lock poisoned");
                        for (name, to) in &assign {
                            p.reassign(name.clone(), *to);
                        }
                    }
                    if let Some(state) = inner.nodes.get(dead) {
                        state.lost.store(true, Ordering::SeqCst);
                        state.down.store(true, Ordering::SeqCst);
                    }
                    let mut activated = 0usize;
                    for (name, to) in &assign {
                        if *to == self.node {
                            activate_pool(&inner, name, *to);
                            activated += 1;
                        }
                    }
                    inner
                        .counters
                        .relocated_fns
                        .fetch_add(activated as u64, Ordering::Relaxed);
                    format!("{{\"ok\":true,\"activated\":{activated}}}")
                }
                "resend" => {
                    let dead = jnum(&v, "dead") as usize;
                    let n = resend_toward(&inner, self.node, dead);
                    format!("{{\"ok\":true,\"transfers\":{n}}}")
                }
                "probe" => {
                    let (inflight, durable) =
                        inner.nodes[self.node]
                            .sink
                            .fold((0usize, 0u64), |(i, mut d), _req, rs| {
                                for r in rs.partial.values() {
                                    d += ((r.contiguous_prefix() / interval) * interval) as u64;
                                }
                                (i + rs.partial.len(), d)
                            });
                    format!("{{\"inflight\":{inflight},\"durable\":{durable}}}")
                }
                "retained" => {
                    let dst = jnum(&v, "dst") as usize;
                    let margin = jnum(&v, "margin") as usize;
                    let ok = inner.cfg.recovery.enabled
                        && retention_of(&inner, self.node, dst)
                            .lock()
                            .expect("retention lock poisoned")
                            .has_acked_partial(margin);
                    format!("{{\"ok\":{ok}}}")
                }
                "stats" => {
                    let vals = inner
                        .counters
                        .snapshot()
                        .to_vec()
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    format!("{{\"stats\":[{vals}]}}")
                }
                "purge" => {
                    let req = jnum(&v, "req");
                    if let Some(w) = &inner.wire {
                        w.purged.lock().expect("purge set poisoned").insert(req);
                    }
                    inner.nodes[self.node].sink.remove(req);
                    // Retain-acked mode (orchestrator) parks completed
                    // transfers in retention until their request is
                    // collected — this is the collection point.
                    if inner.cfg.recovery.enabled {
                        for dst in 0..endpoints {
                            if dst == self.node {
                                continue;
                            }
                            retention_of(&inner, self.node, dst)
                                .lock()
                                .expect("retention lock poisoned")
                                .purge_req(req);
                        }
                    }
                    "{\"ok\":true}".to_string()
                }
                "shutdown" => {
                    let _ = writeln!(control_w, "{{\"ok\":true}}");
                    let _ = control_w.flush();
                    std::process::exit(0);
                }
                _ => "{\"ok\":false}".to_string(),
            };
            if writeln!(control_w, "{reply}").is_err() {
                std::process::exit(0);
            }
        }
    }
}

/// Decodes a `relocate` op's `assign` object (`{"fn_name": node, ...}`)
/// into `(function, node)` pairs.
fn parse_assign(v: &json::Value) -> Vec<(String, usize)> {
    match v.get("assign") {
        Some(json::Value::Obj(pairs)) => pairs
            .iter()
            .filter_map(|(name, node)| node.as_f64().map(|n| (name.clone(), n as usize)))
            .collect(),
        _ => Vec::new(),
    }
}

/// Worker half of a relocation's data recovery: every transfer this
/// process still retains **toward** the `dead` node is re-homed onto the
/// link toward its target function's *current* node (per the already
/// repatched live placement) and re-sent **from byte 0** — the new host
/// holds none of the dead node's bytes (its sink and checkpoint log died
/// with the process), so the acked-mark resume of same-node restarts
/// does not apply; receivers dedup re-fired duplicates by edge.
/// Returns the number of transfers re-homed.
fn resend_toward(inner: &Arc<Inner>, local: usize, dead: usize) -> usize {
    if !inner.cfg.recovery.enabled || local == dead {
        return 0;
    }
    let wf = &inner.workflow;
    let moved = retention_of(inner, local, dead)
        .lock()
        .expect("retention lock poisoned")
        .extract(|_| true);
    if moved.is_empty() {
        return 0;
    }
    let wire = inner.wire.as_ref().expect("worker runtime is wire mode");
    let mut by_dst: HashMap<usize, Vec<u64>> = HashMap::new();
    let mut count = 0usize;
    for (id, t) in moved {
        let dst = match wf.edge(t.edge).target {
            Endpoint::Function(tf) => inner.node_of(&wf.function(tf).name),
            Endpoint::Client => wire.endpoints - 1,
        };
        if dst == dead {
            // Nobody inherited the target yet; park the entry back for a
            // later sweep.
            retention_of(inner, local, dead)
                .lock()
                .expect("retention lock poisoned")
                .adopt(id, t, false);
            continue;
        }
        retention_of(inner, local, dst)
            .lock()
            .expect("retention lock poisoned")
            .adopt(id, t, true);
        by_dst.entry(dst).or_default().push(id);
        count += 1;
    }
    for (dst, ids) in by_dst {
        let summary = retention_of(inner, local, dst)
            .lock()
            .expect("retention lock poisoned")
            .replay_ids(Instant::now(), &ids);
        inner
            .counters
            .recovered_transfers
            .fetch_add(summary.transfers, Ordering::Relaxed);
        for msg in summary.frames {
            inner
                .counters
                .replayed_frames
                .fetch_add(1, Ordering::Relaxed);
            inner
                .counters
                .replayed_bytes
                .fetch_add(msg.wire_bytes() as u64, Ordering::Relaxed);
            if dst == local {
                // The function's new home is this very process: there is
                // no wire link to self, so ingest the replayed frame
                // directly (acks apply to the local self-link window).
                handle_net_msg(inner, local, local, msg);
                continue;
            }
            let Some(tx) = &wire.out[dst] else { continue };
            if matches!(msg, NetMsg::Whole { .. } | NetMsg::Chunk { .. }) {
                inner.link_depth[local * stride(inner) + dst].fetch_add(1, Ordering::Relaxed);
            }
            let _ = tx.send(msg);
        }
    }
    count
}

/// Where a peer endpoint currently listens; rewritten by `peer_update`
/// when a worker restarts on a fresh ephemeral port. Agents re-read it
/// on every dial attempt.
struct AddrCell(Mutex<Option<SocketAddr>>);

impl AddrCell {
    fn new(addr: Option<SocketAddr>) -> AddrCell {
        AddrCell(Mutex::new(addr))
    }

    fn get(&self) -> Option<SocketAddr> {
        *self.0.lock().expect("addr cell poisoned")
    }

    fn set(&self, addr: SocketAddr) {
        *self.0.lock().expect("addr cell poisoned") = Some(addr);
    }
}

/// Which process a link agent / retransmit pump runs in: a worker
/// (retention and counters live in the runtime's [`Inner`]) or the
/// coordinator (which has no runtime — its client-side retention and
/// counters live in [`CoordShared`]).
#[derive(Clone)]
enum Side {
    Worker(Arc<Inner>),
    Coord(Arc<CoordShared>),
}

impl Side {
    fn recovery_enabled(&self) -> bool {
        match self {
            Side::Worker(i) => i.cfg.recovery.enabled,
            Side::Coord(c) => c.recovery_enabled,
        }
    }

    fn retransmit_timeout(&self) -> Duration {
        match self {
            Side::Worker(i) => i.cfg.recovery.retransmit_timeout,
            Side::Coord(c) => c.retransmit_timeout,
        }
    }

    fn link(&self) -> &LinkConfig {
        match self {
            Side::Worker(i) => &i.cfg.link,
            Side::Coord(c) => &c.link,
        }
    }

    fn shutting_down(&self) -> bool {
        match self {
            Side::Worker(i) => i.shutdown.load(Ordering::Relaxed),
            Side::Coord(c) => c.shutdown.load(Ordering::Relaxed),
        }
    }

    fn counters(&self) -> &Counters {
        match self {
            Side::Worker(i) => &i.counters,
            Side::Coord(c) => &c.counters,
        }
    }

    /// Runs `f` on the retention window of the directed link
    /// `src → dst`. Callers must gate on [`Side::recovery_enabled`].
    fn with_retention<R>(
        &self,
        src: usize,
        dst: usize,
        f: impl FnOnce(&mut LinkRetention) -> R,
    ) -> R {
        match self {
            Side::Worker(i) => f(&mut retention_of(i, src, dst)
                .lock()
                .expect("retention lock poisoned")),
            Side::Coord(c) => f(&mut c.retention[dst].lock().expect("retention lock poisoned")),
        }
    }

    /// Adjusts the backpressure gauge of link `src → dst` (workers
    /// only; the coordinator has no gauge).
    fn depth_add(&self, src: usize, dst: usize, delta: isize) {
        if let Side::Worker(i) = self {
            let gauge = &i.link_depth[src * stride(i) + dst];
            if delta >= 0 {
                gauge.fetch_add(delta as usize, Ordering::Relaxed);
            } else {
                gauge.fetch_sub((-delta) as usize, Ordering::Relaxed);
            }
        }
    }
}

/// Writes one frame to the stream: the fixed-size header buffer, then
/// the payload as a second `write_all` straight from the zero-copy
/// [`Bytes`] view — the payload bytes are never re-serialized.
fn write_frame(stream: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    let (head, payload) = encode_parts(frame);
    stream.write_all(&head)?;
    if let Some(p) = payload {
        stream.write_all(&p)?;
    }
    Ok(())
}

/// The shipping thread of one outbound directed link `local → dst`:
/// drains the link's bounded queue, lazily dials the destination's
/// current address (re-read on every attempt, so a restarted peer's new
/// port is picked up), writes a `Hello` preamble per connection, and
/// applies the same latency/bandwidth shaping as the in-process
/// shipper. A write failure marks the connection dead and retries the
/// same frame after redialing; on every *re*connection with recovery
/// enabled, the link replays all retained (un-acked) transfers from
/// their last acknowledged checkpoint mark before resuming — the §6.2
/// restart-and-replay path over real sockets.
fn link_agent(
    side: Side,
    local: usize,
    dst: usize,
    epoch: u32,
    rx: RingReceiver<NetMsg>,
    addr: Arc<AddrCell>,
) {
    let mut conn: Option<TcpStream> = None;
    let mut had_session = false;
    let mut backlog: VecDeque<NetMsg> = VecDeque::new();
    let pool = BytePool::default();
    'frames: loop {
        let msg = match backlog.pop_front() {
            Some(m) => m,
            None => match rx.recv() {
                Ok(m) => {
                    if matches!(m, NetMsg::Whole { .. } | NetMsg::Chunk { .. }) {
                        side.depth_add(local, dst, -1);
                    }
                    m
                }
                Err(_) => break,
            },
        };
        loop {
            if side.shutting_down() {
                // Teardown: keep draining so senders never block, but
                // stop shipping.
                continue 'frames;
            }
            if conn.is_none() {
                let Some(peer) = addr.get() else {
                    thread::sleep(Duration::from_millis(2));
                    continue;
                };
                let Ok(mut s) = TcpStream::connect(peer) else {
                    thread::sleep(Duration::from_millis(5));
                    continue;
                };
                let _ = s.set_nodelay(true);
                if write_frame(
                    &mut s,
                    &Frame::Hello {
                        node: local as u32,
                        epoch,
                    },
                )
                .is_err()
                {
                    thread::sleep(Duration::from_millis(5));
                    continue;
                }
                let reconnect = had_session;
                had_session = true;
                conn = Some(s);
                if reconnect && side.recovery_enabled() {
                    // The peer may have restarted from scratch: replay
                    // every incomplete transfer ahead of the frame in
                    // hand (duplicates are idempotent at the receiver).
                    let summary =
                        side.with_retention(local, dst, |r| r.replay(Instant::now(), None));
                    if summary.transfers > 0 {
                        side.counters()
                            .recovered_transfers
                            .fetch_add(summary.transfers, Ordering::Relaxed);
                        side.counters()
                            .resumed_from_mark
                            .fetch_add(summary.resumed_from_mark_bytes, Ordering::Relaxed);
                        for f in summary.frames {
                            backlog.push_back(f);
                        }
                        backlog.push_back(msg);
                        continue 'frames;
                    }
                }
            }
            // Shaped transfer time, mirroring the in-process shipper:
            // latency once per transfer plus serialization delay.
            let link = side.link();
            if msg.starts_transfer() && link.latency > Duration::ZERO {
                thread::sleep(link.latency);
            }
            if let Some(bw) = link.bandwidth_bytes_per_sec {
                if bw > 0.0 {
                    thread::sleep(Duration::from_secs_f64(msg.wire_bytes() as f64 / bw));
                }
            }
            let stream = conn.as_mut().expect("connected above");
            let shaped = link.latency > Duration::ZERO || link.bandwidth_bytes_per_sec.is_some();
            if shaped {
                // Shaping is per frame, so ship per frame.
                match write_frame(stream, &frame_of(&msg)) {
                    Ok(()) => continue 'frames,
                    Err(_) => conn = None, // redial, retry the same frame
                }
                continue;
            }
            // Unshaped link: gather the burst already queued behind this
            // frame and ship it as one write. Small frames (the sub-16
            // KiB direct-socket class) and ack frames encode into one
            // pooled staging buffer; a big payload flushes the staging
            // run and goes out as its own zero-copy write.
            let mut batch: Vec<NetMsg> = Vec::with_capacity(SHIPPER_BATCH);
            batch.push(msg);
            while batch.len() < SHIPPER_BATCH {
                if let Some(m) = backlog.pop_front() {
                    batch.push(m);
                    continue;
                }
                let mut pulled = Vec::new();
                match rx.try_drain(&mut pulled, SHIPPER_BATCH - batch.len()) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        for m in pulled {
                            if matches!(m, NetMsg::Whole { .. } | NetMsg::Chunk { .. }) {
                                side.depth_add(local, dst, -1);
                            }
                            batch.push(m);
                        }
                    }
                }
            }
            let mut stage = pool.get();
            let mut failed = false;
            for m in &batch {
                if m.wire_bytes() <= DIRECT_SOCKET_POOL_BYTES {
                    encode_into(&frame_of(m), &mut stage);
                    continue;
                }
                if !stage.is_empty() {
                    if stream.write_all(&stage).is_err() {
                        failed = true;
                        break;
                    }
                    stage.clear();
                }
                if write_frame(stream, &frame_of(m)).is_err() {
                    failed = true;
                    break;
                }
            }
            if !failed && !stage.is_empty() && stream.write_all(&stage).is_err() {
                failed = true;
            }
            if failed {
                // Redial and retry the whole burst; receivers dedup
                // any prefix that did land (same idempotence that
                // absorbs recovery replays).
                conn = None;
                for m in batch.into_iter().rev() {
                    backlog.push_front(m);
                }
            }
            continue 'frames;
        }
    }
}

/// The per-process retransmit sweep (the wire-mode replacement of the
/// in-process recovery daemon): periodically replays transfers whose
/// acks have gone stale for longer than the recovery timeout, feeding
/// the frames back through the link agents. Heals frames lost to
/// chaos drops, kernel buffers of a killed peer, or torn connections.
fn retransmit_pump(side: Side, local: usize, out: Vec<Option<RingSender<NetMsg>>>) {
    let timeout = side.retransmit_timeout();
    let tick = (timeout / 2)
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(25));
    while !side.shutting_down() {
        thread::sleep(tick);
        for (dst, tx) in out.iter().enumerate() {
            let Some(tx) = tx else { continue };
            let summary =
                side.with_retention(local, dst, |r| r.replay(Instant::now(), Some(timeout)));
            if summary.transfers == 0 {
                continue;
            }
            side.counters()
                .retransmitted
                .fetch_add(summary.transfers, Ordering::Relaxed);
            for msg in summary.frames {
                side.counters()
                    .replayed_frames
                    .fetch_add(1, Ordering::Relaxed);
                side.counters()
                    .replayed_bytes
                    .fetch_add(msg.wire_bytes() as u64, Ordering::Relaxed);
                side.depth_add(local, dst, 1);
                if tx.send(msg).is_err() {
                    return;
                }
            }
        }
    }
}

/// The durable ingress log of one worker: every inbound data frame is
/// appended (`[src u32][len u32][encoded frame]`, little-endian)
/// *before* it is dispatched, so anything the worker ever acked is
/// replayable by the next incarnation. Append-only, never fsynced —
/// the page cache survives a `kill -9` of the process, which is the
/// fault model here (machine loss is out of scope).
struct CkptLog {
    file: Mutex<std::fs::File>,
    /// Record-staging buffers: appends run per inbound data frame, so
    /// the scratch allocation is pooled instead of per-record.
    pool: BytePool,
}

impl CkptLog {
    /// Opens (creating if absent) the log at `path`, first decoding any
    /// records a previous incarnation wrote. A torn trailing record
    /// (crash mid-append) is ignored.
    fn open(path: &Path) -> io::Result<(CkptLog, Vec<(u32, Frame)>)> {
        let mut restored = Vec::new();
        if let Ok(bytes) = std::fs::read(path) {
            let mut pos = 0usize;
            while bytes.len() - pos >= 8 {
                let src = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
                let len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"))
                    as usize;
                pos += 8;
                if bytes.len() - pos < len {
                    break;
                }
                let mut dec = Decoder::new();
                dec.feed(&bytes[pos..pos + len]);
                match dec.next_frame() {
                    Ok(Some(frame)) => restored.push((src, frame)),
                    _ => break,
                }
                pos += len;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok((
            CkptLog {
                file: Mutex::new(file),
                pool: BytePool::default(),
            },
            restored,
        ))
    }

    fn append(&self, src: u32, frame: &Frame) {
        let (head, payload) = encode_parts(frame);
        let len = head.len() + payload.as_ref().map_or(0, |p| p.len());
        let mut rec = self.pool.get();
        rec.reserve(8 + len);
        rec.extend_from_slice(&src.to_le_bytes());
        rec.extend_from_slice(&(len as u32).to_le_bytes());
        rec.extend_from_slice(&head);
        if let Some(p) = &payload {
            rec.extend_from_slice(p);
        }
        let mut file = self.file.lock().expect("checkpoint log poisoned");
        let _ = file.write_all(&rec);
    }
}

/// One inbound connection at a worker: the first frame must be the
/// peer's `Hello` (identifying the source endpoint); data frames are
/// logged, then run through fault injection into the normal ingress;
/// ack frames apply directly to local retention (acks bypass chaos —
/// a lost ack is healed by the retransmit pump anyway). A decode error
/// drops the connection; retention replays whatever was in flight.
fn worker_reader(inner: Arc<Inner>, log: Arc<CkptLog>, mut stream: TcpStream, local: usize) {
    let _ = stream.set_nodelay(true);
    let mut dec = Decoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut src: Option<usize> = None;
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        dec.feed(&buf[..n]);
        loop {
            match dec.next_frame() {
                Ok(Some(Frame::Hello { node, .. })) => src = Some(node as usize),
                Ok(Some(frame)) => {
                    let Some(src) = src else { return };
                    let data = matches!(frame, Frame::Whole { .. } | Frame::Chunk { .. });
                    if data {
                        log.append(src as u32, &frame);
                    }
                    let Some(msg) = net_of(frame) else { continue };
                    if data {
                        chaos_ingress(&inner, src, local, msg);
                    } else {
                        handle_net_msg(&inner, src, local, msg);
                    }
                }
                Ok(None) => break,
                Err(_) => return,
            }
        }
    }
}

/// Client-side state of one in-flight request at the coordinator.
struct CoordReq {
    outputs_missing: usize,
    outputs: Vec<(String, Bytes)>,
    errors: Vec<String>,
    /// Client-output edges already collected — a restarted worker's log
    /// replay re-fires its functions and re-ships outputs, so arrival
    /// must be deduplicated per edge for byte-identical results.
    delivered: HashSet<EdgeId>,
    partial: HashMap<(EdgeId, u64), Reassembler>,
    finished: HashSet<(EdgeId, u64)>,
}

/// State shared between the coordinator's agents, readers and API —
/// the coordinator runs no `ClusterRuntime`, so its client-side §6.2
/// retention and counters live here.
struct CoordShared {
    workflow: Arc<Workflow>,
    link: LinkConfig,
    recovery_enabled: bool,
    retransmit_timeout: Duration,
    interval: usize,
    counters: Counters,
    shutdown: AtomicBool,
    /// Retention of the directed link `coordinator → worker k`.
    retention: Vec<Mutex<LinkRetention>>,
    reqs: Mutex<HashMap<u64, CoordReq>>,
    done: Condvar,
}

/// What one chunk advanced a client-output transfer to (the
/// coordinator-side mirror of the runtime's ingress progress).
enum OutputProgress {
    Orphan,
    Complete(Bytes),
    Prefix(usize),
}

fn coord_ingress(shared: &CoordShared, out: &[RingSender<NetMsg>], src: usize, msg: NetMsg) {
    match msg {
        NetMsg::AckMark { transfer, mark } => {
            if shared.recovery_enabled {
                let advanced = shared.retention[src]
                    .lock()
                    .expect("retention lock poisoned")
                    .ack_mark(transfer, mark);
                if let Some(prev) = advanced {
                    let cp = CheckpointSchedule::new(shared.interval as f64);
                    shared.counters.acked_marks.fetch_add(
                        cp.marks_crossed(prev as f64, mark as f64),
                        Ordering::Relaxed,
                    );
                }
            }
        }
        NetMsg::AckComplete { transfer } => {
            if shared.recovery_enabled {
                shared.retention[src]
                    .lock()
                    .expect("retention lock poisoned")
                    .ack_complete(transfer);
            }
        }
        NetMsg::Whole {
            req,
            edge,
            transfer,
            payload,
            ..
        } => {
            finish_output(shared, req, edge, payload);
            ack_to(shared, out, src, NetMsg::AckComplete { transfer });
        }
        NetMsg::Chunk {
            req,
            edge,
            transfer,
            offset,
            total,
            bytes,
            ..
        } => {
            let progress = {
                let mut reqs = shared.reqs.lock().expect("coordinator lock poisoned");
                match reqs.get_mut(&req) {
                    // Collected or never invoked: ack it away so the
                    // sender's retention cannot leak.
                    None => OutputProgress::Orphan,
                    Some(rs) => {
                        if rs.finished.contains(&(edge, transfer)) {
                            OutputProgress::Orphan
                        } else {
                            let r = rs
                                .partial
                                .entry((edge, transfer))
                                .or_insert_with(|| Reassembler::new(total));
                            r.write_bytes(offset, bytes);
                            if r.complete() {
                                rs.finished.insert((edge, transfer));
                                match rs.partial.remove(&(edge, transfer)) {
                                    Some(r) => OutputProgress::Complete(r.into_bytes()),
                                    None => OutputProgress::Orphan,
                                }
                            } else {
                                OutputProgress::Prefix(r.contiguous_prefix())
                            }
                        }
                    }
                }
            };
            match progress {
                OutputProgress::Orphan => {
                    ack_to(shared, out, src, NetMsg::AckComplete { transfer })
                }
                OutputProgress::Complete(payload) => {
                    finish_output(shared, req, edge, payload);
                    ack_to(shared, out, src, NetMsg::AckComplete { transfer });
                }
                OutputProgress::Prefix(prefix) => {
                    let mark = (prefix / shared.interval) * shared.interval;
                    if mark > 0 {
                        ack_to(shared, out, src, NetMsg::AckMark { transfer, mark });
                    }
                }
            }
        }
    }
}

fn ack_to(shared: &CoordShared, out: &[RingSender<NetMsg>], src: usize, ack: NetMsg) {
    if shared.recovery_enabled {
        if let Some(tx) = out.get(src) {
            let _ = tx.send(ack);
        }
    }
}

fn finish_output(shared: &CoordShared, req: u64, edge: EdgeId, payload: Bytes) {
    let mut reqs = shared.reqs.lock().expect("coordinator lock poisoned");
    let Some(rs) = reqs.get_mut(&req) else { return };
    if !rs.delivered.insert(edge) {
        return; // duplicate after a worker's log replay
    }
    let name = shared.workflow.edge(edge).data_name.clone();
    rs.outputs.push((name, payload));
    rs.outputs_missing = rs.outputs_missing.saturating_sub(1);
    if rs.outputs_missing == 0 {
        shared.done.notify_all();
    }
}

fn coord_reader(shared: Arc<CoordShared>, out: Vec<RingSender<NetMsg>>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut dec = Decoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut src: Option<usize> = None;
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        dec.feed(&buf[..n]);
        loop {
            match dec.next_frame() {
                Ok(Some(Frame::Hello { node, .. })) => src = Some(node as usize),
                Ok(Some(frame)) => {
                    let Some(src) = src else { return };
                    if let Some(msg) = net_of(frame) {
                        coord_ingress(&shared, &out, src, msg);
                    }
                }
                Ok(None) => break,
                Err(_) => return,
            }
        }
    }
}

/// A worker process as the coordinator tracks it.
struct WorkerSlot {
    child: Option<Child>,
    ctrl_w: TcpStream,
    ctrl_r: BufReader<TcpStream>,
    port: u16,
    epoch: u32,
    alive: bool,
}

/// The coordinator's control-plane state, shared with the heartbeat
/// thread (wire-mode ε-CON): the worker control channels, the **live**
/// placement (repatched by relocation — the coordinator-side routing
/// authority for client inputs), per-node loss flags and the outbound
/// data queues.
struct CoordCtl {
    workflow: Arc<Workflow>,
    placement: RwLock<Placement>,
    shared: Arc<CoordShared>,
    workers: Vec<Mutex<WorkerSlot>>,
    /// Nodes declared permanently lost (relocated away, never pinged or
    /// restarted again). Swap-guarded so relocation runs exactly once.
    lost: Vec<AtomicBool>,
    /// Senders into the per-worker link-agent rings. Behind a mutex so
    /// shutdown can drop them (agent `recv` disconnect is the exit
    /// signal).
    out: Mutex<Vec<RingSender<NetMsg>>>,
    heartbeat_interval: Duration,
    miss_threshold: u32,
}

impl CoordCtl {
    /// One serialized request/reply on a worker's control channel.
    /// Returns `None` (and marks the worker dead) on any I/O failure.
    fn rpc(&self, node: usize, line: &str) -> Option<json::Value> {
        let mut slot = self.workers[node].lock().expect("worker slot poisoned");
        if !slot.alive {
            return None;
        }
        if writeln!(slot.ctrl_w, "{line}").is_err() {
            slot.alive = false;
            return None;
        }
        let mut resp = String::new();
        match slot.ctrl_r.read_line(&mut resp) {
            Ok(n) if n > 0 => json::parse(&resp).ok(),
            _ => {
                slot.alive = false;
                None
            }
        }
    }
}

/// The coordinator's heartbeat loop (wire mode): pings every non-lost
/// worker over its control channel once per interval; after the
/// configured number of consecutive failures the worker is declared
/// permanently lost and its functions are relocated to the survivors.
/// A slow worker is never a false positive — the control channel is
/// served by a dedicated loop that answers pings regardless of
/// data-plane load, so only a dead process (or torn socket) misses.
fn coord_heartbeat(ctl: Arc<CoordCtl>) {
    let mut misses = vec![0u32; ctl.workers.len()];
    loop {
        thread::sleep(ctl.heartbeat_interval);
        if ctl.shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        for (k, miss) in misses.iter_mut().enumerate() {
            if ctl.lost[k].load(Ordering::SeqCst) {
                continue;
            }
            match ctl.rpc(k, "{\"op\":\"ping\"}") {
                Some(_) => {
                    *miss = 0;
                    ctl.shared
                        .counters
                        .heartbeats
                        .fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    *miss += 1;
                    ctl.shared
                        .counters
                        .heartbeat_misses
                        .fetch_add(1, Ordering::Relaxed);
                    if *miss >= ctl.miss_threshold {
                        *miss = 0;
                        coord_relocate(&ctl, k);
                    }
                }
            }
        }
    }
}

/// Wire-mode node-loss relocation, coordinated in three phases so no
/// survivor ever routes a relocated frame toward the dead link:
///
/// 1. gather survivor pressure, compute the new assignment
///    (least-pressured survivor per function), repatch the
///    coordinator's placement and broadcast `relocate` — every survivor
///    repatches its own placement and the new hosts activate fresh
///    FLU/DLU pools;
/// 2. broadcast `resend` — every survivor re-homes its retained
///    transfers that pointed at the dead node and re-sends them from
///    byte 0 (the dead node's reassembly state died with it);
/// 3. the coordinator re-sends its own retained client inputs the same
///    way.
///
/// Exactly-once via the `lost` swap-guard; a second kill of the same
/// node (or a kill with no survivors) is a no-op.
fn coord_relocate(ctl: &Arc<CoordCtl>, dead: usize) {
    let live: Vec<usize> = (0..ctl.workers.len())
        .filter(|k| *k != dead && !ctl.lost[*k].load(Ordering::SeqCst))
        .collect();
    if live.is_empty() {
        return;
    }
    if ctl.lost[dead].swap(true, Ordering::SeqCst) {
        return;
    }
    ctl.shared
        .counters
        .node_losses
        .fetch_add(1, Ordering::Relaxed);
    let mut pressure = vec![0.0f64; ctl.workers.len()];
    for &k in &live {
        if let Some(v) = ctl.rpc(k, "{\"op\":\"pressure\"}") {
            pressure[k] = v.get("pressure").and_then(|x| x.as_f64()).unwrap_or(0.0);
        }
    }
    let moves: Vec<(String, usize)> = {
        let p = ctl.placement.read().expect("placement lock poisoned");
        ctl.workflow
            .function_ids()
            .filter_map(|f| {
                let name = &ctl.workflow.function(f).name;
                (p.node_of(name) == dead)
                    .then(|| (name.clone(), fallback_relocate(&live, &pressure)))
            })
            .collect()
    };
    {
        let mut p = ctl.placement.write().expect("placement lock poisoned");
        for (name, to) in &moves {
            p.reassign(name.clone(), *to);
        }
    }
    let assign = moves
        .iter()
        .map(|(n, t)| format!("\"{n}\":{t}"))
        .collect::<Vec<_>>()
        .join(",");
    let relocate = format!("{{\"op\":\"relocate\",\"dead\":{dead},\"assign\":{{{assign}}}}}");
    for &k in &live {
        let _ = ctl.rpc(k, &relocate);
    }
    let resend = format!("{{\"op\":\"resend\",\"dead\":{dead}}}");
    for &k in &live {
        let _ = ctl.rpc(k, &resend);
    }
    coord_resend(ctl, dead);
}

/// Phase 3 of [`coord_relocate`]: the coordinator's retained client
/// inputs toward the dead node are re-homed per the repatched placement
/// and re-sent whole (the workers' counterpart is `resend_toward`).
fn coord_resend(ctl: &Arc<CoordCtl>, dead: usize) {
    let shared = &ctl.shared;
    if !shared.recovery_enabled {
        return;
    }
    let moved = shared.retention[dead]
        .lock()
        .expect("retention lock poisoned")
        .extract(|_| true);
    if moved.is_empty() {
        return;
    }
    let mut by_dst: HashMap<usize, Vec<u64>> = HashMap::new();
    {
        let p = ctl.placement.read().expect("placement lock poisoned");
        for (id, t) in moved {
            let dst = match ctl.workflow.edge(t.edge).target {
                Endpoint::Function(tf) => p.node_of(&ctl.workflow.function(tf).name),
                Endpoint::Client => continue,
            };
            if dst == dead {
                shared.retention[dead]
                    .lock()
                    .expect("retention lock poisoned")
                    .adopt(id, t, false);
                continue;
            }
            shared.retention[dst]
                .lock()
                .expect("retention lock poisoned")
                .adopt(id, t, true);
            by_dst.entry(dst).or_default().push(id);
        }
    }
    let out = ctl.out.lock().expect("out lock poisoned");
    for (dst, ids) in by_dst {
        let summary = shared.retention[dst]
            .lock()
            .expect("retention lock poisoned")
            .replay_ids(Instant::now(), &ids);
        shared
            .counters
            .recovered_transfers
            .fetch_add(summary.transfers, Ordering::Relaxed);
        let Some(tx) = out.get(dst) else { continue };
        for msg in summary.frames {
            shared
                .counters
                .replayed_frames
                .fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .replayed_bytes
                .fetch_add(msg.wire_bytes() as u64, Ordering::Relaxed);
            let _ = tx.send(msg);
        }
    }
}

/// A multi-process cluster over real TCP sockets: the coordinator side.
///
/// [`TcpCluster::launch`] spawns one OS process per node (re-executing
/// the current binary — see [`worker_env`]), exchanges the port map
/// over a control channel, and then plays the client role of the
/// in-process [`ClusterRuntime`](crate::ClusterRuntime): it ships
/// request inputs in as retained wire frames and collects the outputs
/// the workers ship back. [`TcpCluster::kill_worker`] delivers a real
/// `SIGKILL` — the ultimate `crash_node` — and
/// [`TcpCluster::restart_worker`] brings the node back as a fresh
/// process that replays its checkpoint log, with every sender resuming
/// its un-acked transfers from the last acknowledged §6.2 mark.
///
/// With [`ClusterRtConfig::orchestrator`] set (see
/// [`ClusterConfig::heartbeat`](crate::ClusterConfig::heartbeat)), the
/// coordinator additionally runs the wire-mode control plane: control-
/// channel pings every heartbeat interval, node-loss declaration after
/// the miss threshold, and relocation of the dead worker's functions
/// onto the least-pressured survivors — a worker lost to `kill -9`
/// mid-run is healed without ever restarting its process.
pub struct TcpCluster {
    ctl: Arc<CoordCtl>,
    control: TcpListener,
    control_port: u16,
    data_addr: SocketAddr,
    dir: PathBuf,
    tag: String,
    addrs: Vec<Arc<AddrCell>>,
    agents: Vec<thread::JoinHandle<()>>,
    pump: Option<thread::JoinHandle<()>>,
    heartbeat: Option<thread::JoinHandle<()>>,
    next_req: AtomicU64,
    next_transfer: AtomicU64,
}

fn spawn_worker(
    exe: &Path,
    node: usize,
    epoch: u32,
    control_port: u16,
    dir: &Path,
    tag: &str,
) -> io::Result<Child> {
    Command::new(exe)
        .env(ENV_NODE, node.to_string())
        .env(ENV_EPOCH, epoch.to_string())
        .env(ENV_CONTROL, control_port.to_string())
        .env(ENV_DIR, dir)
        .env(ENV_TAG, tag)
        .spawn()
}

/// Accepts one worker's control connection and reads its hello line.
/// Returns `(writer, reader, node, epoch, data_port)`.
fn accept_hello(
    listener: &TcpListener,
    deadline: Instant,
) -> io::Result<(TcpStream, BufReader<TcpStream>, usize, u32, u16)> {
    listener.set_nonblocking(true)?;
    let stream = loop {
        match listener.accept() {
            Ok((s, _)) => break s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let _ = listener.set_nonblocking(false);
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "worker never connected to the control channel",
                    ));
                }
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                let _ = listener.set_nonblocking(false);
                return Err(e);
            }
        }
    };
    listener.set_nonblocking(false)?;
    let _ = stream.set_nodelay(true); // RPC round trips must not hit Nagle
    let w = stream.try_clone()?;
    let mut r = BufReader::new(stream);
    let mut line = String::new();
    r.read_line(&mut line)?;
    let v = json::parse(&line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad hello: {e}")))?;
    Ok((
        w,
        r,
        jnum(&v, "node") as usize,
        jnum(&v, "epoch") as u32,
        jnum(&v, "port") as u16,
    ))
}

impl TcpCluster {
    /// Launches one worker process per node of `placement` and wires
    /// the full mesh up. `cfg` must be the same configuration the
    /// workers rebuild from `tag` (shaping, chunking, recovery — both
    /// sides derive behavior from it independently).
    ///
    /// `tag` is passed to every worker verbatim in
    /// `DATAFLOWER_WORKER_TAG`; the worker's `main` uses it to rebuild
    /// the identical workflow before calling [`WorkerEnv::serve`].
    ///
    /// # Errors
    ///
    /// Any socket or process-spawn failure, or a worker failing to
    /// introduce itself within the startup timeout.
    pub fn launch(
        workflow: Arc<Workflow>,
        placement: Placement,
        cfg: ClusterRtConfig,
        tag: &str,
    ) -> io::Result<TcpCluster> {
        let nodes = placement.node_count();
        assert!(nodes >= 1, "cluster needs at least one node");
        assert!(nodes < 255, "endpoint ids must fit transfer namespacing");
        let coord = nodes;

        let control = TcpListener::bind("127.0.0.1:0")?;
        let control_port = control.local_addr()?.port();
        let dir = std::env::temp_dir().join(format!(
            "dataflower-wire-{}-{}",
            std::process::id(),
            control_port
        ));
        std::fs::create_dir_all(&dir)?;

        let exe = std::env::current_exe()?;
        let mut children: Vec<Option<Child>> = Vec::new();
        for k in 0..nodes {
            children.push(Some(spawn_worker(&exe, k, 0, control_port, &dir, tag)?));
        }

        // Collect hellos in whatever order the workers come up.
        let mut slots: Vec<Option<WorkerSlot>> = (0..nodes).map(|_| None).collect();
        let deadline = Instant::now() + HELLO_TIMEOUT;
        for _ in 0..nodes {
            let (w, r, node, epoch, port) = accept_hello(&control, deadline)?;
            if node >= nodes || slots[node].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected hello from node {node}"),
                ));
            }
            slots[node] = Some(WorkerSlot {
                child: children[node].take(),
                ctrl_w: w,
                ctrl_r: r,
                port,
                epoch,
                alive: true,
            });
        }
        let mut slots: Vec<WorkerSlot> =
            slots.into_iter().map(|s| s.expect("all filled")).collect();

        // The coordinator's own data listener is the last endpoint.
        let data = TcpListener::bind("127.0.0.1:0")?;
        let data_addr = data.local_addr()?;
        let peer_table = {
            let mut ports: Vec<String> = slots.iter().map(|s| s.port.to_string()).collect();
            ports.push(data_addr.port().to_string());
            format!("{{\"ports\":[{}]}}", ports.join(","))
        };
        for slot in &mut slots {
            writeln!(slot.ctrl_w, "{peer_table}")?;
        }

        let shared = Arc::new(CoordShared {
            workflow: Arc::clone(&workflow),
            link: cfg.link.clone(),
            recovery_enabled: cfg.recovery.enabled,
            retransmit_timeout: cfg.recovery.retransmit_timeout,
            interval: cfg.checkpoint_interval_bytes,
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            retention: (0..nodes)
                .map(|_| {
                    let mut r = LinkRetention::default();
                    // Orchestrator mode: a relocated function's new host
                    // needs the client inputs from byte 0, so completed
                    // transfers stay replayable until their request is
                    // collected.
                    r.set_retain_acked(cfg.orchestrator);
                    Mutex::new(r)
                })
                .collect(),
            reqs: Mutex::new(HashMap::new()),
            done: Condvar::new(),
        });

        let mut out = Vec::with_capacity(nodes);
        let mut pump_out: Vec<Option<RingSender<NetMsg>>> = Vec::with_capacity(nodes);
        let mut addrs = Vec::with_capacity(nodes);
        let mut agents = Vec::with_capacity(nodes);
        for (k, slot) in slots.iter().enumerate() {
            let (tx, rx) = ring::<NetMsg>(cfg.link.queue_capacity);
            pump_out.push(Some(tx.clone()));
            out.push(tx);
            let addr = Arc::new(AddrCell::new(Some(loopback(slot.port))));
            addrs.push(Arc::clone(&addr));
            let side = Side::Coord(Arc::clone(&shared));
            agents.push(thread::spawn(move || {
                link_agent(side, coord, k, 0, rx, addr)
            }));
        }

        {
            let shared = Arc::clone(&shared);
            let out = out.clone();
            thread::spawn(move || {
                for conn in data.incoming() {
                    if shared.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let shared = Arc::clone(&shared);
                    let out = out.clone();
                    thread::spawn(move || coord_reader(shared, out, stream));
                }
            });
        }

        let pump = if cfg.recovery.enabled {
            let side = Side::Coord(Arc::clone(&shared));
            Some(thread::spawn(move || {
                retransmit_pump(side, coord, pump_out)
            }))
        } else {
            None
        };

        let ctl = Arc::new(CoordCtl {
            workflow,
            placement: RwLock::new(placement),
            shared,
            workers: slots.into_iter().map(Mutex::new).collect(),
            lost: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            out: Mutex::new(out),
            heartbeat_interval: cfg.heartbeat_interval,
            miss_threshold: cfg.heartbeat_miss_threshold.max(1),
        });
        let heartbeat = if cfg.orchestrator {
            let ctl = Arc::clone(&ctl);
            Some(thread::spawn(move || coord_heartbeat(ctl)))
        } else {
            None
        };

        Ok(TcpCluster {
            ctl,
            control,
            control_port,
            data_addr,
            dir,
            tag: tag.to_string(),
            addrs,
            agents,
            pump,
            heartbeat,
            next_req: AtomicU64::new(0),
            next_transfer: AtomicU64::new(worker_transfer_base(coord, 0)),
        })
    }

    /// Number of worker nodes (excluding the coordinator endpoint).
    pub fn node_count(&self) -> usize {
        self.ctl.workers.len()
    }

    /// The node currently hosting function `name`, per the live
    /// placement (repatched by relocation).
    ///
    /// # Panics
    ///
    /// Panics if the workflow has no function `name`.
    pub fn node_of(&self, name: &str) -> usize {
        self.ctl
            .placement
            .read()
            .expect("placement lock poisoned")
            .node_of(name)
    }

    /// True once `node` was declared permanently lost (its functions
    /// relocated to the survivors).
    pub fn worker_lost(&self, node: usize) -> bool {
        self.ctl.lost[node].load(Ordering::SeqCst)
    }

    /// Declares `node` permanently lost right now — the manual override
    /// of the heartbeat detector (which calls the same path after the
    /// miss threshold). Relocates its functions to the least-pressured
    /// survivors and re-sends every retained transfer that pointed at
    /// it. Idempotent; losing the last node is a no-op.
    pub fn declare_worker_lost(&self, node: usize) {
        if node < self.ctl.workers.len() {
            coord_relocate(&self.ctl, node);
        }
    }

    /// Invokes the workflow with client inputs `(data_name, payload)`:
    /// ships each input to its destination node as a retained wire
    /// frame. Returns immediately; collect with [`TcpCluster::wait`].
    pub fn invoke(&self, inputs: Vec<(String, Bytes)>) -> ReqId {
        let req = ReqId(self.next_req.fetch_add(1, Ordering::Relaxed));
        let wf = &self.ctl.workflow;
        let shared = &self.ctl.shared;
        let active = resolve_active(wf, req.0);
        let outputs_missing = wf
            .client_outputs()
            .filter(|e| active.edge_active(*e))
            .count();
        shared
            .reqs
            .lock()
            .expect("coordinator lock poisoned")
            .insert(
                req.0,
                CoordReq {
                    outputs_missing,
                    outputs: Vec::new(),
                    errors: Vec::new(),
                    delivered: HashSet::new(),
                    partial: HashMap::new(),
                    finished: HashSet::new(),
                },
            );
        for (name, payload) in inputs {
            let mut matched = false;
            for eid in wf.client_inputs().collect::<Vec<_>>() {
                let e = wf.edge(eid);
                if e.data_name != name {
                    continue;
                }
                matched = true;
                if !active.edge_active(eid) {
                    continue;
                }
                if let Endpoint::Function(dst) = e.target {
                    let dst_node = self
                        .ctl
                        .placement
                        .read()
                        .expect("placement lock poisoned")
                        .node_of(&wf.function(dst).name);
                    let transfer = self.next_transfer.fetch_add(1, Ordering::Relaxed);
                    let key = format!("{name}@$USER");
                    if shared.recovery_enabled {
                        shared.retention[dst_node]
                            .lock()
                            .expect("retention lock poisoned")
                            .retain(
                                transfer,
                                req.0,
                                eid,
                                &key,
                                payload.len(),
                                false,
                                0,
                                payload.clone(),
                            );
                    }
                    let out = self.ctl.out.lock().expect("out lock poisoned");
                    if let Some(tx) = out.get(dst_node) {
                        let _ = tx.send(NetMsg::Whole {
                            req: req.0,
                            edge: eid,
                            key,
                            transfer,
                            payload: payload.clone(),
                        });
                    }
                }
            }
            if !matched {
                let mut reqs = shared.reqs.lock().expect("coordinator lock poisoned");
                if let Some(rs) = reqs.get_mut(&req.0) {
                    rs.errors
                        .push(format!("no client input edge named `{name}`"));
                }
                shared.done.notify_all();
            }
        }
        req
    }

    /// Blocks until every client output of `req` arrived over the wire,
    /// or `timeout`. On success the request's state is released on the
    /// coordinator and purged from every live worker.
    ///
    /// # Errors
    ///
    /// Same contract as the in-process `ClusterRuntime::wait`:
    /// [`RtError::Timeout`], [`RtError::Faulted`],
    /// [`RtError::UnknownRequest`].
    pub fn wait(&self, req: ReqId, timeout: Duration) -> Result<Vec<(String, Bytes)>, RtError> {
        let deadline = Instant::now() + timeout;
        let shared = &self.ctl.shared;
        let mut reqs = shared.reqs.lock().expect("coordinator lock poisoned");
        loop {
            let rs = reqs.get(&req.0).ok_or(RtError::UnknownRequest)?;
            if !rs.errors.is_empty() {
                return Err(RtError::Faulted(rs.errors.join("; ")));
            }
            if rs.outputs_missing == 0 {
                let rs = reqs.remove(&req.0).expect("checked above");
                drop(reqs);
                // Collection point: retain-acked retention (orchestrator
                // mode) may only release a request's transfers now.
                if shared.recovery_enabled {
                    for r in &shared.retention {
                        r.lock().expect("retention lock poisoned").purge_req(req.0);
                    }
                }
                for k in 0..self.ctl.workers.len() {
                    let _ = self
                        .ctl
                        .rpc(k, &format!("{{\"op\":\"purge\",\"req\":{}}}", req.0));
                }
                return Ok(rs.outputs);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RtError::Timeout);
            }
            reqs = shared
                .done
                .wait_timeout(reqs, deadline.saturating_duration_since(now))
                .expect("coordinator lock poisoned")
                .0;
        }
    }

    /// Asks a live worker for its reassembly state: `(in-flight
    /// transfers, bytes durable at checkpoint marks)`. `None` when the
    /// worker is dead or unreachable.
    pub fn probe_worker(&self, node: usize) -> Option<(usize, u64)> {
        let v = self.ctl.rpc(node, "{\"op\":\"probe\"}")?;
        Some((jnum(&v, "inflight") as usize, jnum(&v, "durable")))
    }

    /// True when some endpoint (the coordinator or any live worker)
    /// currently retains a chunked transfer **toward** `victim` that
    /// has crossed an acked checkpoint mark but still has at least
    /// `margin` un-acked bytes — the crash-window probe: killing
    /// `victim` now guarantees its restart resumes mid-stream from a
    /// mark rather than byte 0.
    pub fn sender_mid_stream(&self, victim: usize, margin: usize) -> bool {
        if self.ctl.shared.recovery_enabled
            && self.ctl.shared.retention[victim]
                .lock()
                .expect("retention lock poisoned")
                .has_acked_partial(margin)
        {
            return true;
        }
        for k in 0..self.ctl.workers.len() {
            if k == victim {
                continue;
            }
            let line = format!("{{\"op\":\"retained\",\"dst\":{victim},\"margin\":{margin}}}");
            if let Some(v) = self.ctl.rpc(k, &line) {
                if matches!(v.get("ok"), Some(json::Value::Bool(true))) {
                    return true;
                }
            }
        }
        false
    }

    /// `SIGKILL`s a worker process — the ultimate `crash_node`: no
    /// destructor runs, the kernel reclaims its sockets mid-stream.
    /// The returned report carries the victim's last probed reassembly
    /// state (what a restart must recover).
    pub fn kill_worker(&self, node: usize) -> CrashReport {
        let probed = self.probe_worker(node);
        let mut slot = self.ctl.workers[node].lock().expect("worker slot poisoned");
        let was_up = slot.alive || probed.is_some();
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.child = None;
        slot.alive = false;
        drop(slot);
        if was_up {
            self.ctl
                .shared
                .counters
                .node_crashes
                .fetch_add(1, Ordering::Relaxed);
        }
        let (inflight, durable) = probed.unwrap_or((0, 0));
        CrashReport {
            node,
            was_up,
            inflight_transfers: inflight,
            durable_bytes: durable,
        }
    }

    /// Brings a killed worker back as a **fresh process** with a bumped
    /// epoch: the newcomer replays its checkpoint log, every peer is
    /// told the new port, and the senders' reconnects replay their
    /// un-acked transfers from the last acked mark (§6.2
    /// restart-and-replay over real sockets).
    ///
    /// # Errors
    ///
    /// Process-spawn or handshake failures.
    pub fn restart_worker(&self, node: usize) -> io::Result<()> {
        if self.ctl.lost[node].load(Ordering::SeqCst) {
            // The node's functions were relocated away; a fresh process
            // would rebuild the *original* placement from the tag and
            // fight the survivors for its old functions.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("node {node} was declared permanently lost"),
            ));
        }
        let epoch = {
            let slot = self.ctl.workers[node].lock().expect("worker slot poisoned");
            slot.epoch + 1
        };
        let exe = std::env::current_exe()?;
        let child = spawn_worker(&exe, node, epoch, self.control_port, &self.dir, &self.tag)?;
        let (w, r, hello_node, hello_epoch, port) =
            accept_hello(&self.control, Instant::now() + HELLO_TIMEOUT)?;
        if hello_node != node || hello_epoch != epoch {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected hello from node {node} epoch {epoch}, got node {hello_node} epoch {hello_epoch}"),
            ));
        }
        let peer_table = {
            let mut ports: Vec<String> = (0..self.ctl.workers.len())
                .map(|k| {
                    if k == node {
                        port.to_string()
                    } else {
                        self.ctl.workers[k]
                            .lock()
                            .expect("worker slot poisoned")
                            .port
                            .to_string()
                    }
                })
                .collect();
            ports.push(self.data_addr.port().to_string());
            format!("{{\"ports\":[{}]}}", ports.join(","))
        };
        {
            let mut slot = self.ctl.workers[node].lock().expect("worker slot poisoned");
            let mut ctrl_w = w;
            writeln!(ctrl_w, "{peer_table}")?;
            *slot = WorkerSlot {
                child: Some(child),
                ctrl_w,
                ctrl_r: r,
                port,
                epoch,
                alive: true,
            };
        }
        self.addrs[node].set(loopback(port));
        self.ctl
            .shared
            .counters
            .node_restarts
            .fetch_add(1, Ordering::Relaxed);
        for k in 0..self.ctl.workers.len() {
            if k != node {
                let _ = self.ctl.rpc(
                    k,
                    &format!("{{\"op\":\"peer_update\",\"node\":{node},\"port\":{port}}}"),
                );
            }
        }
        Ok(())
    }

    /// Cluster-wide counters: the coordinator's own (client-side link
    /// recovery, crashes, restarts) merged with a live snapshot pulled
    /// from every reachable worker. A killed worker's counters are
    /// lost with it — wire-mode totals cover the surviving processes.
    pub fn stats(&self) -> RtStats {
        let mut total = self.ctl.shared.counters.snapshot();
        for k in 0..self.ctl.workers.len() {
            if let Some(v) = self.ctl.rpc(k, "{\"op\":\"stats\"}") {
                if let Some(arr) = v.get("stats").and_then(|a| a.as_arr()) {
                    let vals: Vec<u64> = arr
                        .iter()
                        .filter_map(|x| x.as_f64())
                        .map(|f| f as u64)
                        .collect();
                    total.merge(&RtStats::from_vec(&vals));
                }
            }
        }
        total
    }

    /// Stops every worker (graceful control-channel shutdown, then a
    /// kill for stragglers), tears the coordinator's threads down and
    /// removes the checkpoint-log directory.
    pub fn shutdown(mut self) {
        // Flag first, then join the heartbeat: workers exiting on the
        // shutdown op must not read as missed beats and trigger a
        // relocation storm mid-teardown.
        self.ctl.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(hb) = self.heartbeat.take() {
            let _ = hb.join();
        }
        for k in 0..self.ctl.workers.len() {
            let _ = self.ctl.rpc(k, "{\"op\":\"shutdown\"}");
        }
        for slot in &self.ctl.workers {
            let mut slot = slot.lock().expect("worker slot poisoned");
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        // Nudge the acceptor awake so it observes the flag and drops
        // its queue senders; then the agents' queues disconnect.
        let _ = TcpStream::connect(self.data_addr);
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
        self.ctl.out.lock().expect("out lock poisoned").clear();
        for agent in self.agents.drain(..) {
            let _ = agent.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl std::fmt::Debug for TcpCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCluster")
            .field("workflow", &self.ctl.workflow.name())
            .field("nodes", &self.ctl.workers.len())
            .field("control_port", &self.control_port)
            .finish()
    }
}
