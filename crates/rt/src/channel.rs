//! A small in-tree MPMC channel (bounded and unbounded).
//!
//! Std-only replacement for `crossbeam_channel`, providing the two
//! properties the runtime needs that `std::sync::mpsc` lacks:
//!
//! * **cloneable receivers** — several FLU executor threads drain one
//!   invocation queue;
//! * **blocking bounded send** — a full DLU queue blocks `put`, which is
//!   the backpressure of the paper's Fig. 6a.
//!
//! Disconnection mirrors crossbeam: `recv` fails once the queue is empty
//! and every sender is gone; `send` fails once every receiver is gone.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are dropped; the
/// unsent message is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

struct Inner<T> {
    queue: VecDeque<T>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half; clone freely.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half; clone freely (messages go to exactly one receiver).
pub struct Receiver<T>(Arc<Shared<T>>);

/// Creates a channel that holds at most `capacity` queued messages;
/// `send` on a full channel blocks until a receiver drains it.
///
/// A `capacity` of 0 is clamped to 1: rendezvous channels (send blocks
/// until a receiver takes the message) are not supported, so the
/// strictest available backpressure is a single-slot buffer.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity.max(1)))
}

/// Creates a channel with no queue limit; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.0.inner.lock().expect("channel lock poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            match inner.capacity {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.0.not_full.wait(inner).expect("channel lock poisoned");
                }
                _ => break,
            }
        }
        inner.queue.push_back(value);
        drop(inner);
        self.0.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.inner.lock().expect("channel lock poisoned");
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.0.not_empty.wait(inner).expect("channel lock poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().expect("channel lock poisoned").senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0
            .inner
            .lock()
            .expect("channel lock poisoned")
            .receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().expect("channel lock poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            // Wake blocked receivers so they observe disconnection.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().expect("channel lock poisoned");
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            // Wake blocked senders so they observe disconnection.
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            // Blocks until the main thread drains the slot.
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = unbounded::<u32>();
        let rx2 = rx1.clone();
        let consumer = |rx: Receiver<u32>| {
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            })
        };
        let a = consumer(rx1);
        let b = consumer(rx2);
        for i in 0..200 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all = a.join().unwrap();
        all.extend(b.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }
}
