//! A small in-tree MPMC channel (bounded and unbounded).
//!
//! Std-only replacement for `crossbeam_channel`, providing the two
//! properties the runtime needs that `std::sync::mpsc` lacks:
//!
//! * **cloneable receivers** — several consumer threads may drain one
//!   queue;
//! * **blocking bounded send** — a full DLU queue blocks `put`, which is
//!   the backpressure of the paper's Fig. 6a.
//!
//! Fabric links, which are single-consumer by construction (one shipper
//! per directed link), use the index-striped ring in [`crate::ring`]
//! instead — same blocking/disconnection semantics, no shared queue
//! mutex on the hot path.
//!
//! Disconnection mirrors crossbeam: `recv` fails once the queue is empty
//! and every sender is gone; `send` fails once every receiver is gone.
//!
//! # Batched operations and notification discipline
//!
//! [`Sender::send_many`] and [`Receiver::drain_into`] move a whole batch
//! under **one** lock acquisition, and condvar notifications fire only on
//! state *transitions* (empty→non-empty wakes receivers, full→non-full
//! wakes senders) instead of on every operation. Skipping the steady-state
//! notifies is safe because wakeups are **baton-passed**: a receiver that
//! pops and leaves the queue non-empty re-notifies `not_empty` (another
//! receiver may be waiting on data it was never told about), and a sender
//! that was blocked on a full queue and pushes while space remains
//! re-notifies `not_full`. Unbounded channels never touch the `not_full`
//! condvar at all.
//!
//! # Examples
//!
//! A bounded channel with two competing consumers — the FLU executor
//! pool pattern (cloneable receivers, each message to exactly one
//! consumer), with batched shipping on the producer side:
//!
//! ```
//! use dataflower_rt::channel;
//!
//! let (tx, rx) = channel::bounded::<u32>(8);
//! let consumers: Vec<_> = (0..2)
//!     .map(|_| {
//!         let rx = rx.clone();
//!         std::thread::spawn(move || {
//!             let (mut got, mut buf) = (Vec::new(), Vec::new());
//!             // One lock acquisition drains up to 16 queued messages.
//!             while rx.drain_into(&mut buf, 16).is_ok() {
//!                 got.append(&mut buf);
//!             }
//!             got
//!         })
//!     })
//!     .collect();
//! drop(rx);
//!
//! // send_many blocks mid-batch while the queue is full: that is the
//! // DLU backpressure of Fig. 6a, not an error.
//! tx.send_many(0..100).unwrap();
//! drop(tx); // disconnect: drained consumers exit their loop
//!
//! let mut all: Vec<u32> = consumers
//!     .into_iter()
//!     .flat_map(|c| c.join().unwrap())
//!     .collect();
//! all.sort_unstable();
//! assert_eq!(all, (0..100).collect::<Vec<_>>());
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Error returned by [`Sender::send`] when all receivers are dropped; the
/// unsent message is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

struct Inner<T> {
    queue: VecDeque<T>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

impl<T> Inner<T> {
    fn full(&self) -> bool {
        matches!(self.capacity, Some(cap) if self.queue.len() >= cap)
    }
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half; clone freely.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half; clone freely (messages go to exactly one receiver).
pub struct Receiver<T>(Arc<Shared<T>>);

/// Creates a channel that holds at most `capacity` queued messages;
/// `send` on a full channel blocks until a receiver drains it.
///
/// A `capacity` of 0 is clamped to 1: rendezvous channels (send blocks
/// until a receiver takes the message) are not supported, so the
/// strictest available backpressure is a single-slot buffer.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity.max(1)))
}

/// Creates a channel with no queue limit; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.0.inner.lock().expect("channel lock poisoned");
        let mut waited = false;
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            if inner.full() {
                waited = true;
                inner = self.0.not_full.wait(inner).expect("channel lock poisoned");
            } else {
                break;
            }
        }
        let was_empty = inner.queue.is_empty();
        inner.queue.push_back(value);
        // Baton: we consumed a not_full wakeup; if space remains, pass it
        // on so another blocked sender is not stranded.
        let pass_not_full = waited && !inner.full();
        drop(inner);
        if was_empty {
            self.0.not_empty.notify_one();
        }
        if pass_not_full {
            self.0.not_full.notify_one();
        }
        Ok(())
    }

    /// Enqueues every value of `batch` under a single lock acquisition,
    /// blocking (and releasing the lock) whenever the channel fills up
    /// mid-batch. Returns the number of values enqueued.
    ///
    /// Receivers are notified when the queue transitions empty→non-empty
    /// — including mid-batch before blocking on a full queue, so a batch
    /// larger than the capacity cannot deadlock against sleeping
    /// receivers.
    ///
    /// # Errors
    ///
    /// Returns the not-yet-sent tail of the batch if every receiver has
    /// been dropped (values already enqueued stay enqueued).
    pub fn send_many(
        &self,
        batch: impl IntoIterator<Item = T>,
    ) -> Result<usize, SendError<Vec<T>>> {
        let mut pending = batch.into_iter();
        // Pull each item *before* deciding whether to wait: a batch whose
        // last item exactly fills the queue must return, not block for
        // space it will never use.
        let mut next = pending.next();
        let mut inner = self.0.inner.lock().expect("channel lock poisoned");
        let mut sent = 0usize;
        let mut waited = false;
        loop {
            let Some(v) = next.take() else {
                // Baton: we consumed a not_full wakeup; if space remains,
                // pass it on so another blocked sender is not stranded.
                let pass_not_full = waited && !inner.full();
                drop(inner);
                if pass_not_full {
                    self.0.not_full.notify_one();
                }
                return Ok(sent);
            };
            if inner.receivers == 0 {
                let mut rest = vec![v];
                rest.extend(pending);
                return Err(SendError(rest));
            }
            if inner.full() {
                next = Some(v);
                waited = true;
                inner = self.0.not_full.wait(inner).expect("channel lock poisoned");
                continue;
            }
            if inner.queue.is_empty() {
                // Transition empty→non-empty: wake all receivers (the
                // rest of the batch is for them; notifying under the
                // lock is fine — waiters re-acquire it after we drop).
                self.0.not_empty.notify_all();
            }
            inner.queue.push_back(v);
            sent += 1;
            next = pending.next();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.inner.lock().expect("channel lock poisoned");
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.after_pop(inner, 1);
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.0.not_empty.wait(inner).expect("channel lock poisoned");
        }
    }

    /// Pops up to `max` queued messages into `buf` under a single lock
    /// acquisition, blocking like [`Receiver::recv`] until at least one
    /// message is available. Returns how many were appended.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has been dropped.
    pub fn drain_into(&self, buf: &mut Vec<T>, max: usize) -> Result<usize, RecvError> {
        if max == 0 {
            return Ok(0);
        }
        let mut inner = self.0.inner.lock().expect("channel lock poisoned");
        loop {
            if !inner.queue.is_empty() {
                let n = max.min(inner.queue.len());
                buf.extend(inner.queue.drain(..n));
                self.after_pop(inner, n);
                return Ok(n);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.0.not_empty.wait(inner).expect("channel lock poisoned");
        }
    }

    /// Post-pop notification discipline, shared by [`Receiver::recv`] and
    /// [`Receiver::drain_into`]: wake senders only on the full→non-full
    /// transition (unbounded channels never notify `not_full`), and baton
    /// a `not_empty` wakeup onward when messages remain for other
    /// receivers.
    fn after_pop(&self, inner: MutexGuard<'_, Inner<T>>, popped: usize) {
        let was_full = matches!(
            inner.capacity,
            Some(cap) if inner.queue.len() + popped >= cap
        );
        let still_nonempty = !inner.queue.is_empty();
        drop(inner);
        if was_full {
            // Freeing one slot wakes one sender (which batons onward);
            // freeing many wakes them all.
            if popped > 1 {
                self.0.not_full.notify_all();
            } else {
                self.0.not_full.notify_one();
            }
        }
        if still_nonempty {
            self.0.not_empty.notify_one();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().expect("channel lock poisoned").senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0
            .inner
            .lock()
            .expect("channel lock poisoned")
            .receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().expect("channel lock poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            // Wake blocked receivers so they observe disconnection.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().expect("channel lock poisoned");
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            // Wake blocked senders so they observe disconnection.
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            // Blocks until the main thread drains the slot.
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = unbounded::<u32>();
        let rx2 = rx1.clone();
        let consumer = |rx: Receiver<u32>| {
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            })
        };
        let a = consumer(rx1);
        let b = consumer(rx2);
        for i in 0..200 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all = a.join().unwrap();
        all.extend(b.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn send_many_preserves_order() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(tx.send_many(0..50), Ok(50));
        assert_eq!(tx.send_many(50..100), Ok(50));
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn send_many_larger_than_capacity_does_not_deadlock() {
        // A 200-message batch through a 4-slot queue: the sender must
        // wake the concurrent receiver mid-batch or both sleep forever.
        let (tx, rx) = bounded::<u32>(4);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        assert_eq!(tx.send_many(0..200), Ok(200));
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn send_many_returns_unsent_tail_on_disconnect() {
        let (tx, rx) = bounded::<u32>(8);
        drop(rx);
        assert_eq!(tx.send_many(0..5), Err(SendError((0..5).collect())));
    }

    #[test]
    fn drain_into_takes_up_to_max() {
        let (tx, rx) = unbounded::<u32>();
        tx.send_many(0..10).unwrap();
        let mut buf = Vec::new();
        assert_eq!(rx.drain_into(&mut buf, 4), Ok(4));
        assert_eq!(rx.drain_into(&mut buf, 100), Ok(6));
        assert_eq!(buf, (0..10).collect::<Vec<_>>());
        drop(tx);
        assert_eq!(rx.drain_into(&mut buf, 1), Err(RecvError));
        assert_eq!(rx.drain_into(&mut buf, 0), Ok(0));
    }

    #[test]
    fn drain_into_blocks_until_data() {
        let (tx, rx) = bounded::<u32>(2);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send_many([1, 2]).unwrap();
        });
        let mut buf = Vec::new();
        assert_eq!(rx.drain_into(&mut buf, 8), Ok(2));
        assert_eq!(buf, vec![1, 2]);
        t.join().unwrap();
    }

    #[test]
    fn drain_unblocks_multiple_full_senders() {
        // Two senders blocked on a full 2-slot queue; one batched drain
        // must free both (full→non-full notify_all + sender batons).
        let (tx, rx) = bounded::<u32>(2);
        tx.send_many([0, 1]).unwrap();
        let blocked: Vec<_> = (0..2)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(10 + i).unwrap())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        let mut buf = Vec::new();
        assert_eq!(rx.drain_into(&mut buf, 2), Ok(2));
        for t in blocked {
            t.join().unwrap();
        }
        drop(tx);
        while let Ok(n) = rx.drain_into(&mut buf, 16) {
            assert!(n > 0);
        }
        buf.sort_unstable();
        assert_eq!(buf, vec![0, 1, 10, 11]);
    }

    #[test]
    fn batched_producers_and_consumers_lose_nothing() {
        // Stress the transition-based notifies: 4 batching producers and
        // 4 draining consumers over a small bounded queue must deliver
        // every message exactly once and terminate.
        let (tx, rx) = bounded::<u32>(8);
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for chunk in 0..10 {
                        let base = p * 1000 + chunk * 100;
                        tx.send_many(base..base + 100).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut buf = Vec::new();
                    while rx.drain_into(&mut buf, 16).is_ok() {
                        got.append(&mut buf);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let mut expected: Vec<u32> = (0..4u32).flat_map(|p| p * 1000..p * 1000 + 1000).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
