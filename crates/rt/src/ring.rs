//! Bounded SPSC ring queues for the fabric's directed links.
//!
//! Every directed link has exactly one shipper thread draining it (the
//! single-consumer invariant the fabric has had since PR 2), and in the
//! common case exactly one producer (the source node's DLU daemon).
//! [`RingSender`]/[`RingReceiver`] exploit that: the hot path is two
//! atomic indices over a fixed slot array, so a push and a pop touch
//! disjoint cache lines and never take a common lock.
//!
//! The design stays inside `forbid(unsafe)` by striping the slot array
//! with per-slot `Mutex<Option<T>>`s — each slot lock is uncontended
//! except at the exact index where producer and consumer meet, which is
//! the boundary where synchronization is required anyway. Producers
//! additionally funnel through a producer-side lock: the single-shipper
//! invariant makes it uncontended on the steady-state path, while still
//! keeping occasional second producers (recovery replays, relocation
//! forwarding, wire-mode ack returns) safe.
//!
//! Semantics mirror [`crate::channel`] so the fabric teardown cascade is
//! unchanged: `send` blocks while the ring is full and fails only when
//! the receiver is gone; `drain_into`/`recv` block while the ring is
//! empty and fail only when every sender is gone *and* the ring is
//! drained.
//!
//! # Examples
//!
//! ```
//! use dataflower_rt::ring;
//!
//! let (tx, rx) = ring::ring::<u32>(8);
//! for i in 0..5 {
//!     tx.send(i).unwrap();
//! }
//! drop(tx);
//! let mut batch = Vec::new();
//! rx.drain_into(&mut batch, 16).unwrap();
//! assert_eq!(batch, vec![0, 1, 2, 3, 4]);
//! assert!(rx.drain_into(&mut batch, 16).is_err()); // disconnected + empty
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::channel::{RecvError, SendError};

/// Shared wakeup latch for one ring — or for a *group* of rings drained
/// by one multiplexed shipper thread ([`ring_with_notify`]): pushing
/// into any ring of the group wakes the one consumer parked on the
/// shared latch.
#[derive(Debug, Default)]
pub struct RingNotify {
    mx: Mutex<()>,
    cv: Condvar,
}

impl RingNotify {
    /// A fresh latch, to share across the rings one consumer drains.
    pub fn new() -> Arc<RingNotify> {
        Arc::new(RingNotify::default())
    }

    fn notify(&self) {
        // Lock-then-notify so a consumer between its emptiness re-check
        // and its `wait` cannot miss the signal.
        let _g = self.mx.lock().expect("ring notify poisoned");
        self.cv.notify_all();
    }

    /// Parks the caller until notified, re-checking `ready` under the
    /// latch lock first (never sleeps through a signal).
    pub fn wait_until(&self, mut ready: impl FnMut() -> bool) {
        let mut g = self.mx.lock().expect("ring notify poisoned");
        while !ready() {
            g = self.cv.wait(g).expect("ring notify poisoned");
        }
    }
}

#[derive(Debug)]
struct RingInner<T> {
    /// Power-of-two slot array. A slot's lock is only ever contended at
    /// the producer/consumer boundary index.
    slots: Box<[Mutex<Option<T>>]>,
    mask: usize,
    /// Next index the consumer will pop (monotonic, wraps via `mask`).
    head: AtomicUsize,
    /// Next index a producer will fill (monotonic, wraps via `mask`).
    tail: AtomicUsize,
    /// Funnels concurrent producers; uncontended with one producer.
    prod: Mutex<()>,
    notify: Arc<RingNotify>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Producer handle of a ring. Cloning registers another producer;
/// dropping the last one lets the drained receiver observe disconnect.
#[derive(Debug)]
pub struct RingSender<T> {
    inner: Arc<RingInner<T>>,
}

/// Consumer handle of a ring — deliberately not `Clone`: the single
/// consumer is the invariant the lock-free pop side relies on.
#[derive(Debug)]
pub struct RingReceiver<T> {
    inner: Arc<RingInner<T>>,
}

/// Creates a bounded ring with its own private wakeup latch.
/// `capacity` is rounded up to the next power of two (minimum 1).
pub fn ring<T>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    ring_with_notify(capacity, RingNotify::new())
}

/// Creates a bounded ring whose consumer-side wakeups go through a
/// caller-supplied latch, so one shipper thread can park on a single
/// latch while draining several rings.
pub fn ring_with_notify<T>(
    capacity: usize,
    notify: Arc<RingNotify>,
) -> (RingSender<T>, RingReceiver<T>) {
    let cap = capacity.max(1).next_power_of_two();
    let inner = Arc::new(RingInner {
        slots: (0..cap).map(|_| Mutex::new(None)).collect(),
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        prod: Mutex::new(()),
        notify,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        RingSender {
            inner: Arc::clone(&inner),
        },
        RingReceiver { inner },
    )
}

impl<T> RingInner<T> {
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

impl<T> RingSender<T> {
    /// Pushes `value`, blocking while the ring is full.
    ///
    /// # Errors
    ///
    /// Returns the value if the receiver is gone (matching
    /// [`crate::channel::Sender::send`]), so link teardown unblocks
    /// producers instead of wedging them.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let inner = &self.inner;
        let _p = inner.prod.lock().expect("ring producer lock poisoned");
        loop {
            if inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let tail = inner.tail.load(Ordering::Relaxed);
            let head = inner.head.load(Ordering::Acquire);
            if tail.wrapping_sub(head) < inner.capacity() {
                *inner.slots[tail & inner.mask]
                    .lock()
                    .expect("ring slot poisoned") = Some(value);
                inner.tail.store(tail.wrapping_add(1), Ordering::Release);
                // Decide the wakeup from `head` re-loaded *after* the
                // publish. A pre-push snapshot races the consumer's last
                // pop: the consumer can drain to empty and park between
                // our loads and our store, and a "ring wasn't empty"
                // snapshot would skip the notify it now needs. If head
                // has caught up to the slot just filled, the consumer
                // may be parked (or about to park) on empty.
                if inner.head.load(Ordering::Acquire) == tail {
                    inner.notify.notify();
                }
                return Ok(());
            }
            // Full: park on the latch until the consumer frees a slot.
            // The consumer notifies after popping from a full ring, and
            // `wait_until` re-checks under the latch lock, so the wakeup
            // cannot be missed.
            inner.notify.wait_until(|| {
                inner.receivers.load(Ordering::Acquire) == 0
                    || tail.wrapping_sub(inner.head.load(Ordering::Acquire)) < inner.capacity()
            });
        }
    }

    /// Messages currently queued (racy snapshot, for gauges).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no message is queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }
}

impl<T> Clone for RingSender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        RingSender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last producer gone: wake a consumer blocked on empty so it
            // can observe the disconnect.
            self.inner.notify.notify();
        }
    }
}

impl<T> RingReceiver<T> {
    /// Pops every queued message (up to `max`) into `buf` without
    /// blocking. Returns how many were moved; `Ok(0)` means the ring is
    /// currently empty but still connected.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the ring is empty and every sender is gone.
    pub fn try_drain(&self, buf: &mut Vec<T>, max: usize) -> Result<usize, RecvError> {
        let inner = &self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Acquire);
        let avail = tail.wrapping_sub(head);
        let n = avail.min(max);
        if n == 0 {
            if inner.senders.load(Ordering::Acquire) == 0
                && inner.tail.load(Ordering::Acquire) == head
            {
                return Err(RecvError);
            }
            return Ok(0);
        }
        for i in 0..n {
            let slot = inner.slots[(head.wrapping_add(i)) & inner.mask]
                .lock()
                .expect("ring slot poisoned")
                .take();
            buf.push(slot.expect("published slot holds a value"));
        }
        inner.head.store(head.wrapping_add(n), Ordering::Release);
        // Mirror of the producer's post-publish check: decide from
        // `tail` re-loaded *after* the pop. The entry snapshot races a
        // concurrent producer that fills the ring and parks after we
        // read `tail`; if the ring was full right up to this pop, a
        // producer may be parked (or about to park) on full.
        if inner.tail.load(Ordering::Acquire).wrapping_sub(head) == inner.capacity() {
            inner.notify.notify();
        }
        Ok(n)
    }

    /// Moves up to `max` messages into `buf`, blocking while the ring is
    /// empty. Returns how many arrived (≥ 1).
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the ring is empty and every sender is gone —
    /// the link-teardown signal, matching
    /// [`crate::channel::Receiver::drain_into`].
    pub fn drain_into(&self, buf: &mut Vec<T>, max: usize) -> Result<usize, RecvError> {
        loop {
            match self.try_drain(buf, max)? {
                0 => {}
                n => return Ok(n),
            }
            let inner = &self.inner;
            inner
                .notify
                .wait_until(|| inner.len() > 0 || inner.senders.load(Ordering::Acquire) == 0);
        }
    }

    /// Pops one message, blocking while the ring is empty.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the ring is empty and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut one = Vec::with_capacity(1);
        self.drain_into(&mut one, 1)?;
        Ok(one.pop().expect("drain_into returned ≥ 1"))
    }

    /// Messages currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no message is queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// True when every sender is gone (the ring may still hold queued
    /// messages to drain).
    pub fn is_disconnected(&self) -> bool {
        self.inner.senders.load(Ordering::Acquire) == 0
    }

    /// The wakeup latch this ring signals — the latch a multiplexed
    /// shipper parks on.
    pub fn notify(&self) -> Arc<RingNotify> {
        Arc::clone(&self.inner.notify)
    }
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.store(0, Ordering::SeqCst);
        // Wake producers blocked on a full ring so they observe the
        // disconnect instead of wedging.
        self.inner.notify.notify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_and_orders_fifo() {
        let (tx, rx) = ring::<u64>(3); // rounds to 4
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.try_drain(&mut out, 10).unwrap(), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_blocks_on_full_until_drained() {
        let (tx, rx) = ring::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until the consumer pops
            tx
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut out = Vec::new();
        rx.drain_into(&mut out, 1).unwrap();
        let _tx = t.join().unwrap();
        rx.drain_into(&mut out, 10).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let (tx, rx) = ring::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn drain_errs_only_when_empty_and_disconnected() {
        let (tx, rx) = ring::<u32>(4);
        tx.send(5).unwrap();
        drop(tx);
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out, 10).unwrap(), 1); // drains the tail first
        assert!(rx.drain_into(&mut out, 10).is_err());
    }

    #[test]
    fn recv_pops_in_order_across_threads() {
        let (tx, rx) = ring::<u64>(8);
        let n = 10_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                tx.send(i).unwrap();
            }
        });
        for i in 0..n {
            assert_eq!(rx.recv().unwrap(), i);
        }
        producer.join().unwrap();
        assert!(rx.recv().is_err());
    }

    #[test]
    fn shared_notify_wakes_multiplexed_consumer() {
        let notify = RingNotify::new();
        let (tx_a, rx_a) = ring_with_notify::<u32>(4, Arc::clone(&notify));
        let (tx_b, rx_b) = ring_with_notify::<u32>(4, Arc::clone(&notify));
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx_b.send(7).unwrap();
            drop(tx_a);
        });
        // Park on the shared latch until either ring has data or died.
        notify.wait_until(|| {
            !rx_a.is_empty() || !rx_b.is_empty() || rx_a.is_disconnected() || rx_b.is_disconnected()
        });
        let mut out = Vec::new();
        let _ = rx_a.try_drain(&mut out, 4);
        let _ = rx_b.try_drain(&mut out, 4);
        assert_eq!(out, vec![7]);
        t.join().unwrap();
    }
}
