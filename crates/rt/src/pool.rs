//! Byte-buffer pooling for the fabric's small-frame hot paths.
//!
//! Encoding a wire frame, staging a checkpoint record, or batching ack
//! frames each need a scratch `Vec<u8>` that lives for microseconds.
//! Allocating one per frame puts the allocator on the per-message hot
//! path; [`BytePool`] keeps a shelf of retired buffers and hands them
//! back out, so steady-state framing does no allocation at all.
//!
//! Aliasing is impossible by construction: a [`PooledBuf`] returns to
//! the shelf only from its `Drop`, and [`PooledBuf::into_bytes`]
//! *consumes* the buffer into an owned [`crate::bytes::Bytes`] without
//! recycling the storage — so a live `Bytes` can never share bytes with
//! a buffer a later caller checks out (pinned by the
//! `pool_never_aliases_live_bytes` property).
//!
//! # Examples
//!
//! ```
//! use dataflower_rt::pool::BytePool;
//!
//! let pool = BytePool::new(4, 16 * 1024);
//! let mut buf = pool.get();
//! buf.extend_from_slice(b"frame head");
//! drop(buf); // storage returns to the shelf
//! let again = pool.get();
//! assert!(again.is_empty()); // cleared, but capacity is retained
//! ```

use std::sync::{Arc, Mutex};

use crate::bytes::Bytes;

/// Default per-buffer capacity retained on the shelf: the sub-16 KiB
/// direct-socket class from the paper's §7 pipe taxonomy. Buffers grown
/// past this while checked out are shrunk back before shelving so one
/// giant frame cannot pin its footprint forever.
pub const DIRECT_SOCKET_POOL_BYTES: usize = 16 * 1024;

#[derive(Debug)]
struct Shelf {
    bufs: Mutex<Vec<Vec<u8>>>,
    max_shelved: usize,
    retain_bytes: usize,
}

/// A shared shelf of reusable byte buffers. Cloning is cheap and all
/// clones feed the same shelf.
#[derive(Debug, Clone)]
pub struct BytePool {
    shelf: Arc<Shelf>,
}

impl BytePool {
    /// A pool that shelves at most `max_shelved` buffers, each trimmed
    /// to at most `retain_bytes` of capacity when returned.
    pub fn new(max_shelved: usize, retain_bytes: usize) -> BytePool {
        BytePool {
            shelf: Arc::new(Shelf {
                bufs: Mutex::new(Vec::new()),
                max_shelved,
                retain_bytes,
            }),
        }
    }

    /// Checks out an empty buffer, reusing shelved storage when any is
    /// available.
    pub fn get(&self) -> PooledBuf {
        let buf = self
            .shelf
            .bufs
            .lock()
            .expect("byte pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledBuf {
            buf,
            shelf: Arc::clone(&self.shelf),
        }
    }

    /// Buffers currently shelved (for tests and gauges).
    pub fn shelved(&self) -> usize {
        self.shelf.bufs.lock().expect("byte pool poisoned").len()
    }
}

impl Default for BytePool {
    /// A pool sized for per-link frame staging: a handful of buffers in
    /// the direct-socket size class.
    fn default() -> BytePool {
        BytePool::new(8, DIRECT_SOCKET_POOL_BYTES)
    }
}

/// An exclusively-owned scratch buffer checked out of a [`BytePool`].
///
/// Derefs to `Vec<u8>`, so all the usual byte-building methods apply.
/// Dropping it returns the storage to the shelf; [`Self::into_bytes`]
/// instead converts the contents into an owned [`Bytes`] and retires the
/// storage from the pool entirely.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    shelf: Arc<Shelf>,
}

impl PooledBuf {
    /// Consumes the buffer into an immutable [`Bytes`] **without**
    /// recycling the storage — the returned `Bytes` exclusively owns the
    /// allocation, so no later [`BytePool::get`] can hand out a buffer
    /// aliasing it.
    pub fn into_bytes(mut self) -> Bytes {
        Bytes::from(std::mem::take(&mut self.buf))
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        // Empty after `into_bytes` took the storage: nothing to shelve.
        if self.buf.capacity() == 0 {
            return;
        }
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        if buf.capacity() > self.shelf.retain_bytes {
            buf.shrink_to(self.shelf.retain_bytes);
        }
        let mut shelf = self.shelf.bufs.lock().expect("byte pool poisoned");
        if shelf.len() < self.shelf.max_shelved {
            shelf.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_capacity_across_checkouts() {
        let pool = BytePool::new(4, 1024);
        let mut b = pool.get();
        b.extend_from_slice(&[7u8; 512]);
        let cap = b.capacity();
        drop(b);
        assert_eq!(pool.shelved(), 1);
        let b2 = pool.get();
        assert!(b2.is_empty());
        assert!(b2.capacity() >= cap.min(512));
        assert_eq!(pool.shelved(), 0);
    }

    #[test]
    fn into_bytes_retires_storage_from_pool() {
        let pool = BytePool::new(4, 1024);
        let mut b = pool.get();
        b.extend_from_slice(b"hello");
        let bytes = b.into_bytes();
        assert_eq!(&bytes[..], b"hello");
        // The storage went with the Bytes; nothing returned to the
        // shelf, so a fresh checkout cannot alias `bytes`.
        assert_eq!(pool.shelved(), 0);
    }

    #[test]
    fn shelf_caps_count_and_capacity() {
        let pool = BytePool::new(1, 64);
        let mut a = pool.get();
        a.extend_from_slice(&[0u8; 4096]);
        let b = pool.get();
        drop(a); // shelved, shrunk to ≤ 64
        drop(b); // shelf already full: discarded
        assert_eq!(pool.shelved(), 1);
        let again = pool.get();
        assert!(again.capacity() <= 4096);
    }
}
