//! DataFlower engine configuration.

use dataflower_cluster::ContainerSpec;
use dataflower_sim::SimDuration;

use crate::pipe::CheckpointSchedule;

/// Tunables of the DataFlower engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataFlowerConfig {
    /// Resource spec for containers the engine scales out.
    pub container_spec: ContainerSpec,
    /// Loss factor `α` of Eq. 1 — ratio of real to ideal transfer time for
    /// the pipe connector implementation.
    pub alpha: f64,
    /// Enables pressure-aware function scaling (§5.2). Disabling this
    /// yields the paper's *DataFlower-Non-aware* ablation (Fig. 12).
    pub pressure_aware: bool,
    /// Fraction of a function's compute after which its DLU starts
    /// shipping outputs (the mid-function `DLU.Put` of §5.1 that enables
    /// streaming and early triggering).
    pub stream_fraction: f64,
    /// TTL before a sink entry passively expires to disk (§7).
    pub sink_ttl: SimDuration,
    /// Penalty to reload one spilled input from the function-exclusive
    /// disk.
    pub disk_reload_latency: SimDuration,
    /// Pipe-connector checkpointing for fault recovery (§6.2).
    pub checkpoint: CheckpointSchedule,
    /// Scale-out cap per function (guards against container storms).
    pub max_containers_per_function: usize,
    /// Delay before a failed function is ReDone after a data-plane fault.
    pub redo_latency: SimDuration,
    /// Minimum spacing between scale-out decisions per function — the
    /// platform's reactive autoscaler ramps capacity gradually rather
    /// than cold-starting one container per queued request instantly.
    pub scale_cooldown: SimDuration,
    /// Data-availability-driven prewarming (the paper's §10 future work):
    /// when a function starts executing, cold-start a container for each
    /// successor that has none — its input data is already on the way, so
    /// the cold start overlaps the producer's compute and transfer.
    pub prewarm: bool,
    /// Record the engine's scheduling decisions (invocations and §7 pipe
    /// choices) on a timestamped timeline
    /// ([`DataFlowerEngine::decision_timeline`]) — what trace replay
    /// diffs against a live run. Costs memory per event; off by default.
    ///
    /// [`DataFlowerEngine::decision_timeline`]: crate::DataFlowerEngine::decision_timeline
    pub record_decisions: bool,
}

impl Default for DataFlowerConfig {
    fn default() -> Self {
        DataFlowerConfig {
            container_spec: ContainerSpec::default(),
            alpha: 1.15,
            pressure_aware: true,
            stream_fraction: 0.7,
            sink_ttl: SimDuration::from_secs(30),
            disk_reload_latency: SimDuration::from_millis(20),
            checkpoint: CheckpointSchedule::default(),
            max_containers_per_function: 64,
            redo_latency: SimDuration::from_millis(50),
            scale_cooldown: SimDuration::from_millis(100),
            prewarm: false,
            record_decisions: false,
        }
    }
}

impl DataFlowerConfig {
    /// The *DataFlower-Non-aware* ablation: identical but with
    /// pressure-aware scaling disabled.
    pub fn non_aware() -> Self {
        DataFlowerConfig {
            pressure_aware: false,
            ..DataFlowerConfig::default()
        }
    }

    /// Sets the container spec (builder-style convenience for the Fig. 17
    /// scale-up sweep).
    pub fn with_container_spec(mut self, spec: ContainerSpec) -> Self {
        self.container_spec = spec;
        self
    }

    /// Enables data-availability prewarming (§10 future work).
    pub fn with_prewarm(mut self) -> Self {
        self.prewarm = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_differs_only_in_awareness() {
        let a = DataFlowerConfig::default();
        let b = DataFlowerConfig::non_aware();
        assert!(a.pressure_aware);
        assert!(!b.pressure_aware);
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.container_spec, b.container_spec);
    }

    #[test]
    fn scale_up_convenience() {
        let c = DataFlowerConfig::default().with_container_spec(ContainerSpec::with_memory_mb(640));
        assert_eq!(c.container_spec.memory_mb, 640);
    }
}
