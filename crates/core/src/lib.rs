//! # dataflower
//!
//! A Rust implementation of **DataFlower** — the data-flow paradigm for
//! serverless workflow orchestration (Li, Xu et al., ASPLOS).
//!
//! The control-flow paradigm used by mainstream serverless platforms
//! triggers a function only when its predecessors *complete*, forces all
//! intermediate data through backend storage, and serializes compute and
//! communication inside each container. DataFlower removes all three
//! bottlenecks:
//!
//! * each container is split into a **Function Logic Unit** (FLU: the
//!   computation) and a **Data Logic Unit** (DLU: asynchronous output
//!   shipping) so compute and communication overlap — see
//!   [`DataFlowerEngine`];
//! * functions trigger on **data availability** the moment their inputs
//!   land in the host's [`WaitMatchMemory`] data sink — out-of-order,
//!   early, with no central state machine;
//! * data moves through **pipe connectors** ([`choose_pipe`]): a direct
//!   socket under 16 KiB, a local pipe when co-located, and a streaming
//!   remote pipe otherwise, checkpointed for fault recovery
//!   ([`CheckpointSchedule`]);
//! * **pressure-aware scaling** ([`pressure_secs`], Eq. 1) blocks an FLU
//!   whose DLU cannot drain and scales containers out instead of queuing.
//!
//! The engine runs over the simulated cluster substrate of
//! [`dataflower_cluster`]; the companion crate `dataflower-rt` executes
//! the same FLU/DLU programming model with real threads and bytes.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use dataflower::{DataFlowerConfig, DataFlowerEngine};
//! use dataflower_cluster::{run_to_idle, ClusterConfig, SpreadPlacement, World};
//! use dataflower_sim::SimTime;
//! use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder, MB};
//!
//! // A fan-out/fan-in workflow: start → {count×2} → merge.
//! let mut b = WorkflowBuilder::new("wordcount");
//! let start = b.function("start", WorkModel::fixed(0.01));
//! let merge = b.function("merge", WorkModel::fixed(0.01));
//! b.client_input(start, "text", SizeModel::Fixed(2.0 * MB));
//! for i in 0..2 {
//!     let count = b.function(format!("count_{i}"), WorkModel::new(0.0, 0.02));
//!     b.edge(start, count, "file", SizeModel::ScaleOfInput(0.5));
//!     b.edge(count, merge, "counts", SizeModel::ScaleOfInput(0.1));
//! }
//! b.client_output(merge, "result", SizeModel::Fixed(1024.0));
//! let wf = Arc::new(b.build()?);
//!
//! let mut world = World::new(ClusterConfig::default());
//! let id = world.add_workflow(wf);
//! world.submit_request(id, 2.0 * MB, SimTime::ZERO);
//!
//! let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
//! let report = run_to_idle(&mut world, &mut engine);
//! assert_eq!(report.primary().completed, 1);
//! assert!(report.primary().latency.mean() > 0.0);
//! # Ok::<(), dataflower_workflow::WorkflowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod pipe;
mod pressure;
mod sink;

pub use config::DataFlowerConfig;
pub use engine::{DataFlowerEngine, DecisionEvent, FaultEvent};
pub use pipe::{choose_pipe, CheckpointSchedule, PipeKind};
pub use pressure::{pressure_secs, RunningAvg};
pub use sink::{SinkEntry, Tier, WaitMatchMemory};
