//! The decentralized data-flow workflow engine (§4–§7).
//!
//! One [`DataFlowerEngine`] plays the role of the per-node engines of
//! Fig. 4: it parses the data-flow graph, watches data availability in the
//! per-node sinks, triggers FLUs the moment their inputs are complete,
//! ships DLU outputs through pipe connectors, applies pressure-aware
//! scaling, and enforces the consistency-aware keep-alive rule.
//!
//! The engine is event-driven: the [`dataflower_cluster::run`] driver
//! feeds it request arrivals, cold-start completions, compute
//! completions, transfer completions and timers.

use std::collections::{BTreeMap, VecDeque};

use dataflower_cluster::{
    ContainerId, NodeId, Orchestrator, Placement, RequestId, Route, TransferDone, TriggerKind,
    TriggerRecord, WfId, World,
};
use dataflower_sim::{EventId, SimDuration, SimTime, Trace};
use dataflower_workflow::{EdgeId, Endpoint, FnId};

use crate::config::DataFlowerConfig;
use crate::pipe::{choose_pipe, PipeKind};
use crate::pressure::{pressure_secs, RunningAvg};
use crate::sink::{Tier, WaitMatchMemory};

/// Engine-private correlation tokens carried through the world's opaque
/// `u64` token/tag channel.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Token {
    /// FLU computation of `(req, func)` finished.
    Compute { req: RequestId, func: FnId },
    /// Mid-function `DLU.Put`: ship the outputs of `(req, func)` from
    /// `container`.
    DluPut {
        req: RequestId,
        func: FnId,
        container: ContainerId,
    },
    /// Pressure block on `container` elapsed.
    Unblock { container: ContainerId },
    /// Keep-alive window of `container` elapsed.
    KeepAlive { container: ContainerId },
    /// Sink entry TTL elapsed (passive expire).
    TtlExpire {
        req: RequestId,
        func: FnId,
        edge: EdgeId,
    },
    /// An intermediate-data transfer arrived at its destination node.
    EdgeFlow {
        req: RequestId,
        edge: EdgeId,
        src: Option<ContainerId>,
        raw_bytes: f64,
    },
    /// A workflow result reached the client.
    ClientOut { req: RequestId },
    /// ReDo a faulted invocation (§6.2).
    Retrigger { req: RequestId, func: FnId },
    /// Autoscaler cooldown elapsed: retry dispatch/scale-out for a pool.
    Pump { wf: WfId, func: FnId },
}

#[derive(Debug, Default)]
struct Tokens {
    slab: Vec<Token>,
}

impl Tokens {
    fn mint(&mut self, t: Token) -> u64 {
        self.slab.push(t);
        (self.slab.len() - 1) as u64
    }
    fn get(&self, id: u64) -> Token {
        self.slab[id as usize]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for input data.
    Waiting,
    /// All inputs ready; queued for a container.
    Queued,
    /// FLU running.
    Running,
    /// FLU finished (DLU may still be pumping).
    Finished,
}

#[derive(Debug)]
struct Invocation {
    missing_inputs: usize,
    phase: Phase,
    compute_started: SimTime,
    /// Set after a data-plane fault: the retry resumes its pipe transfers
    /// from the last checkpoint instead of resending everything.
    resume_from_checkpoint: bool,
    /// The current run is doomed to a data-plane fault (test injection).
    faulted_run: bool,
}

#[derive(Debug)]
struct Pool {
    home: NodeId,
    members: Vec<ContainerId>,
    idle: VecDeque<ContainerId>,
    starting: usize,
    queue: VecDeque<RequestId>,
    /// Autoscaler ramp: earliest instant the next scale-out may happen.
    next_scale_ok: SimTime,
    /// A cooldown-retry timer is already armed.
    pump_armed: bool,
}

#[derive(Debug)]
struct ReqState {
    outputs_missing: usize,
}

/// The DataFlower orchestration engine.
///
/// # Examples
///
/// Run one request of a two-stage workflow end to end:
///
/// ```
/// use std::sync::Arc;
/// use dataflower::{DataFlowerConfig, DataFlowerEngine};
/// use dataflower_cluster::{run_to_idle, ClusterConfig, SpreadPlacement, World};
/// use dataflower_sim::SimTime;
/// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder, MB};
///
/// let mut b = WorkflowBuilder::new("two-stage");
/// let a = b.function("a", WorkModel::new(0.02, 0.01));
/// let z = b.function("z", WorkModel::new(0.02, 0.01));
/// b.client_input(a, "in", SizeModel::Fixed(MB));
/// b.edge(a, z, "mid", SizeModel::ScaleOfInput(0.5));
/// b.client_output(z, "out", SizeModel::Fixed(1024.0));
/// let wf = Arc::new(b.build()?);
///
/// let mut world = World::new(ClusterConfig::default());
/// let wf_id = world.add_workflow(wf);
/// world.submit_request(wf_id, MB, SimTime::ZERO);
///
/// let mut engine =
///     DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
/// let report = run_to_idle(&mut world, &mut engine);
/// assert_eq!(report.primary().completed, 1);
/// # Ok::<(), dataflower_workflow::WorkflowError>(())
/// ```
#[derive(Debug)]
pub struct DataFlowerEngine<P> {
    cfg: DataFlowerConfig,
    placement: P,
    tokens: Tokens,
    sinks: Vec<WaitMatchMemory>,
    pools: BTreeMap<(WfId, FnId), Pool>,
    container_pool_key: BTreeMap<ContainerId, (WfId, FnId)>,
    invocations: BTreeMap<(RequestId, FnId), Invocation>,
    requests: BTreeMap<RequestId, ReqState>,
    t_flu: BTreeMap<(WfId, FnId), RunningAvg>,
    /// Pressure accumulated while the container's FLU was still busy.
    pending_block: BTreeMap<ContainerId, SimDuration>,
    blocked: BTreeMap<ContainerId, ()>,
    keep_alive: BTreeMap<ContainerId, EventId>,
    dlu_outstanding: BTreeMap<ContainerId, usize>,
    fault_plan: BTreeMap<(RequestId, FnId), ()>,
    redo_count: u64,
    /// Timestamped §6.2 fault/ReDo events — the simulator-side mirror of
    /// the live runtime's crash/recovery counters.
    fault_timeline: Trace<FaultEvent>,
    /// Timestamped scheduling decisions (invocations, §7 pipe choices),
    /// recorded only when [`DataFlowerConfig::record_decisions`] is set —
    /// what trace replay diffs against a live recording.
    decision_timeline: Trace<DecisionEvent>,
    pressure_blocks: u64,
    comm_secs_total: f64,
    comm_ops: u64,
}

/// One scheduling decision of the simulated engine, timestamped in
/// simulated time on [`DataFlowerEngine::decision_timeline`] when
/// [`DataFlowerConfig::record_decisions`] is set.
///
/// These are exactly the deterministic decisions a live
/// (`dataflower-rt`) run records in its event trace, so a recorded trace
/// can be replayed through the simulator and the two timelines compared
/// event for event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionEvent {
    /// The engine dispatched `(req, func)` to a container (FLU start).
    Invoke {
        /// The invoking request.
        req: RequestId,
        /// The function dispatched.
        func: FnId,
    },
    /// The DLU classified one inter-function transfer through the §7
    /// three-way pipe choice.
    PipeChoice {
        /// The request the transfer belongs to.
        req: RequestId,
        /// The workflow edge shipped.
        edge: EdgeId,
        /// The chosen pipe kind.
        kind: PipeKind,
        /// The transfer's raw size in bytes.
        bytes: f64,
    },
}

/// One §6.2 fault-recovery event observed by the simulated engine,
/// timestamped in simulated time on [`DataFlowerEngine::fault_timeline`]
/// — the simulator-side mirror of the live runtime's crash/recovery
/// counters (`node_crashes`, `recovered_transfers`, ...), so the two
/// execution paths expose one fault-observability model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A planned data-plane fault hit as the invocation's run ended: its
    /// un-checkpointed outputs are lost.
    Fault {
        /// The faulted request.
        req: RequestId,
        /// The function whose data plane was interrupted.
        func: FnId,
    },
    /// The engine re-queued the faulted invocation (ReDo); its pipe
    /// transfers resume from the last checkpoint mark.
    Redo {
        /// The recovering request.
        req: RequestId,
        /// The function being ReDone.
        func: FnId,
    },
}

impl<P: Placement> DataFlowerEngine<P> {
    /// Creates an engine with the given configuration and placement
    /// policy.
    pub fn new(cfg: DataFlowerConfig, placement: P) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.stream_fraction),
            "stream_fraction must be in [0, 1]"
        );
        assert!(cfg.alpha >= 1.0, "α is a loss factor; must be ≥ 1");
        DataFlowerEngine {
            cfg,
            placement,
            tokens: Tokens::default(),
            sinks: Vec::new(),
            pools: BTreeMap::new(),
            container_pool_key: BTreeMap::new(),
            invocations: BTreeMap::new(),
            requests: BTreeMap::new(),
            t_flu: BTreeMap::new(),
            pending_block: BTreeMap::new(),
            blocked: BTreeMap::new(),
            keep_alive: BTreeMap::new(),
            dlu_outstanding: BTreeMap::new(),
            fault_plan: BTreeMap::new(),
            redo_count: 0,
            fault_timeline: Trace::new(),
            decision_timeline: Trace::new(),
            pressure_blocks: 0,
            comm_secs_total: 0.0,
            comm_ops: 0,
        }
    }

    /// Plans a one-shot data-plane fault: the named invocation's DLU
    /// output is interrupted, forcing a checkpointed ReDo (§6.2). Used by
    /// fault-tolerance tests.
    pub fn inject_fault(&mut self, req: RequestId, func: FnId) {
        self.fault_plan.insert((req, func), ());
    }

    /// Number of ReDo recoveries performed.
    pub fn redo_count(&self) -> u64 {
        self.redo_count
    }

    /// Timestamped fault and ReDo events (§6.2), in simulated-time order
    /// — one [`FaultEvent::Fault`] when an injected fault hits, one
    /// [`FaultEvent::Redo`] when the engine re-queues the invocation.
    pub fn fault_timeline(&self) -> &Trace<FaultEvent> {
        &self.fault_timeline
    }

    /// Timestamped scheduling decisions (FLU dispatches and §7 pipe
    /// choices), in simulated-time order. Empty unless
    /// [`DataFlowerConfig::record_decisions`] was set.
    pub fn decision_timeline(&self) -> &Trace<DecisionEvent> {
        &self.decision_timeline
    }

    /// Number of pressure-induced FLU blocks (§5.2 telemetry).
    pub fn pressure_block_count(&self) -> u64 {
        self.pressure_blocks
    }

    /// Mean seconds per pipe-connector transfer and the transfer count
    /// (the Fig. 19 function-to-function communication time).
    pub fn comm_time(&self) -> (f64, u64) {
        if self.comm_ops == 0 {
            (0.0, 0)
        } else {
            (self.comm_secs_total / self.comm_ops as f64, self.comm_ops)
        }
    }

    /// Bytes currently resident across all node sinks' memory tier.
    pub fn sink_resident_bytes(&self) -> f64 {
        self.sinks.iter().map(|s| s.resident_memory_bytes()).sum()
    }

    fn ensure_sinks(&mut self, world: &World) {
        while self.sinks.len() < world.node_count() {
            self.sinks.push(WaitMatchMemory::new());
        }
    }

    fn home_node(&mut self, world: &World, wf: WfId, func: FnId) -> NodeId {
        if let Some(pool) = self.pools.get(&(wf, func)) {
            return pool.home;
        }
        let home = self.placement.node_for(world, wf, func);
        self.pools.insert(
            (wf, func),
            Pool {
                home,
                members: Vec::new(),
                idle: VecDeque::new(),
                starting: 0,
                queue: VecDeque::new(),
                next_scale_ok: SimTime::ZERO,
                pump_armed: false,
            },
        );
        home
    }

    /// Delivers `raw_bytes` for `edge` into the destination node's sink
    /// and triggers the destination if its inputs are now complete.
    fn deliver_edge(&mut self, world: &mut World, req: RequestId, edge: EdgeId, raw_bytes: f64) {
        let wf = world.request(req).wf;
        let graph = std::sync::Arc::clone(world.workflow(wf));
        let e = graph.edge(edge);
        let dst = match e.target {
            Endpoint::Function(f) => f,
            Endpoint::Client => unreachable!("client edges use ClientOut tokens"),
        };
        let node = self.home_node(world, wf, dst);
        self.ensure_sinks(world);
        let prev = self.sinks[node.index()].insert(req, dst, edge, raw_bytes, world.now());
        if let Some(p) = prev {
            // Duplicate delivery (e.g. a retry): replace the accounting.
            if p.tier == Tier::Memory {
                world.cache_remove(p.bytes);
            }
        }
        world.cache_add(raw_bytes);
        // Passive-expire timer; a no-op if consumed first.
        let token = self.tokens.mint(Token::TtlExpire {
            req,
            func: dst,
            edge,
        });
        world.timer(self.cfg.sink_ttl, token);

        world.request_mut(req).input_bytes[dst.index()] += raw_bytes;
        let inv = self
            .invocations
            .get_mut(&(req, dst))
            .expect("invocation exists for active function");
        debug_assert!(inv.missing_inputs > 0, "over-delivery on {req} {dst}");
        inv.missing_inputs -= 1;
        if inv.missing_inputs == 0 && inv.phase == Phase::Waiting {
            inv.phase = Phase::Queued;
            world.note_trigger(TriggerRecord {
                req,
                wf,
                func: dst,
                kind: TriggerKind::Ready,
            });
            self.enqueue(world, req, dst);
        }
    }

    fn enqueue(&mut self, world: &mut World, req: RequestId, func: FnId) {
        let wf = world.request(req).wf;
        self.home_node(world, wf, func); // ensure pool
        let pool = self.pools.get_mut(&(wf, func)).expect("pool ensured");
        pool.queue.push_back(req);
        self.pump(world, wf, func);
    }

    /// Dispatches queued invocations to idle containers and scales out
    /// when the pool is dry.
    fn pump(&mut self, world: &mut World, wf: WfId, func: FnId) {
        loop {
            let pool = self.pools.get_mut(&(wf, func)).expect("pool exists");
            if pool.queue.is_empty() {
                return;
            }
            let Some(c) = pool.idle.pop_front() else {
                break;
            };
            let req = pool.queue.pop_front().expect("queue non-empty");
            self.start_invocation(world, c, req, func);
        }
        self.scale_out(world, wf, func);
    }

    /// Reactive, rate-limited autoscaling: at most one cold start per
    /// cooldown window per function. A suppressed attempt arms a retry
    /// timer so queued invocations are never stranded.
    fn scale_out(&mut self, world: &mut World, wf: WfId, func: FnId) {
        let spec = self.cfg.container_spec;
        let max = self.cfg.max_containers_per_function;
        let now = world.now();
        let (want, home, gated) = {
            let pool = self.pools.get_mut(&(wf, func)).expect("pool exists");
            let want = pool.queue.len();
            if want <= pool.starting || pool.members.len() + pool.starting >= max {
                return;
            }
            (want, pool.home, now < pool.next_scale_ok)
        };
        if gated {
            self.arm_pump(world, wf, func);
            return;
        }
        // On Err the node is exhausted; invocations wait for idles.
        if let Ok(c) = world.start_container(home, wf, func, spec) {
            let cooldown = self.cfg.scale_cooldown;
            let pool = self.pools.get_mut(&(wf, func)).expect("pool exists");
            pool.starting += 1;
            pool.next_scale_ok = now + cooldown;
            self.container_pool_key.insert(c, (wf, func));
            if want > pool.starting {
                self.arm_pump(world, wf, func);
            }
        }
    }

    fn arm_pump(&mut self, world: &mut World, wf: WfId, func: FnId) {
        let delay = {
            let pool = self.pools.get_mut(&(wf, func)).expect("pool exists");
            if pool.pump_armed {
                return;
            }
            pool.pump_armed = true;
            pool.next_scale_ok
                .saturating_duration_since(world.now())
                .max(SimDuration::from_millis(1))
        };
        let t = self.tokens.mint(Token::Pump { wf, func });
        world.timer(delay, t);
    }

    fn start_invocation(&mut self, world: &mut World, c: ContainerId, req: RequestId, func: FnId) {
        let wf = world.request(req).wf;
        let graph = std::sync::Arc::clone(world.workflow(wf));
        // Cancel the keep-alive while the container works.
        if let Some(ev) = self.keep_alive.remove(&c) {
            world.cancel_timer(ev);
        }
        // Load (and proactively release) the inputs from the local sink.
        let node = world.container(c).node;
        self.ensure_sinks(world);
        let taken = self.sinks[node.index()].take_inputs(req, func);
        let mut spilled = 0usize;
        for (_, entry) in &taken {
            match entry.tier {
                Tier::Memory => world.cache_remove(entry.bytes),
                Tier::Disk => spilled += 1,
            }
        }
        let input_bytes = world.request(req).input_bytes[func.index()];
        let work = graph.function(func).work.core_secs(input_bytes);
        let cores = world.container(c).spec.cores();
        let disk_penalty_core_secs =
            spilled as f64 * self.cfg.disk_reload_latency.as_secs_f64() * cores;
        let total_work = work + disk_penalty_core_secs;

        // A planned data-plane fault dooms this run: its outputs are lost
        // and the invocation will be ReDone from the last checkpoint.
        let doomed = self.fault_plan.remove(&(req, func)).is_some();
        let inv = self
            .invocations
            .get_mut(&(req, func))
            .expect("invocation exists");
        inv.phase = Phase::Running;
        inv.compute_started = world.now();
        if doomed {
            inv.faulted_run = true;
            inv.resume_from_checkpoint = true;
        }
        world.note_trigger(TriggerRecord {
            req,
            wf,
            func,
            kind: TriggerKind::Started,
        });
        if self.cfg.record_decisions {
            self.decision_timeline
                .record(world.now(), DecisionEvent::Invoke { req, func });
        }
        let token = self.tokens.mint(Token::Compute { req, func });
        world.begin_compute(c, total_work, token);

        // Data-availability prewarming (§10): this function's outputs are
        // now known to be coming; overlap the successors' cold starts
        // with the producer's compute and transfer.
        if self.cfg.prewarm {
            self.prewarm_successors(world, wf, func);
        }

        // Mid-function DLU.Put (§5.1): outputs start flowing at
        // stream_fraction of the expected compute time. A doomed run ships
        // nothing — its data plane is interrupted.
        if !doomed {
            let expected_secs = total_work / cores;
            let put_delay = SimDuration::from_secs_f64(expected_secs * self.cfg.stream_fraction);
            let put = self.tokens.mint(Token::DluPut {
                req,
                func,
                container: c,
            });
            world.timer(put_delay, put);
        }
    }

    /// Cold-starts one container for every active successor of `func`
    /// that currently has none (and none starting) — the §10 prewarming
    /// policy driven by data dependencies instead of prediction.
    fn prewarm_successors(&mut self, world: &mut World, wf: WfId, func: FnId) {
        let graph = std::sync::Arc::clone(world.workflow(wf));
        let spec = self.cfg.container_spec;
        for succ in graph.successors(func) {
            let home = self.home_node(world, wf, succ);
            let pool = self.pools.get_mut(&(wf, succ)).expect("pool ensured");
            if !pool.members.is_empty() || pool.starting > 0 {
                continue;
            }
            if let Ok(c) = world.start_container(home, wf, succ, spec) {
                let pool = self.pools.get_mut(&(wf, succ)).expect("pool ensured");
                pool.starting += 1;
                self.container_pool_key.insert(c, (wf, succ));
            }
        }
    }

    /// Executes the DLU output phase of `(req, func)` from `container`,
    /// shipping every active function-to-function edge. Client results
    /// ship separately at compute end (a terminal's `end` signal cannot
    /// precede its completion).
    fn dlu_put(&mut self, world: &mut World, req: RequestId, func: FnId, container: ContainerId) {
        let wf = world.request(req).wf;
        let graph = std::sync::Arc::clone(world.workflow(wf));
        let input_bytes = world.request(req).input_bytes[func.index()];
        let src_node = world.container(container).node;
        let bw = world.container(container).spec.bandwidth_bytes_per_sec();
        let resume = self
            .invocations
            .get(&(req, func))
            .map(|i| i.resume_from_checkpoint)
            .unwrap_or(false);

        let mut pipe_bytes_total = 0.0;
        let active = world.request(req).active.clone();
        for eid in graph.outputs(func).to_vec() {
            if !active.edge_active(eid) {
                continue;
            }
            let e = graph.edge(eid);
            let raw = e.size.bytes(input_bytes);
            // After a fault, the pipe connector resumes from its last
            // checkpoint: only the tail is re-sent (§6.2).
            let send = if resume {
                self.cfg.checkpoint.resume_bytes(raw, raw * 0.5)
            } else {
                raw
            };
            match e.target {
                Endpoint::Client => {
                    // Shipped at compute end by `ship_client_outputs`.
                }
                Endpoint::Function(dst) => {
                    let dst_node = self.home_node(world, wf, dst);
                    let kind = choose_pipe(
                        raw,
                        world.config().direct_threshold_bytes,
                        dst_node == src_node,
                    );
                    if self.cfg.record_decisions {
                        self.decision_timeline.record(
                            world.now(),
                            DecisionEvent::PipeChoice {
                                req,
                                edge: eid,
                                kind,
                                bytes: raw,
                            },
                        );
                    }
                    let tag = self.tokens.mint(Token::EdgeFlow {
                        req,
                        edge: eid,
                        src: (kind != PipeKind::DirectSocket).then_some(container),
                        raw_bytes: raw,
                    });
                    match kind {
                        PipeKind::DirectSocket => {
                            world.transfer(Route::Direct, send, tag);
                        }
                        PipeKind::LocalPipe => {
                            // The local pipe is a memory path into the
                            // node's data sink; container TC shapes
                            // network traffic only, so no egress cap.
                            *self.dlu_outstanding.entry(container).or_insert(0) += 1;
                            world.transfer(
                                Route::Local {
                                    node: src_node,
                                    via_container: None,
                                },
                                send,
                                tag,
                            );
                        }
                        PipeKind::RemotePipe => {
                            pipe_bytes_total += raw;
                            *self.dlu_outstanding.entry(container).or_insert(0) += 1;
                            world.transfer(
                                Route::Remote {
                                    src: container,
                                    dst_node,
                                },
                                send * self.cfg.alpha,
                                tag,
                            );
                        }
                    }
                }
            }
        }

        // Pressure-aware scaling (§5.2, Eq. 1).
        if self.cfg.pressure_aware && pipe_bytes_total > 0.0 {
            let t_flu = self.t_flu.entry((wf, func)).or_default().get_or(
                graph.function(func).work.core_secs(input_bytes)
                    / world.container(container).spec.cores(),
            );
            let p = pressure_secs(self.cfg.alpha, pipe_bytes_total, bw, t_flu);
            if p > 0.0 {
                self.pressure_blocks += 1;
                let dur = SimDuration::from_secs_f64(p);
                self.apply_block(world, container, dur);
                // The engine scales out to absorb the invocations the
                // blocked FLU cannot serve.
                self.scale_out(world, wf, func);
            }
        }
    }

    fn apply_block(&mut self, world: &mut World, c: ContainerId, dur: SimDuration) {
        let key = self.container_pool_key[&c];
        let pool = self.pools.get_mut(&key).expect("pool exists");
        if let Some(pos) = pool.idle.iter().position(|x| *x == c) {
            // Idle right now: block immediately.
            pool.idle.remove(pos);
            self.blocked.insert(c, ());
            let token = self.tokens.mint(Token::Unblock { container: c });
            world.timer(dur, token);
        } else {
            // Still busy (or already blocked): apply when it frees up.
            let pending = self.pending_block.entry(c).or_insert(SimDuration::ZERO);
            *pending = (*pending).max(dur);
        }
    }

    fn make_available(&mut self, world: &mut World, c: ContainerId) {
        let key = self.container_pool_key[&c];
        if let Some(dur) = self.pending_block.remove(&c) {
            self.blocked.insert(c, ());
            let token = self.tokens.mint(Token::Unblock { container: c });
            world.timer(dur, token);
            return;
        }
        let pool = self.pools.get_mut(&key).expect("pool exists");
        pool.idle.push_back(c);
        // Arm the consistency-aware keep-alive (§6.2).
        let token = self.tokens.mint(Token::KeepAlive { container: c });
        let ev = world.timer(world.config().keep_alive, token);
        self.keep_alive.insert(c, ev);
        self.pump(world, key.0, key.1);
    }

    /// Ships the active client-result edges of `(req, func)` once its FLU
    /// completes.
    fn ship_client_outputs(&mut self, world: &mut World, req: RequestId, func: FnId) {
        let wf = world.request(req).wf;
        let graph = std::sync::Arc::clone(world.workflow(wf));
        let active = world.request(req).active.clone();
        let input_bytes = world.request(req).input_bytes[func.index()];
        for eid in graph.outputs(func).to_vec() {
            if !active.edge_active(eid) {
                continue;
            }
            let e = graph.edge(eid);
            if e.target != Endpoint::Client {
                continue;
            }
            let bytes = e.size.bytes(input_bytes);
            let tag = self.tokens.mint(Token::ClientOut { req });
            world.transfer(Route::Direct, bytes, tag);
        }
    }

    fn finish_request_output(&mut self, world: &mut World, req: RequestId) {
        let state = self.requests.get_mut(&req).expect("request state exists");
        debug_assert!(state.outputs_missing > 0);
        state.outputs_missing -= 1;
        if state.outputs_missing == 0 {
            world.complete_request(req);
        }
    }
}

impl<P: Placement> Orchestrator for DataFlowerEngine<P> {
    fn name(&self) -> &str {
        if self.cfg.pressure_aware {
            "DataFlower"
        } else {
            "DataFlower-Non-aware"
        }
    }

    fn on_request(&mut self, world: &mut World, req: RequestId) {
        self.ensure_sinks(world);
        let wf = world.request(req).wf;
        let graph = std::sync::Arc::clone(world.workflow(wf));
        let active = world.request(req).active.clone();

        // Materialize invocation state for every active function.
        for f in graph.function_ids() {
            if !active.function_active(f) {
                continue;
            }
            let missing = graph
                .inputs(f)
                .iter()
                .filter(|e| active.edge_active(**e))
                .count();
            self.invocations.insert(
                (req, f),
                Invocation {
                    missing_inputs: missing,
                    phase: Phase::Waiting,
                    compute_started: SimTime::ZERO,
                    resume_from_checkpoint: false,
                    faulted_run: false,
                },
            );
        }
        let outputs_missing = graph
            .client_outputs()
            .filter(|e| active.edge_active(*e))
            .count();
        self.requests.insert(req, ReqState { outputs_missing });
        if outputs_missing == 0 {
            // Degenerate (all results switched off): nothing to wait for.
            world.complete_request(req);
            return;
        }

        // The client payload is available instantly with the request.
        let payload = world.request(req).payload_bytes;
        for eid in graph.client_inputs().collect::<Vec<_>>() {
            if !active.edge_active(eid) {
                continue;
            }
            let bytes = graph.edge(eid).size.bytes(payload);
            self.deliver_edge(world, req, eid, bytes);
        }
    }

    fn on_cold_start_done(&mut self, world: &mut World, container: ContainerId) {
        let key = self.container_pool_key[&container];
        let pool = self.pools.get_mut(&key).expect("pool exists");
        pool.starting -= 1;
        pool.members.push(container);
        pool.idle.push_back(container);
        let token = self.tokens.mint(Token::KeepAlive { container });
        let ev = world.timer(world.config().keep_alive, token);
        self.keep_alive.insert(container, ev);
        self.pump(world, key.0, key.1);
    }

    fn on_compute_done(&mut self, world: &mut World, container: ContainerId, token: u64) {
        let Token::Compute { req, func } = self.tokens.get(token) else {
            panic!("compute token mismatch");
        };
        let wf = world.request(req).wf;
        let (started, doomed) = {
            let inv = self
                .invocations
                .get_mut(&(req, func))
                .expect("invocation exists");
            if inv.faulted_run {
                // The injected data-plane fault hits as the run ends: its
                // outputs are lost; ReDo from the last checkpoint (§6.2).
                inv.faulted_run = false;
                inv.phase = Phase::Queued;
                (inv.compute_started, true)
            } else {
                inv.phase = Phase::Finished;
                (inv.compute_started, false)
            }
        };
        if doomed {
            self.redo_count += 1;
            self.fault_timeline
                .record(world.now(), FaultEvent::Fault { req, func });
            let t = self.tokens.mint(Token::Retrigger { req, func });
            world.timer(self.cfg.redo_latency, t);
            self.make_available(world, container);
            return;
        }
        let dur = world.now().duration_since(started).as_secs_f64();
        self.t_flu.entry((wf, func)).or_default().push(dur);
        world.note_trigger(TriggerRecord {
            req,
            wf,
            func,
            kind: TriggerKind::Finished,
        });
        // Terminal results ship only once the FLU has finished.
        self.ship_client_outputs(world, req, func);
        // The FLU is free again (compute/communication overlap): it can
        // serve the next invocation while its DLU still pumps — unless a
        // pressure block is pending.
        self.make_available(world, container);
    }

    fn on_flow_done(&mut self, world: &mut World, done: TransferDone) {
        match self.tokens.get(done.tag) {
            Token::EdgeFlow {
                req,
                edge,
                src,
                raw_bytes,
            } => {
                if let Some(c) = src {
                    let n = self
                        .dlu_outstanding
                        .get_mut(&c)
                        .expect("outstanding tracked");
                    *n -= 1;
                }
                self.comm_secs_total += done.at.duration_since(done.started).as_secs_f64();
                self.comm_ops += 1;
                self.deliver_edge(world, req, edge, raw_bytes);
            }
            Token::ClientOut { req } => self.finish_request_output(world, req),
            other => panic!("unexpected flow token {other:?}"),
        }
    }

    fn on_timer(&mut self, world: &mut World, token: u64) {
        match self.tokens.get(token) {
            Token::DluPut {
                req,
                func,
                container,
            } => self.dlu_put(world, req, func, container),
            Token::Unblock { container } => {
                self.blocked.remove(&container);
                self.make_available(world, container);
            }
            Token::KeepAlive { container } => {
                // Consistency-aware recycling (§6.2): only when the FLU is
                // idle AND the DLU has no data left to pump.
                let outstanding = self.dlu_outstanding.get(&container).copied().unwrap_or(0);
                let key = self.container_pool_key[&container];
                let pool = self.pools.get_mut(&key).expect("pool exists");
                let idle_pos = pool.idle.iter().position(|c| *c == container);
                if let (Some(pos), 0) = (idle_pos, outstanding) {
                    pool.idle.remove(pos);
                    pool.members.retain(|c| *c != container);
                    self.keep_alive.remove(&container);
                    world.retire_container(container);
                } else {
                    // Still draining (or busy): re-arm the keep-alive.
                    let t = self.tokens.mint(Token::KeepAlive { container });
                    let ev = world.timer(world.config().keep_alive, t);
                    self.keep_alive.insert(container, ev);
                }
            }
            Token::TtlExpire { req, func, edge } => {
                let wf = world.request(req).wf;
                let node = self.home_node(world, wf, func);
                if let Some(bytes) = self.sinks[node.index()].spill(req, func, edge) {
                    world.cache_remove(bytes);
                }
            }
            Token::Retrigger { req, func } => {
                self.fault_timeline
                    .record(world.now(), FaultEvent::Redo { req, func });
                world.note_trigger(TriggerRecord {
                    req,
                    wf: world.request(req).wf,
                    func,
                    kind: TriggerKind::Ready,
                });
                self.enqueue(world, req, func);
            }
            Token::Pump { wf, func } => {
                self.pools
                    .get_mut(&(wf, func))
                    .expect("pool exists")
                    .pump_armed = false;
                self.pump(world, wf, func);
            }
            other => panic!("unexpected timer token {other:?}"),
        }
    }
}
