//! Pressure-aware function scaling (§5.2, Eq. 1).
//!
//! A DLU that drains slower than its FLU produces causes queuing (Fig. 6a).
//! DataFlower quantifies the imbalance as
//!
//! ```text
//! Pressure(FLU_f) = α · Size / Bw − T_FLU
//! ```
//!
//! where `Size` is the bytes handed to the DLU, `Bw` the container's
//! bandwidth, `α` the connector's loss factor and `T_FLU` the function's
//! average execution time. Positive pressure blocks the FLU for exactly
//! that long (capping its producing rate at the DLU's draining rate) and
//! asks the engine to scale out.

/// Computes Eq. 1 in seconds. Positive ⇒ backpressure.
///
/// # Examples
///
/// ```
/// use dataflower::pressure_secs;
///
/// // 5 MB through a 5 MB/s container with α=1.2 takes 1.2 s; the FLU
/// // only computed for 0.4 s → 0.8 s of backpressure.
/// let p = pressure_secs(1.2, 5e6, 5e6, 0.4);
/// assert!((p - 0.8).abs() < 1e-9);
///
/// // A compute-heavy FLU is never the bottleneck.
/// assert!(pressure_secs(1.2, 1e4, 5e6, 2.0) < 0.0);
/// ```
///
/// # Panics
///
/// Panics if `bw_bytes_per_sec` is not positive or any argument is not
/// finite.
pub fn pressure_secs(alpha: f64, size_bytes: f64, bw_bytes_per_sec: f64, t_flu_secs: f64) -> f64 {
    assert!(
        bw_bytes_per_sec.is_finite() && bw_bytes_per_sec > 0.0,
        "bandwidth must be positive"
    );
    assert!(alpha.is_finite() && size_bytes.is_finite() && t_flu_secs.is_finite());
    alpha * size_bytes / bw_bytes_per_sec - t_flu_secs
}

/// Incrementally maintained mean of a function's execution times (the
/// `T_FLU` term of Eq. 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningAvg {
    sum: f64,
    n: u64,
}

impl RunningAvg {
    /// Creates an empty average.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn push(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    /// The mean so far, or `default` before any observation (a fresh
    /// function has no history; engines seed it with the model estimate).
    pub fn get_or(&self, default: f64) -> f64 {
        if self.n == 0 {
            default
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_sign_matches_imbalance() {
        // Transfer slower than compute → positive.
        assert!(pressure_secs(1.0, 10e6, 5e6, 1.0) > 0.0);
        // Compute slower than transfer → negative.
        assert!(pressure_secs(1.0, 1e6, 5e6, 1.0) < 0.0);
        // Exactly balanced → zero.
        assert_eq!(pressure_secs(1.0, 5e6, 5e6, 1.0), 0.0);
    }

    #[test]
    fn alpha_scales_transfer_cost() {
        let p1 = pressure_secs(1.0, 5e6, 5e6, 0.0);
        let p2 = pressure_secs(2.0, 5e6, 5e6, 0.0);
        assert_eq!(p2, 2.0 * p1);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        pressure_secs(1.0, 1.0, 0.0, 1.0);
    }

    #[test]
    fn running_avg_behaviour() {
        let mut a = RunningAvg::new();
        assert_eq!(a.get_or(9.0), 9.0);
        a.push(1.0);
        a.push(3.0);
        assert_eq!(a.get_or(9.0), 2.0);
        assert_eq!(a.count(), 2);
    }
}
