//! Pipe connector selection and checkpointing (§7, §6.2).
//!
//! The DLU picks one of three data paths per §7:
//!
//! * payloads under 16 KiB bypass the pipe connector entirely and go over
//!   a direct socket;
//! * co-located functions use the node-local pipe;
//! * cross-node pairs use the streaming remote pipe connector.
//!
//! For fault tolerance (§6.2) the pipe connector checkpoints its stream
//! incrementally; after a fault, only bytes past the last checkpoint are
//! re-sent and the engine ReDoes the failed producer from there.

/// The three §7 data paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeKind {
    /// Direct socket for small payloads (no bandwidth modeling needed).
    DirectSocket,
    /// Intra-node local pipe into the data sink.
    LocalPipe,
    /// Cross-node streaming pipe connector.
    RemotePipe,
}

/// Chooses the data path for a transfer of `bytes` between a source and a
/// destination that are (or are not) on the same node.
///
/// # Examples
///
/// ```
/// use dataflower::{choose_pipe, PipeKind};
///
/// assert_eq!(choose_pipe(1024.0, 16384.0, false), PipeKind::DirectSocket);
/// assert_eq!(choose_pipe(1e6, 16384.0, true), PipeKind::LocalPipe);
/// assert_eq!(choose_pipe(1e6, 16384.0, false), PipeKind::RemotePipe);
/// ```
pub fn choose_pipe(bytes: f64, direct_threshold: f64, same_node: bool) -> PipeKind {
    if bytes < direct_threshold {
        PipeKind::DirectSocket
    } else if same_node {
        PipeKind::LocalPipe
    } else {
        PipeKind::RemotePipe
    }
}

/// Incremental checkpointing schedule of a pipe connector.
///
/// Checkpoints are taken every `interval_bytes` of confirmed stream
/// progress. After a fault mid-transfer, the stream resumes from the last
/// checkpoint, so the retransmission cost is bounded by the interval.
///
/// # Examples
///
/// ```
/// use dataflower::CheckpointSchedule;
///
/// let cp = CheckpointSchedule::new(1024.0);
/// // 2.5 KiB confirmed → last checkpoint at 2 KiB.
/// assert_eq!(cp.last_checkpoint(2560.0), 2048.0);
/// // A 10 KiB transfer interrupted at 2.5 KiB re-sends 8 KiB.
/// assert_eq!(cp.resume_bytes(10_240.0, 2560.0), 8192.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointSchedule {
    interval_bytes: f64,
}

impl CheckpointSchedule {
    /// Creates a schedule with the given checkpoint interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval_bytes` is not positive and finite.
    pub fn new(interval_bytes: f64) -> Self {
        assert!(
            interval_bytes.is_finite() && interval_bytes > 0.0,
            "checkpoint interval must be positive"
        );
        CheckpointSchedule { interval_bytes }
    }

    /// The checkpoint interval in bytes.
    pub fn interval_bytes(&self) -> f64 {
        self.interval_bytes
    }

    /// Byte offset of the last durable checkpoint after `transferred`
    /// bytes of confirmed progress.
    pub fn last_checkpoint(&self, transferred: f64) -> f64 {
        if transferred <= 0.0 {
            return 0.0;
        }
        (transferred / self.interval_bytes).floor() * self.interval_bytes
    }

    /// Bytes that must be (re-)sent to finish a `total`-byte transfer that
    /// failed after `transferred` confirmed bytes.
    pub fn resume_bytes(&self, total: f64, transferred: f64) -> f64 {
        (total - self.last_checkpoint(transferred.min(total))).max(0.0)
    }

    /// Number of checkpoint marks crossed when confirmed progress grows
    /// from `from` to `to` bytes — the marks a receiver acknowledges back
    /// to the sender so it can trim its §6.2 retention window.
    ///
    /// # Examples
    ///
    /// ```
    /// use dataflower::CheckpointSchedule;
    ///
    /// let cp = CheckpointSchedule::new(1024.0);
    /// assert_eq!(cp.marks_crossed(0.0, 1023.0), 0);
    /// assert_eq!(cp.marks_crossed(0.0, 1024.0), 1);
    /// assert_eq!(cp.marks_crossed(1000.0, 4100.0), 4);
    /// assert_eq!(cp.marks_crossed(4100.0, 4100.0), 0);
    /// ```
    pub fn marks_crossed(&self, from: f64, to: f64) -> u64 {
        if to <= from {
            return 0;
        }
        let lo = self.last_checkpoint(from);
        let hi = self.last_checkpoint(to);
        ((hi - lo) / self.interval_bytes).round().max(0.0) as u64
    }
}

impl Default for CheckpointSchedule {
    /// 256 KiB between checkpoints.
    fn default() -> Self {
        CheckpointSchedule::new(256.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_choice_boundaries() {
        // Exactly at the threshold uses the pipe (paper: "under 16K").
        assert_eq!(choose_pipe(16384.0, 16384.0, true), PipeKind::LocalPipe);
        assert_eq!(choose_pipe(16383.9, 16384.0, false), PipeKind::DirectSocket);
        assert_eq!(choose_pipe(0.0, 16384.0, false), PipeKind::DirectSocket);
    }

    #[test]
    fn checkpoints_quantize_progress() {
        let cp = CheckpointSchedule::new(100.0);
        assert_eq!(cp.last_checkpoint(0.0), 0.0);
        assert_eq!(cp.last_checkpoint(99.0), 0.0);
        assert_eq!(cp.last_checkpoint(100.0), 100.0);
        assert_eq!(cp.last_checkpoint(250.0), 200.0);
    }

    #[test]
    fn resume_bounded_by_interval() {
        let cp = CheckpointSchedule::new(100.0);
        for transferred in [0.0, 50.0, 149.0, 500.0, 999.0] {
            let resume = cp.resume_bytes(1000.0, transferred);
            let lost = resume - (1000.0 - transferred);
            assert!(lost < 100.0 + 1e-9, "lost={lost}");
            assert!(resume <= 1000.0);
        }
        // Progress past the end never goes negative.
        assert_eq!(cp.resume_bytes(1000.0, 1500.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        CheckpointSchedule::new(0.0);
    }

    #[test]
    fn marks_crossed_counts_every_interval_once() {
        let cp = CheckpointSchedule::new(100.0);
        // Walking 0..1000 in arbitrary steps crosses exactly 10 marks.
        let mut crossed = 0;
        let mut at = 0.0;
        for step in [37.0, 63.0, 100.0, 250.0, 1.0, 549.0] {
            let next = at + step;
            crossed += cp.marks_crossed(at, next);
            at = next;
        }
        assert_eq!(at, 1000.0);
        assert_eq!(crossed, 10);
        // Regression never counts negative marks.
        assert_eq!(cp.marks_crossed(500.0, 300.0), 0);
    }
}
