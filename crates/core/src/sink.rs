//! The per-node function data sink backed by **Wait-Match Memory** (§7).
//!
//! Before a destination function is triggered, its inbound intermediate
//! data has nowhere to go — the container may not even exist. Each host
//! node therefore keeps a data sink: a key-value store with the paper's
//! multi-level index `(RequestID, FunctionName, DataName)`, here
//! `(RequestId, FnId, EdgeId)`.
//!
//! # Striped layout
//!
//! The index is **striped by request**: entries live in one of
//! [`STRIPES`] ordered maps, selected by a multiplicative hash of the
//! `RequestId`. Every per-request operation (`take_inputs`,
//! `drop_request`, point lookups) touches exactly one stripe, so range
//! scans walk a map ~[`STRIPES`]× smaller than a flat index would be —
//! mirroring the lock-striped `ShardedSink` of the live runtime, where
//! the same layout removes lock contention. Cross-stripe aggregates
//! (`len`, residency gauges) are kept as scalars, not recomputed.
//!
//! Two mechanisms bound the sink's memory footprint:
//!
//! * **proactive release** — once the destination FLU has consumed an
//!   entry it is removed immediately ([`WaitMatchMemory::take_inputs`]);
//! * **passive expire** — entries that outlive a TTL are spilled to the
//!   function-exclusive disk tier ([`WaitMatchMemory::spill`]); a later
//!   consumer pays a reload penalty instead of RAM.

use std::collections::BTreeMap;

use dataflower_cluster::RequestId;
use dataflower_sim::SimTime;
use dataflower_workflow::{EdgeId, FnId};

/// Number of request-hash stripes of the Wait-Match index.
pub const STRIPES: usize = 16;

/// Multiplicative hash spreading request ids across stripes (sequential
/// ids stride cleanly; adversarial patterns still spread).
const HASH_MULT: u64 = 0x9e37_79b9_7f4a_7c15;

fn stripe_of(req: RequestId) -> usize {
    ((req.index() as u64).wrapping_mul(HASH_MULT) >> 32) as usize % STRIPES
}

/// Where a sink entry currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// In the node's Wait-Match memory.
    Memory,
    /// Spilled to the function-exclusive NVM/SSD after TTL expiry.
    Disk,
}

/// One cached piece of intermediate data awaiting its consumer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkEntry {
    /// Payload size in bytes.
    pub bytes: f64,
    /// When the data arrived at this node.
    pub arrived: SimTime,
    /// Memory or disk residency.
    pub tier: Tier,
}

/// The multi-level-indexed store of one node's data sink, striped by
/// request (see the module docs for the layout).
///
/// # Examples
///
/// ```
/// use dataflower::{Tier, WaitMatchMemory};
/// use dataflower_cluster::RequestId;
/// use dataflower_sim::SimTime;
/// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};
///
/// // Mint real ids from a workflow definition.
/// let mut b = WorkflowBuilder::new("w");
/// let f = b.function("f", WorkModel::fixed(0.1));
/// b.client_input(f, "in", SizeModel::Fixed(1.0));
/// b.client_output(f, "out", SizeModel::Fixed(1.0));
/// let wf = b.build()?;
/// let (fid, eid) = (f, wf.inputs(f)[0]);
///
/// let mut sink = WaitMatchMemory::new();
/// let req = RequestId::from_index(0);
/// sink.insert(req, fid, eid, 1024.0, SimTime::ZERO);
/// assert_eq!(sink.resident_memory_bytes(), 1024.0);
///
/// // The consumer takes everything for (req, f) — proactive release.
/// let taken = sink.take_inputs(req, fid);
/// assert_eq!(taken.len(), 1);
/// assert_eq!(sink.len(), 0);
/// # Ok::<(), dataflower_workflow::WorkflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WaitMatchMemory {
    stripes: Vec<BTreeMap<(RequestId, FnId, EdgeId), SinkEntry>>,
    count: usize,
    resident_memory: f64,
    resident_disk: f64,
    peak_memory: f64,
}

impl Default for WaitMatchMemory {
    fn default() -> Self {
        WaitMatchMemory {
            stripes: vec![BTreeMap::new(); STRIPES],
            count: 0,
            resident_memory: 0.0,
            resident_disk: 0.0,
            peak_memory: 0.0,
        }
    }
}

impl WaitMatchMemory {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached entries (memory + disk tiers).
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bytes currently resident in the memory tier.
    pub fn resident_memory_bytes(&self) -> f64 {
        self.resident_memory
    }

    /// Bytes currently resident on the disk tier.
    pub fn resident_disk_bytes(&self) -> f64 {
        self.resident_disk
    }

    /// Highest memory-tier residency observed.
    pub fn peak_memory_bytes(&self) -> f64 {
        self.peak_memory
    }

    /// Caches `bytes` for the destination `(req, func)` under `edge`.
    ///
    /// Returns the previous entry if one existed (duplicate delivery, e.g.
    /// a ReDo retry after a fault) — its accounting is replaced.
    pub fn insert(
        &mut self,
        req: RequestId,
        func: FnId,
        edge: EdgeId,
        bytes: f64,
        now: SimTime,
    ) -> Option<SinkEntry> {
        let prev = self.stripes[stripe_of(req)].insert(
            (req, func, edge),
            SinkEntry {
                bytes,
                arrived: now,
                tier: Tier::Memory,
            },
        );
        match prev {
            Some(p) => self.debit(p),
            None => self.count += 1,
        }
        self.resident_memory += bytes;
        self.peak_memory = self.peak_memory.max(self.resident_memory);
        prev
    }

    /// Looks up a single entry.
    pub fn get(&self, req: RequestId, func: FnId, edge: EdgeId) -> Option<&SinkEntry> {
        self.stripes[stripe_of(req)].get(&(req, func, edge))
    }

    /// Removes and returns **all** inputs cached for `(req, func)` — the
    /// proactive release path taken the moment the destination FLU loads
    /// its inputs. Scans only the request's stripe.
    pub fn take_inputs(&mut self, req: RequestId, func: FnId) -> Vec<(EdgeId, SinkEntry)> {
        let stripe = &mut self.stripes[stripe_of(req)];
        let keys: Vec<(RequestId, FnId, EdgeId)> = stripe
            .range((req, func, edge_min())..=(req, func, edge_max()))
            .map(|(k, _)| *k)
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            let e = stripe.remove(&k).expect("listed key exists");
            out.push((k.2, e));
        }
        self.count -= out.len();
        for (_, e) in &out {
            self.debit(*e);
        }
        out
    }

    /// Moves an entry to the disk tier (passive expire). Returns the bytes
    /// moved out of memory, or `None` if the entry is gone or already on
    /// disk.
    pub fn spill(&mut self, req: RequestId, func: FnId, edge: EdgeId) -> Option<f64> {
        let e = self.stripes[stripe_of(req)].get_mut(&(req, func, edge))?;
        if e.tier == Tier::Disk {
            return None;
        }
        e.tier = Tier::Disk;
        self.resident_memory -= e.bytes;
        self.resident_disk += e.bytes;
        Some(e.bytes)
    }

    /// Drops every entry of a request (fault cleanup). Scans only the
    /// request's stripe.
    pub fn drop_request(&mut self, req: RequestId) -> usize {
        let stripe = &mut self.stripes[stripe_of(req)];
        let keys: Vec<(RequestId, FnId, EdgeId)> = stripe
            .range((req, fn_min(), edge_min())..=(req, fn_max(), edge_max()))
            .map(|(k, _)| *k)
            .collect();
        let mut dropped = Vec::with_capacity(keys.len());
        for k in &keys {
            dropped.push(stripe.remove(k).expect("listed key exists"));
        }
        self.count -= dropped.len();
        for e in dropped {
            self.debit(e);
        }
        keys.len()
    }

    fn debit(&mut self, e: SinkEntry) {
        match e.tier {
            Tier::Memory => self.resident_memory -= e.bytes,
            Tier::Disk => self.resident_disk -= e.bytes,
        }
    }
}

// Range bounds over the ordered (RequestId, FnId, EdgeId) index.
fn edge_min() -> EdgeId {
    EdgeId::from_index(0)
}
fn edge_max() -> EdgeId {
    EdgeId::from_index(u32::MAX as usize)
}
fn fn_min() -> FnId {
    FnId::from_index(0)
}
fn fn_max() -> FnId {
    FnId::from_index(u32::MAX as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(i: usize) -> RequestId {
        RequestId::from_index(i)
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut s = WaitMatchMemory::new();
        s.insert(
            req(0),
            FnId::from_index(1),
            EdgeId::from_index(0),
            100.0,
            SimTime::ZERO,
        );
        s.insert(
            req(0),
            FnId::from_index(1),
            EdgeId::from_index(1),
            50.0,
            SimTime::ZERO,
        );
        s.insert(
            req(0),
            FnId::from_index(2),
            EdgeId::from_index(2),
            7.0,
            SimTime::ZERO,
        );
        s.insert(
            req(1),
            FnId::from_index(1),
            EdgeId::from_index(0),
            3.0,
            SimTime::ZERO,
        );
        assert_eq!(s.len(), 4);
        assert_eq!(s.resident_memory_bytes(), 160.0);

        let taken = s.take_inputs(req(0), FnId::from_index(1));
        assert_eq!(taken.len(), 2);
        assert_eq!(taken.iter().map(|(_, e)| e.bytes).sum::<f64>(), 150.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.resident_memory_bytes(), 10.0);
        // Other request's identical (fn, edge) untouched.
        assert!(s
            .get(req(1), FnId::from_index(1), EdgeId::from_index(0))
            .is_some());
    }

    #[test]
    fn spill_moves_tiers() {
        let mut s = WaitMatchMemory::new();
        s.insert(
            req(0),
            FnId::from_index(0),
            EdgeId::from_index(0),
            40.0,
            SimTime::ZERO,
        );
        assert_eq!(
            s.spill(req(0), FnId::from_index(0), EdgeId::from_index(0)),
            Some(40.0)
        );
        assert_eq!(s.resident_memory_bytes(), 0.0);
        assert_eq!(s.resident_disk_bytes(), 40.0);
        // Second spill is a no-op.
        assert_eq!(
            s.spill(req(0), FnId::from_index(0), EdgeId::from_index(0)),
            None
        );
        // Taking a spilled entry clears disk accounting.
        let taken = s.take_inputs(req(0), FnId::from_index(0));
        assert_eq!(taken[0].1.tier, Tier::Disk);
        assert_eq!(s.resident_disk_bytes(), 0.0);
    }

    #[test]
    fn duplicate_insert_replaces_accounting() {
        let mut s = WaitMatchMemory::new();
        s.insert(
            req(0),
            FnId::from_index(0),
            EdgeId::from_index(0),
            10.0,
            SimTime::ZERO,
        );
        let prev = s.insert(
            req(0),
            FnId::from_index(0),
            EdgeId::from_index(0),
            30.0,
            SimTime::from_secs(1),
        );
        assert_eq!(prev.unwrap().bytes, 10.0);
        assert_eq!(s.resident_memory_bytes(), 30.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn drop_request_clears_everything() {
        let mut s = WaitMatchMemory::new();
        for f in 0..3 {
            s.insert(
                req(5),
                FnId::from_index(f),
                EdgeId::from_index(f),
                1.0,
                SimTime::ZERO,
            );
        }
        s.insert(
            req(6),
            FnId::from_index(0),
            EdgeId::from_index(0),
            1.0,
            SimTime::ZERO,
        );
        assert_eq!(s.drop_request(req(5)), 3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.resident_memory_bytes(), 1.0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut s = WaitMatchMemory::new();
        s.insert(
            req(0),
            FnId::from_index(0),
            EdgeId::from_index(0),
            100.0,
            SimTime::ZERO,
        );
        s.take_inputs(req(0), FnId::from_index(0));
        s.insert(
            req(1),
            FnId::from_index(0),
            EdgeId::from_index(0),
            10.0,
            SimTime::ZERO,
        );
        assert_eq!(s.peak_memory_bytes(), 100.0);
    }

    #[test]
    fn stripe_colliding_requests_stay_separate() {
        // Requests 0 and STRIPES*k hash-collide or not — either way, the
        // index keys keep them apart and counts stay exact across many
        // requests landing on every stripe.
        let mut s = WaitMatchMemory::new();
        for r in 0..(STRIPES * 3) {
            s.insert(
                req(r),
                FnId::from_index(0),
                EdgeId::from_index(0),
                1.0,
                SimTime::ZERO,
            );
        }
        assert_eq!(s.len(), STRIPES * 3);
        for r in 0..(STRIPES * 3) {
            assert_eq!(s.drop_request(req(r)), 1);
        }
        assert!(s.is_empty());
        assert_eq!(s.resident_memory_bytes(), 0.0);
    }
}
