//! Behavioural tests of the DataFlower engine: early triggering,
//! compute/communication overlap, pressure-aware scaling, consistency-aware
//! keep-alive, passive expire and checkpointed ReDo.

use std::sync::Arc;

use dataflower::{DataFlowerConfig, DataFlowerEngine};
use dataflower_cluster::{
    run, run_to_idle, ClusterConfig, RequestId, SingleNodePlacement, SpreadPlacement, TriggerKind,
    World,
};
use dataflower_sim::{SimDuration, SimTime};
use dataflower_workflow::{SizeModel, WorkModel, Workflow, WorkflowBuilder, MB};

fn wordcount(fan_out: usize, input_mb: f64) -> Arc<Workflow> {
    let mut b = WorkflowBuilder::new("wc");
    let start = b.function("start", WorkModel::new(0.005, 0.002));
    let merge = b.function("merge", WorkModel::new(0.005, 0.01));
    b.client_input(start, "text", SizeModel::Fixed(input_mb * MB));
    for i in 0..fan_out {
        let count = b.function(format!("count_{i}"), WorkModel::new(0.002, 0.03));
        b.edge(
            start,
            count,
            "file",
            SizeModel::ScaleOfInput(1.0 / fan_out as f64),
        );
        b.edge(count, merge, "counts", SizeModel::ScaleOfInput(0.08));
    }
    b.client_output(merge, "result", SizeModel::Fixed(2048.0));
    Arc::new(b.build().unwrap())
}

fn pipeline(stages: usize, per_stage_secs: f64, edge_mb: f64) -> Arc<Workflow> {
    let mut b = WorkflowBuilder::new("pipe");
    let mut prev = None;
    let mut first = None;
    for i in 0..stages {
        let f = b.function(format!("s{i}"), WorkModel::fixed(per_stage_secs));
        if let Some(p) = prev {
            b.edge(p, f, format!("d{i}"), SizeModel::Fixed(edge_mb * MB));
        } else {
            first = Some(f);
        }
        prev = Some(f);
    }
    b.client_input(first.unwrap(), "in", SizeModel::Fixed(edge_mb * MB));
    b.client_output(prev.unwrap(), "out", SizeModel::Fixed(512.0));
    Arc::new(b.build().unwrap())
}

#[test]
fn single_request_completes() {
    let mut world = World::new(ClusterConfig::default());
    let wf = world.add_workflow(wordcount(4, 4.0));
    world.submit_request(wf, 4.0 * MB, SimTime::ZERO);
    let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
    let report = run_to_idle(&mut world, &mut engine);
    assert_eq!(report.primary().completed, 1);
    assert_eq!(report.primary().unfinished, 0);
    // Latency must at least cover a cold start plus some compute.
    assert!(report.primary().latency.mean() > 0.3);
}

#[test]
fn runs_are_deterministic() {
    let latency = |seed: u64| {
        let mut world = World::new(ClusterConfig::default().with_seed(seed));
        let wf = world.add_workflow(wordcount(4, 4.0));
        world.schedule_open_loop(wf, 4.0 * MB, 60.0, SimDuration::from_secs(30));
        let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
        let report = run(&mut world, &mut engine, SimTime::from_secs(90));
        (
            report.primary().completed,
            report.primary().latency.mean(),
            report.memory_gb_s,
        )
    };
    assert_eq!(latency(7), latency(7));
    let a = latency(7);
    let b = latency(8);
    assert!(a != b, "different seeds should differ: {a:?} vs {b:?}");
}

#[test]
fn early_triggering_starts_children_before_parent_finishes() {
    // With mid-function DLU.Put, a count function must *start* before the
    // start function *finishes* is too strong (transfer takes time), but a
    // child must become Ready before the parent's Finished + one full
    // transfer; we check the stronger paper property on a second request
    // where containers are warm: the child's Started precedes the
    // parent's Finished + trigger gap seen in control flow (~tens of ms).
    let mut cfg = ClusterConfig::single_node();
    cfg.trace_triggers = true;
    let mut world = World::new(cfg);
    let wf_def = pipeline(3, 0.5, 2.0);
    let wf = world.add_workflow(Arc::clone(&wf_def));
    world.submit_request(wf, 2.0 * MB, SimTime::ZERO);
    world.submit_request(wf, 2.0 * MB, SimTime::from_secs(20));
    let mut engine =
        DataFlowerEngine::new(DataFlowerConfig::default(), SingleNodePlacement::default());
    run_to_idle(&mut world, &mut engine);

    let s0 = wf_def.function_by_name("s0").unwrap();
    let s1 = wf_def.function_by_name("s1").unwrap();
    let req2 = RequestId::from_index(1);
    let mut s0_finished = None;
    let mut s1_started = None;
    for (t, rec) in world.trigger_trace().iter() {
        if rec.req == req2 && rec.func == s0 && rec.kind == TriggerKind::Finished {
            s0_finished = Some(*t);
        }
        if rec.req == req2 && rec.func == s1 && rec.kind == TriggerKind::Started {
            s1_started = Some(*t);
        }
    }
    let (s0f, s1s) = (s0_finished.unwrap(), s1_started.unwrap());
    // Early triggering: with streaming the successor starts before the
    // predecessor finished (paper Fig. 13).
    assert!(
        s1s < s0f,
        "expected early trigger: s1 started {s1s} vs s0 finished {s0f}"
    );
}

#[test]
fn pressure_blocks_fire_for_data_heavy_functions() {
    // A function whose output dwarfs its compute must trip Eq. 1.
    let mut b = WorkflowBuilder::new("heavy");
    let producer = b.function("producer", WorkModel::fixed(0.01));
    let consumer = b.function("consumer", WorkModel::fixed(0.01));
    b.client_input(producer, "in", SizeModel::Fixed(MB));
    // 8 MB through a 5 MB/s 128 MB container ≫ 10 ms of compute.
    b.edge(producer, consumer, "bulk", SizeModel::Fixed(8.0 * MB));
    b.client_output(consumer, "out", SizeModel::Fixed(128.0));
    let wf_def = Arc::new(b.build().unwrap());

    let mut world = World::new(ClusterConfig::default());
    let wf = world.add_workflow(wf_def);
    for i in 0..6 {
        world.submit_request(wf, MB, SimTime::from_millis(100 * i));
    }
    let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
    let report = run(&mut world, &mut engine, SimTime::from_secs(120));
    assert_eq!(report.primary().completed, 6);
    assert!(
        engine.pressure_block_count() > 0,
        "expected pressure blocks, got none"
    );
}

#[test]
fn non_aware_is_slower_under_data_heavy_load() {
    let run_with = |pressure_aware: bool| {
        let mut world = World::new(ClusterConfig::default());
        let wf = world.add_workflow(wordcount(4, 8.0));
        world.spawn_clients(wf, 8.0 * MB, 12);
        let cfg = if pressure_aware {
            DataFlowerConfig::default()
        } else {
            DataFlowerConfig::non_aware()
        };
        let mut engine = DataFlowerEngine::new(cfg, SpreadPlacement);
        let report = run(&mut world, &mut engine, SimTime::from_secs(300));
        report.primary().throughput_rpm
    };
    let aware = run_with(true);
    let non_aware = run_with(false);
    assert!(
        aware >= non_aware,
        "pressure-aware should not lose: aware={aware} non_aware={non_aware}"
    );
}

#[test]
fn fault_injection_triggers_redo_and_still_completes() {
    let wf_def = pipeline(3, 0.1, 1.0);
    let mut world = World::new(ClusterConfig::default());
    let wf = world.add_workflow(Arc::clone(&wf_def));
    let req = world.submit_request(wf, MB, SimTime::ZERO);
    let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
    engine.inject_fault(req, wf_def.function_by_name("s1").unwrap());
    let report = run_to_idle(&mut world, &mut engine);
    assert_eq!(report.primary().completed, 1);
    assert_eq!(engine.redo_count(), 1);

    // A fault adds latency relative to a clean run.
    let mut clean_world = World::new(ClusterConfig::default());
    let wf2 = clean_world.add_workflow(wf_def);
    clean_world.submit_request(wf2, MB, SimTime::ZERO);
    let mut clean_engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
    let clean = run_to_idle(&mut clean_world, &mut clean_engine);
    assert!(report.primary().latency.mean() > clean.primary().latency.mean());
}

#[test]
fn sink_ttl_spills_unconsumed_data() {
    // One stage produces data for a consumer that cannot start (no CPU
    // left? simpler: consumer work enormous and only one container): make
    // consumer's *other* input arrive very late so the first input sits in
    // the sink past its TTL.
    let mut b = WorkflowBuilder::new("late-merge");
    let fast = b.function("fast", WorkModel::fixed(0.01));
    let slow = b.function("slow", WorkModel::fixed(45.0 * 0.1)); // 45 s on 0.1 core
    let merge = b.function("merge", WorkModel::fixed(0.01));
    b.client_input(fast, "a", SizeModel::Fixed(MB));
    b.client_input(slow, "b", SizeModel::Fixed(1024.0));
    b.edge(fast, merge, "fast-out", SizeModel::Fixed(MB));
    b.edge(slow, merge, "slow-out", SizeModel::Fixed(1024.0));
    b.client_output(merge, "out", SizeModel::Fixed(128.0));
    let wf_def = Arc::new(b.build().unwrap());

    let cfg = DataFlowerConfig {
        sink_ttl: SimDuration::from_secs(5),
        ..DataFlowerConfig::default()
    };
    let mut world = World::new(ClusterConfig::default());
    let wf = world.add_workflow(wf_def);
    world.submit_request(wf, MB, SimTime::ZERO);
    let mut engine = DataFlowerEngine::new(cfg, SpreadPlacement);
    let report = run_to_idle(&mut world, &mut engine);
    assert_eq!(report.primary().completed, 1);
    // After the spill, the fast output no longer occupies memory: the
    // cache integral is far below "1 MB × 45 s".
    assert!(
        report.cache_mb_s < 0.5 * 45.0,
        "cache_mb_s={} suggests no spill happened",
        report.cache_mb_s
    );
}

#[test]
fn keep_alive_retires_idle_containers_but_not_draining_ones() {
    let cluster = ClusterConfig {
        keep_alive: SimDuration::from_secs(5),
        ..ClusterConfig::default()
    };
    let mut world = World::new(cluster);
    let wf = world.add_workflow(wordcount(2, 2.0));
    world.submit_request(wf, 2.0 * MB, SimTime::ZERO);
    let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
    let report = run_to_idle(&mut world, &mut engine);
    assert_eq!(report.primary().completed, 1);
    // Every container must eventually be retired by the keep-alive.
    assert!(world
        .containers()
        .iter()
        .all(|c| c.state() == dataflower_cluster::ContainerState::Retired));
}

#[test]
fn switch_workflows_run_exactly_one_branch() {
    let mut b = WorkflowBuilder::new("switchy");
    let gate = b.function("gate", WorkModel::fixed(0.01));
    let hot = b.function("hot", WorkModel::fixed(0.01));
    let cold = b.function("cold", WorkModel::fixed(0.01));
    b.client_input(gate, "in", SizeModel::Fixed(1024.0));
    b.switch_edge(gate, hot, "h", SizeModel::Fixed(64.0 * 1024.0), 0, 0);
    b.switch_edge(gate, cold, "c", SizeModel::Fixed(64.0 * 1024.0), 0, 1);
    b.client_output(hot, "out-h", SizeModel::Fixed(128.0));
    b.client_output(cold, "out-c", SizeModel::Fixed(128.0));
    let wf_def = Arc::new(b.build().unwrap());

    let mut world = World::new(ClusterConfig::default());
    let wf = world.add_workflow(wf_def);
    for i in 0..8 {
        world.submit_request(wf, 1024.0, SimTime::from_millis(200 * i));
    }
    let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
    let report = run_to_idle(&mut world, &mut engine);
    assert_eq!(report.primary().completed, 8);
}

#[test]
fn overlap_lets_one_container_pipeline_requests() {
    // Back-to-back requests into one pipeline stage: with FLU/DLU overlap
    // the second compute runs while the first transfer is still in
    // flight, so the total makespan is below the serialized sum.
    let wf_def = pipeline(2, 0.3, 4.0);
    let mut world = World::new(ClusterConfig::default());
    let wf = world.add_workflow(wf_def);
    for i in 0..4 {
        world.submit_request(wf, 4.0 * MB, SimTime::from_millis(10 * i));
    }
    let mut engine = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
    let report = run_to_idle(&mut world, &mut engine);
    assert_eq!(report.primary().completed, 4);
}

#[test]
fn prewarming_cuts_cold_request_latency() {
    // §10 future work: with data-availability prewarming, successor
    // containers cold-start while the producer computes and transfers,
    // so the first (cold) request finishes sooner.
    let latency = |prewarm: bool| {
        let wf_def = pipeline(4, 0.2, 2.0);
        let mut world = World::new(ClusterConfig::default());
        let wf = world.add_workflow(wf_def);
        world.submit_request(wf, 2.0 * MB, SimTime::ZERO);
        let cfg = if prewarm {
            DataFlowerConfig::default().with_prewarm()
        } else {
            DataFlowerConfig::default()
        };
        let mut engine = DataFlowerEngine::new(cfg, SpreadPlacement);
        let report = run_to_idle(&mut world, &mut engine);
        assert_eq!(report.primary().completed, 1);
        report.primary().latency.mean()
    };
    let cold = latency(false);
    let prewarmed = latency(true);
    assert!(
        prewarmed < cold,
        "prewarming should cut the cold path: {prewarmed:.3} !< {cold:.3}"
    );
}
