//! Calibration tests: under the centralized control-flow orchestrator the
//! benchmarks' communication share of end-to-end time must match the
//! paper's Fig. 2a characterization (img 26.0 %, vid 49.5 %, svd 35.3 %,
//! wc 89.2 %), and the average end-to-end latencies must fall in the
//! right ballpark (img ≈ 4 s, vid ≈ 8 s, svd ≈ 6 s, wc ≲ 1 s band).

use dataflower_baselines::{ControlFlowConfig, ControlFlowEngine};
use dataflower_cluster::{run_to_idle, ClusterConfig, SpreadPlacement, World};
use dataflower_sim::SimTime;
use dataflower_workloads::Benchmark;

/// Runs one solo request under the centralized orchestrator; returns
/// (comm share of comm+comp, mean end-to-end seconds).
fn characterize(b: Benchmark) -> (f64, f64) {
    let mut world = World::new(ClusterConfig::default().with_seed(1));
    let id = world.add_workflow(b.workflow());
    // A few sequential solo requests (warm after the first).
    for i in 0..3 {
        world.submit_request(id, b.default_payload(), SimTime::from_secs(40 * i));
    }
    let mut engine = ControlFlowEngine::new(ControlFlowConfig::centralized(), SpreadPlacement);
    let report = run_to_idle(&mut world, &mut engine);
    assert_eq!(report.primary().completed, 3, "{b} did not finish");
    let mut comm = 0.0;
    let mut comp = 0.0;
    for (_, fb) in engine.breakdown() {
        comm += fb.comm.values().iter().sum::<f64>();
        comp += fb.comp.values().iter().sum::<f64>();
    }
    (comm / (comm + comp), report.primary().latency.mean())
}

#[test]
fn comm_shares_match_fig2a() {
    let targets = [
        (Benchmark::Img, 0.260),
        (Benchmark::Vid, 0.495),
        (Benchmark::Svd, 0.353),
        (Benchmark::Wc, 0.892),
    ];
    for (b, target) in targets {
        let (share, e2e) = characterize(b);
        println!(
            "{b}: comm share {:.1}% (target {:.1}%), e2e {e2e:.2}s",
            share * 100.0,
            target * 100.0
        );
        assert!(
            (share - target).abs() < 0.03,
            "{b}: comm share {:.3} vs target {target:.3}",
            share
        );
    }
}

#[test]
fn e2e_latency_in_paper_band() {
    // Paper Fig. 2a / Fig. 10 ballparks (generous bands — the substrate
    // is a simulator, not the authors' testbed).
    let bands = [
        (Benchmark::Img, 2.0, 7.0),
        (Benchmark::Vid, 5.0, 13.0),
        (Benchmark::Svd, 4.0, 11.0),
        (Benchmark::Wc, 0.2, 1.6),
    ];
    for (b, lo, hi) in bands {
        let (_, e2e) = characterize(b);
        assert!(
            (lo..=hi).contains(&e2e),
            "{b}: e2e {e2e:.2}s outside [{lo}, {hi}]"
        );
    }
}
