//! Smoke test for the orchestrator control plane over the worker-process
//! TCP transport: `node_loss_relocation` runs the wordcount benchmark
//! with one OS process per node, `kill -9`s a worker mid-stream and
//! **never restarts it** — the coordinator's heartbeat pings detect the
//! death, relocate the dead worker's functions to the least-pressured
//! survivors, re-patch the routing tables and replay the in-flight
//! transfers, and the output must stay byte-identical.
//!
//! `harness = false` because this binary re-executes itself as the
//! cluster's worker processes: `serve_worker_if_spawned` must run
//! before anything else in `main`.

use dataflower_workloads::{Benchmark, FaultMode, Transport, WorkloadSpec};

fn main() {
    // Worker processes enter here, rebuild the benchmark runtime from
    // their tag, and never return.
    dataflower_workloads::serve_worker_if_spawned();

    let report = WorkloadSpec::new()
        .benchmark(Benchmark::Wc)
        .transport(Transport::Tcp)
        .faults(FaultMode::NodeLoss)
        .payload_bytes(128 * 1024)
        .requests(1)
        .run();
    let relocated = report
        .relocated()
        .expect("node-loss run reports relocations");
    assert_eq!(report.requests, 1);
    assert!(report.output_bytes > 0, "empty output");
    assert!(report.stats.node_losses >= 1);
    assert!(relocated > 0);
    println!(
        "orchestrator_smoke ok: {} request(s), {} output bytes, worker {} lost \
         permanently, {} function(s) relocated, {} transfers replayed",
        report.requests,
        report.output_bytes,
        report.victim().expect("node-loss run reports the victim"),
        relocated,
        report.stats.recovered_transfers,
    );
}
