//! Smoke test for the worker-process TCP fabric: `chaos_cluster_tcp`
//! runs the wordcount benchmark with one OS process per node over real
//! localhost sockets, `kill -9`s a worker mid-stream, restarts it, and
//! asserts byte-identical output plus a real resume-from-mark recovery.
//!
//! `harness = false` because this binary re-executes itself as the
//! cluster's worker processes: `serve_worker_if_spawned` must run
//! before anything else in `main`.

use std::time::Duration;

use dataflower_workloads::{Benchmark, FaultMode, ReportDetail, Transport, WorkloadSpec};

fn main() {
    // Worker processes enter here, rebuild the benchmark runtime from
    // their tag, and never return.
    dataflower_workloads::serve_worker_if_spawned();

    let report = WorkloadSpec::new()
        .benchmark(Benchmark::Wc)
        .transport(Transport::Tcp)
        .faults(FaultMode::ChaosCrashRestart)
        .payload_bytes(128 * 1024)
        .requests(1)
        .outage(Duration::from_millis(20))
        .run();
    let ReportDetail::Crash { victim, crash } = &report.detail else {
        panic!("chaos run must report the crash detail");
    };
    assert_eq!(report.requests, 1);
    assert!(report.output_bytes > 0, "empty output");
    assert!(crash.inflight_transfers > 0);
    assert!(crash.durable_bytes > 0);
    assert!(report.stats.recovered_transfers > 0);
    assert!(report.stats.resumed_from_mark_bytes > 0);
    assert!(report.stats.node_restarts >= 1);
    println!(
        "socket_smoke ok: {} request(s), {} output bytes, {} transfers replayed, \
         {} bytes resumed from checkpoint marks, crash+restart of worker {}",
        report.requests,
        report.output_bytes,
        report.stats.recovered_transfers,
        report.stats.resumed_from_mark_bytes,
        victim,
    );
}
