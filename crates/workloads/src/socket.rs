//! Worker-process TCP mode for the live benchmarks: the same chaos
//! scenario as the in-process chaos runner, but with every node a real
//! OS process and every fabric link a real `TcpStream` speaking the
//! versioned wire format — including a `kill -9` of a worker as the
//! ultimate crash, healed by restart-and-replay from the checkpoint
//! log and the senders' §6.2 retention windows.
//!
//! Any binary that launches a [`TcpCluster`] re-executes **itself** as
//! the workers, so its `main` must call [`serve_worker_if_spawned`]
//! first thing; the worker rebuilds the identical workflow from the
//! tag the coordinator passed and never returns.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dataflower_rt::{
    ByLevel, ClusterRtConfig, CrashReport, PlacementPolicy, RecoveryConfig, TcpCluster,
};
use dataflower_workflow::json;

use crate::benchmarks::Benchmark;
use crate::chaos::{chaos_rt_config, ChaosClusterConfig, ChaosClusterReport};
use crate::common::{live_input, run_verified};
use crate::live::live_builder;
use crate::node_loss::orchestrated_rt_config;

/// Which runtime tuning a TCP cluster (coordinator and workers alike)
/// derives from the worker tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpProfile {
    /// Default knobs with §6.2 recovery enabled and no fault
    /// injection — the smoke-test / example / benchmark path.
    Plain,
    /// The in-process chaos runner's knobs: small chunks and
    /// checkpoint intervals, 4 MiB/s links, seeded frame chaos.
    Chaos,
    /// The orchestrator control plane enabled on top of the streaming
    /// knobs (small chunks, shaped links, §6.2 recovery, no frame
    /// chaos): coordinator heartbeats over the control channel, node
    /// loss declared after missed beats, relocation of the dead
    /// worker's functions to the least-pressured survivors — the
    /// [`FaultMode::NodeLoss`](crate::FaultMode::NodeLoss)
    /// profile.
    Orchestrated,
}

impl TcpProfile {
    fn name(self) -> &'static str {
        match self {
            TcpProfile::Plain => "plain",
            TcpProfile::Chaos => "chaos",
            TcpProfile::Orchestrated => "orchestrated",
        }
    }

    /// The runtime config this profile stands for. Every process of the
    /// cluster calls this with the same arguments, so the topology-
    /// defining knobs (chunking, thresholds, recovery) agree everywhere.
    pub fn rt_config(self, seed: u64) -> ClusterRtConfig {
        match self {
            TcpProfile::Plain => ClusterRtConfig {
                recovery: RecoveryConfig {
                    enabled: true,
                    retransmit_timeout: Duration::from_millis(50),
                },
                ..ClusterRtConfig::default()
            },
            TcpProfile::Chaos => chaos_rt_config(seed),
            TcpProfile::Orchestrated => orchestrated_rt_config(),
        }
    }
}

/// Composes the worker tag: everything a worker process needs to
/// rebuild the coordinator's exact workflow, placement and config.
fn worker_tag(bench: Benchmark, nodes: usize, seed: u64, profile: TcpProfile) -> String {
    format!(
        "{{\"bench\":\"{}\",\"nodes\":{},\"seed\":{},\"profile\":\"{}\"}}",
        bench.name(),
        nodes,
        seed,
        profile.name()
    )
}

/// If this process was spawned as a TCP cluster worker (see
/// [`dataflower_rt::worker_env`]), rebuilds the benchmark cluster
/// described by the worker tag and serves it forever — **never
/// returning**. Otherwise returns immediately. Call this first thing in
/// the `main` of any binary that launches a benchmark [`TcpCluster`].
pub fn serve_worker_if_spawned() {
    let Some(env) = dataflower_rt::worker_env() else {
        return;
    };
    let tag = json::parse(env.tag()).expect("worker tag is JSON");
    let bench = match tag.get("bench").and_then(|b| b.as_str()).unwrap_or("") {
        "wc" => Benchmark::Wc,
        "vid" => Benchmark::Vid,
        "svd" => Benchmark::Svd,
        "img" => Benchmark::Img,
        other => panic!("worker tag names unknown benchmark `{other}`"),
    };
    let nodes = tag.get("nodes").and_then(|n| n.as_f64()).expect("nodes") as usize;
    let seed = tag.get("seed").and_then(|s| s.as_f64()).unwrap_or(0.0) as u64;
    let profile = match tag
        .get("profile")
        .and_then(|p| p.as_str())
        .unwrap_or("plain")
    {
        "chaos" => TcpProfile::Chaos,
        "orchestrated" => TcpProfile::Orchestrated,
        _ => TcpProfile::Plain,
    };
    let wf = bench.workflow();
    let placement = ByLevel.initial(&wf, nodes);
    let builder = live_builder(bench, wf, placement, profile.rt_config(seed));
    env.serve(builder)
}

/// The canonical client input of `bench` at the given payload size:
/// the client-edge name the workflow expects and the deterministic
/// payload the live benchmark bodies are calibrated for. Useful for
/// driving a [`launch_bench_cluster`] cluster by hand.
pub fn bench_input(bench: Benchmark, payload_bytes: usize) -> (&'static str, Vec<u8>) {
    live_input(bench, payload_bytes)
}

/// Launches `bench` as a worker-process TCP cluster under `profile`.
/// The calling binary must have invoked [`serve_worker_if_spawned`] at
/// the top of `main`.
pub fn launch_bench_cluster(
    bench: Benchmark,
    nodes: usize,
    seed: u64,
    profile: TcpProfile,
) -> std::io::Result<TcpCluster> {
    let wf = bench.workflow();
    let placement = ByLevel.initial(&wf, nodes);
    let tag = worker_tag(bench, nodes, seed, profile);
    TcpCluster::launch(wf, placement, profile.rt_config(seed), &tag)
}

/// The plain closed-loop TCP runner: `bench` as one OS process per node
/// under [`TcpProfile::Plain`], every request verified byte-for-byte —
/// the TCP twin of the in-process live runner.
/// Placement is the by-level spread the worker tag encodes;
/// `cfg.placement` and `cfg.rt` are ignored in favour of the profile.
pub(crate) fn run_live_tcp(
    bench: Benchmark,
    cfg: &crate::live::LiveClusterConfig,
    seed: u64,
) -> crate::live::LiveClusterReport {
    let cluster = launch_bench_cluster(bench, cfg.nodes, seed, TcpProfile::Plain)
        .expect("launch plain TCP cluster");
    let run = run_verified(
        "tcp live",
        bench,
        cfg.requests,
        cfg.payload_bytes,
        cfg.timeout,
        |name, payload| cluster.invoke(vec![(name, payload)]),
        || {},
        |req, timeout| cluster.wait(req, timeout),
    );
    let stats = cluster.stats();
    let nodes = cluster.node_count();
    cluster.shutdown();
    crate::live::LiveClusterReport {
        benchmark: bench.name(),
        nodes,
        requests: run.requests,
        elapsed: run.elapsed,
        output_bytes: run.output_bytes,
        stats,
    }
}

/// The TCP chaos runner — the body behind
/// [`WorkloadSpec`](crate::WorkloadSpec) with
/// [`FaultMode::ChaosCrashRestart`](crate::FaultMode::ChaosCrashRestart)
/// over [`Transport::Tcp`](crate::Transport::Tcp).
pub(crate) fn run_chaos_cluster_tcp(
    bench: Benchmark,
    cfg: &ChaosClusterConfig,
) -> ChaosClusterReport {
    assert!(cfg.nodes >= 2, "chaos_cluster_tcp needs a node to crash");
    let wf = bench.workflow();
    let placement = ByLevel.initial(&wf, cfg.nodes);
    let mut rt_cfg = chaos_rt_config(cfg.seed);
    rt_cfg.faults.seed = cfg.seed;
    let tag = worker_tag(bench, cfg.nodes, cfg.seed, TcpProfile::Chaos);
    let cluster = TcpCluster::launch(Arc::clone(&wf), placement, rt_cfg.clone(), &tag)
        .expect("launch TCP cluster");

    // Same victim rationale as the in-process scenario: node 1
    // receives the large fan-out intermediates over the streaming
    // remote pipe under the by-level spread.
    let victim = 1;

    let mut crash = None;
    let run = run_verified(
        "tcp chaos",
        bench,
        cfg.requests,
        cfg.payload_bytes,
        cfg.timeout,
        |name, payload| cluster.invoke(vec![(name, payload)]),
        || {
            crash = Some(hunt_kill(&cluster, victim, cfg.crash_deadline));
            std::thread::sleep(cfg.outage); // frames toward the dead process die here
            cluster
                .restart_worker(victim)
                .expect("restart killed worker");
        },
        |req, timeout| cluster.wait(req, timeout),
    );
    let crash = crash.expect("the kill hunt ran");
    let stats = cluster.stats();
    assert!(
        stats.recovered_transfers > 0,
        "tcp chaos {bench}: the reconnects replayed no transfers"
    );
    assert!(
        stats.resumed_from_mark_bytes > 0,
        "tcp chaos {bench}: recovery resumed from byte 0 instead of a checkpoint mark"
    );
    let nodes = cluster.node_count();
    cluster.shutdown();
    ChaosClusterReport {
        benchmark: bench.name(),
        nodes,
        requests: run.requests,
        elapsed: run.elapsed,
        output_bytes: run.output_bytes,
        victim,
        crash,
        stats,
    }
}

/// `kill -9`s `victim` once it is mid-reassembly past at least one
/// checkpoint mark — the TCP twin of the in-process `hunt_crash`, with
/// the probe an RPC over the control channel instead of a shared-memory
/// read.
///
/// The receiver-side probe alone is racy over real sockets: the victim
/// may have crossed a mark whose `AckMark` died in its out-queue or a
/// kernel buffer, in which case the senders would replay from byte 0.
/// So after the SIGKILL lands the hunt re-checks the *sender* side
/// ([`TcpCluster::sender_mid_stream`]) — once the victim is dead and
/// its last in-flight acks have drained, retention state is frozen
/// until the restart, making the check stable. A kill that misses
/// either condition restarts the worker and retries.
fn hunt_kill(cluster: &TcpCluster, victim: usize, deadline: Duration) -> CrashReport {
    let give_up = Instant::now() + deadline;
    loop {
        assert!(
            Instant::now() < give_up,
            "chaos_cluster_tcp: no crash window with a checkpoint-marked in-flight \
             transfer opened on worker {victim} — slow the links or grow the payload"
        );
        if let Some((inflight, durable)) = cluster.probe_worker(victim) {
            if inflight > 0 && durable > 0 {
                let report = cluster.kill_worker(victim);
                if report.was_up && report.inflight_transfers > 0 && report.durable_bytes > 0 {
                    // Let acks already on the wire from the now-dead
                    // victim drain, then confirm some sender still
                    // retains a mark-acked partial transfer toward it.
                    std::thread::sleep(Duration::from_millis(5));
                    if cluster.sender_mid_stream(victim, 1) {
                        return report;
                    }
                }
                // Killed at a bad moment: bring the worker back and
                // hunt again.
                cluster
                    .restart_worker(victim)
                    .expect("restart killed worker");
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}
