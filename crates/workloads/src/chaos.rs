//! Chaos scenarios on the live cluster runtime: the four paper
//! benchmarks executed under a seeded [`FaultPlan`] — dropped, duplicated
//! and delayed fabric frames — plus a mid-flight single-node crash and
//! restart, with §6.2 checkpoint recovery healing all of it.
//!
//! The runner asserts the whole fault-tolerance contract, not just
//! completion: every output must be **byte-identical** to a straight-line
//! reference computation, the restart must actually have replayed
//! incomplete transfers (`recovered_transfers > 0`), and the replay must
//! have resumed from the last acknowledged checkpoint mark rather than
//! byte 0 (`resumed_from_mark_bytes > 0`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use dataflower_rt::{
    ByLevel, ClusterRtConfig, ClusterRuntime, CrashReport, FaultPlan, LinkConfig, PlacementPolicy,
    RecoveryConfig, RtStats,
};

use crate::benchmarks::Benchmark;
use crate::common::run_verified;
use crate::live::live_runtime;

/// Runtime tuning of the chaos scenario: a lowered 4 KiB direct-socket
/// threshold plus small chunks (4 KiB) and checkpoint intervals (8 KiB)
/// so every benchmark's intermediates stream through the remote pipe and
/// cross several marks, links shaped to 4 MiB/s so a crash reliably
/// lands mid-stream, §6.2 recovery enabled with a 50 ms retransmit
/// timeout, and a seeded plan dropping 2 %, duplicating 2 % and delaying
/// 1 % of fabric frames.
pub(crate) fn chaos_rt_config(seed: u64) -> ClusterRtConfig {
    ClusterRtConfig {
        direct_threshold_bytes: 4 * 1024,
        chunk_bytes: 4 * 1024,
        checkpoint_interval_bytes: 8 * 1024,
        link: LinkConfig {
            bandwidth_bytes_per_sec: Some(4.0 * 1024.0 * 1024.0),
            ..LinkConfig::default()
        },
        recovery: RecoveryConfig {
            enabled: true,
            retransmit_timeout: Duration::from_millis(50),
        },
        faults: FaultPlan::seeded(seed)
            .frame_chaos(0.02, 0.02)
            .delay_frames(0.01, Duration::from_millis(1)),
        ..ClusterRtConfig::default()
    }
}

/// Parameters of a crash-and-restart chaos run
/// ([`FaultMode::ChaosCrashRestart`](crate::FaultMode::ChaosCrashRestart)).
#[derive(Debug, Clone)]
pub struct ChaosClusterConfig {
    /// Worker nodes in the topology (by-level spread, like the
    /// `live_cluster` baseline).
    pub nodes: usize,
    /// Concurrent requests to drive through the workflow.
    pub requests: usize,
    /// Client input payload size in bytes.
    pub payload_bytes: usize,
    /// Seed of the frame-chaos decisions: copied into the fault plan's
    /// seed (`rt.faults.seed`) when the run starts, so changing this
    /// field alone draws a different chaos sequence.
    pub seed: u64,
    /// How long the crashed node stays down before restart (frames
    /// inbound to it are lost for the whole outage).
    pub outage: Duration,
    /// Runtime tuning; the default enables recovery and a seeded fault
    /// plan (see the module docs).
    pub rt: ClusterRtConfig,
    /// Per-request completion deadline.
    pub timeout: Duration,
    /// How long the runner hunts for a crash window with a checkpointed
    /// in-flight transfer before giving up.
    pub crash_deadline: Duration,
}

impl Default for ChaosClusterConfig {
    /// 3 nodes, 2 requests of 256 KiB, seed 7, a 20 ms outage, chaos
    /// runtime knobs, 60 s deadline, 20 s crash hunt.
    fn default() -> Self {
        let seed = 7;
        ChaosClusterConfig {
            nodes: 3,
            requests: 2,
            payload_bytes: 256 * 1024,
            seed,
            outage: Duration::from_millis(20),
            rt: chaos_rt_config(seed),
            timeout: Duration::from_secs(60),
            crash_deadline: Duration::from_secs(20),
        }
    }
}

/// Outcome of one chaos run: the usual live counters plus the crash
/// story. Produced by the chaos runners.
#[derive(Debug, Clone)]
pub struct ChaosClusterReport {
    /// Short benchmark name (`wc`, `vid`, `svd`, `img`).
    pub benchmark: &'static str,
    /// Worker nodes in the topology.
    pub nodes: usize,
    /// Requests completed (all of them — a failed request panics).
    pub requests: usize,
    /// Wall-clock time from first invoke to last result, crash included.
    pub elapsed: Duration,
    /// Total client-output bytes received (all validated byte-for-byte).
    pub output_bytes: usize,
    /// The node that was crashed and restarted.
    pub victim: usize,
    /// What the crash found: in-flight transfers rolled back to their
    /// last checkpoint mark, and the bytes those marks preserved.
    pub crash: CrashReport,
    /// Aggregated runtime counters, including the recovery story
    /// (`recovered_transfers`, `replayed_bytes`,
    /// `resumed_from_mark_bytes`, chaos frame counts).
    pub stats: RtStats,
}

/// The crash-and-restart chaos runner — the body behind
/// [`WorkloadSpec`](crate::WorkloadSpec) with
/// [`FaultMode::ChaosCrashRestart`](crate::FaultMode::ChaosCrashRestart).
pub(crate) fn run_chaos_cluster(bench: Benchmark, cfg: &ChaosClusterConfig) -> ChaosClusterReport {
    assert!(cfg.nodes >= 2, "chaos_cluster needs a node to crash");
    let wf = bench.workflow();
    let placement = ByLevel.initial(&wf, cfg.nodes);
    let mut rt_cfg = cfg.rt.clone();
    rt_cfg.faults.seed = cfg.seed;
    let rt = live_runtime(bench, Arc::clone(&wf), placement, rt_cfg);

    // Node 1 hosts the first post-entry level under the by-level
    // spread: in all four benchmarks that is the node receiving the
    // large fan-out intermediates over the streaming remote pipe, so
    // a crash there always damages checkpoint-marked streams. (Other
    // nodes may only receive sub-threshold direct-socket frames —
    // e.g. wordcount's merge node — where there is no mark to resume
    // from and nothing for this scenario to prove.)
    let victim = 1;

    let mut crash = None;
    let run = run_verified(
        "chaos",
        bench,
        cfg.requests,
        cfg.payload_bytes,
        cfg.timeout,
        |name, payload| rt.invoke(vec![(name, payload)]),
        || {
            crash = Some(hunt_crash(&rt, victim, cfg.crash_deadline));
            std::thread::sleep(cfg.outage); // frames inbound to the victim die here
            rt.restart_node(victim);
        },
        |req, timeout| rt.wait(req, timeout),
    );
    let crash = crash.expect("the crash hunt ran");
    let stats = rt.stats();
    assert!(
        stats.recovered_transfers > 0,
        "chaos {bench}: the restart replayed no transfers"
    );
    assert!(
        stats.resumed_from_mark_bytes > 0,
        "chaos {bench}: recovery resumed from byte 0 instead of a checkpoint mark"
    );
    assert!(
        stats.frames_lost_to_crashes > 0,
        "chaos {bench}: the outage lost no frames"
    );
    let nodes = rt.node_count();
    rt.shutdown();
    ChaosClusterReport {
        benchmark: bench.name(),
        nodes,
        requests: run.requests,
        elapsed: run.elapsed,
        output_bytes: run.output_bytes,
        victim,
        crash,
        stats,
    }
}

/// Crashes `victim` once it is mid-reassembly past at least one acked
/// checkpoint mark, so the subsequent restart demonstrably resumes from
/// the mark. Probes that land between transfers (or before any mark was
/// crossed) restart the node and try again.
fn hunt_crash(rt: &ClusterRuntime, victim: usize, deadline: Duration) -> CrashReport {
    let give_up = Instant::now() + deadline;
    loop {
        assert!(
            Instant::now() < give_up,
            "chaos_cluster: no crash window with a checkpoint-marked in-flight \
             transfer opened on node {victim} — slow the links or grow the payload"
        );
        if rt.node(victim).inflight_transfers() > 0 && rt.stats().acked_marks > 0 {
            let report = rt.crash_node(victim);
            if report.was_up && report.inflight_transfers > 0 && report.durable_bytes > 0 {
                return report;
            }
            rt.restart_node(victim);
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_recover_byte_identically_under_chaos() {
        for bench in Benchmark::ALL {
            let cfg = ChaosClusterConfig {
                payload_bytes: 128 * 1024,
                requests: 1,
                ..ChaosClusterConfig::default()
            };
            let report = run_chaos_cluster(bench, &cfg);
            assert_eq!(report.requests, 1);
            assert!(report.output_bytes > 0, "{bench}: empty output");
            assert!(report.crash.inflight_transfers > 0);
            assert!(report.crash.durable_bytes > 0);
            assert!(report.stats.node_crashes >= 1);
            assert!(report.stats.replayed_bytes > 0);
        }
    }

    #[test]
    fn distinct_seeds_draw_distinct_chaos_and_still_recover() {
        for seed in [1, 2] {
            // `seed` alone is enough: chaos_cluster re-seeds the plan.
            let cfg = ChaosClusterConfig {
                seed,
                payload_bytes: 96 * 1024,
                requests: 1,
                ..ChaosClusterConfig::default()
            };
            let report = run_chaos_cluster(Benchmark::Svd, &cfg);
            assert_eq!(report.victim, 1);
            assert!(report.stats.recovered_transfers > 0);
        }
    }
}
