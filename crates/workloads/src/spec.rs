//! The composable workload builder — one front door for every live
//! scenario.
//!
//! The scenario surface grew one `Scenario::*` constructor per
//! combination of benchmark, transport, fault and traffic shape
//! (`live_cluster`, `chaos_cluster`, `chaos_cluster_tcp`,
//! `node_loss_relocation`, `bursty_cluster`, `skewed_fanout`, …) — a
//! matrix that cannot scale. [`WorkloadSpec`] replaces the matrix with
//! orthogonal aspects:
//!
//! ```
//! use dataflower_workloads::{Benchmark, Transport, WorkloadSpec};
//!
//! let report = WorkloadSpec::new()
//!     .benchmark(Benchmark::Wc)
//!     .transport(Transport::Inproc)
//!     .payload_bytes(64 * 1024)
//!     .requests(1)
//!     .run();
//! assert_eq!(report.transport, "inproc");
//! assert!(report.requests >= 1);
//! ```
//!
use std::time::Duration;

use dataflower_metrics::Timeline;
use dataflower_rt::{ClusterRtConfig, CrashReport, RtStats, ScaleEvent};

use crate::benchmarks::Benchmark;
use crate::chaos::{run_chaos_cluster, ChaosClusterConfig};
use crate::elastic::{
    elastic_rt_config, run_bursty_cluster, run_skewed_fanout, BurstyClusterConfig,
    SkewedFanoutConfig,
};
use crate::live::{run_live_cluster_traced, LiveClusterConfig, LivePlacement};
use crate::loadgen::{self, CellReport, TrafficSpec};
use crate::node_loss::{run_live_migration, run_node_loss, NodeLossConfig, NodeLossTransport};
use crate::socket::{run_chaos_cluster_tcp, run_live_tcp};

/// What computation the cluster executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// One of the four paper benchmarks (§9.1).
    Bench(Benchmark),
    /// The synthetic Zipf-skewed fan-out (split → N workers → merge)
    /// under load-aware placement. In-process only.
    SkewedFanout {
        /// Fan-out branches of the split.
        branches: usize,
        /// Zipf exponent of the shard-size skew (0 = even shards).
        zipf_exponent: f64,
    },
}

/// Which fabric the cluster's links run over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// The in-process fabric: one thread per node, channel links.
    Inproc,
    /// One OS process per node over real localhost TCP sockets. The
    /// launching binary must call
    /// [`serve_worker_if_spawned`](crate::serve_worker_if_spawned) at
    /// the top of `main`.
    Tcp,
}

impl Transport {
    /// Short name used in reports (`inproc` / `tcp`).
    pub fn name(self) -> &'static str {
        match self {
            Transport::Inproc => "inproc",
            Transport::Tcp => "tcp",
        }
    }
}

/// What, if anything, goes wrong mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Nothing — a clean run.
    None,
    /// Seeded frame chaos plus a mid-stream crash of node 1, restarted
    /// after the outage and healed by §6.2 checkpoint recovery.
    ChaosCrashRestart,
    /// Node 1 is killed **permanently** mid-stream; the orchestrator
    /// declares the loss from heartbeat silence and relocates its
    /// functions to the survivors.
    NodeLoss,
    /// A hot function is voluntarily migrated mid-stream to the
    /// least-pressured node. In-process only.
    LiveMigration,
}

/// How requests arrive.
#[derive(Debug, Clone)]
pub enum Traffic {
    /// `requests` concurrent requests fired at once, all awaited — the
    /// classic benchmark shape.
    ClosedLoop {
        /// Requests to drive through the workflow.
        requests: usize,
    },
    /// A seeded open-loop multi-tenant arrival process (see
    /// [`loadgen`](crate::loadgen)) — the schedule never slows down for
    /// the runtime; overload is shed at the admission gates.
    OpenLoop(TrafficSpec),
}

/// A composable live-scenario specification. Build one with
/// [`WorkloadSpec::new`], chain the aspects that differ from the
/// defaults, and [`run`](WorkloadSpec::run) it.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    workload: Workload,
    nodes: usize,
    placement: LivePlacement,
    transport: Transport,
    payload_bytes: usize,
    traffic: Traffic,
    warmup_requests: usize,
    settle: Duration,
    rt: Option<ClusterRtConfig>,
    faults: FaultMode,
    seed: u64,
    outage: Duration,
    fault_deadline: Duration,
    timeout: Duration,
    record_trace: Option<std::path::PathBuf>,
}

impl Default for WorkloadSpec {
    /// Wordcount on 3 in-process nodes (by-level spread), one 256 KiB
    /// closed-loop request, no faults, 60 s deadline.
    fn default() -> Self {
        WorkloadSpec {
            workload: Workload::Bench(Benchmark::Wc),
            nodes: 3,
            placement: LivePlacement::ByLevel,
            transport: Transport::Inproc,
            payload_bytes: 256 * 1024,
            traffic: Traffic::ClosedLoop { requests: 1 },
            warmup_requests: 0,
            settle: Duration::from_secs(5),
            rt: None,
            faults: FaultMode::None,
            seed: 7,
            outage: Duration::from_millis(20),
            fault_deadline: Duration::from_secs(20),
            timeout: Duration::from_secs(60),
            record_trace: None,
        }
    }
}

impl WorkloadSpec {
    /// The default spec (see [`WorkloadSpec::default`]).
    pub fn new() -> WorkloadSpec {
        WorkloadSpec::default()
    }

    /// Runs one of the four paper benchmarks.
    pub fn benchmark(mut self, bench: Benchmark) -> WorkloadSpec {
        self.workload = Workload::Bench(bench);
        self
    }

    /// Runs the synthetic Zipf-skewed fan-out instead of a benchmark
    /// (in-process only; uses load-aware placement and the elastic
    /// runtime knobs unless overridden).
    pub fn skewed_fanout(mut self, branches: usize, zipf_exponent: f64) -> WorkloadSpec {
        self.workload = Workload::SkewedFanout {
            branches,
            zipf_exponent,
        };
        self
    }

    /// Worker nodes in the topology.
    pub fn nodes(mut self, nodes: usize) -> WorkloadSpec {
        self.nodes = nodes;
        self
    }

    /// Placement strategy (closed-loop in-process runs only; the other
    /// runners pin the by-level spread their assertions rely on).
    pub fn placement(mut self, placement: LivePlacement) -> WorkloadSpec {
        self.placement = placement;
        self
    }

    /// In-process fabric or worker-process TCP.
    pub fn transport(mut self, transport: Transport) -> WorkloadSpec {
        self.transport = transport;
        self
    }

    /// Client input payload size in bytes.
    pub fn payload_bytes(mut self, bytes: usize) -> WorkloadSpec {
        self.payload_bytes = bytes;
        self
    }

    /// Closed-loop traffic with this many concurrent requests —
    /// shorthand for [`WorkloadSpec::traffic`] with
    /// [`Traffic::ClosedLoop`].
    pub fn requests(mut self, requests: usize) -> WorkloadSpec {
        self.traffic = Traffic::ClosedLoop { requests };
        self
    }

    /// The traffic shape (closed-loop burst or open-loop arrivals).
    pub fn traffic(mut self, traffic: Traffic) -> WorkloadSpec {
        self.traffic = traffic;
        self
    }

    /// Tenant count of the open-loop traffic. Call after
    /// [`WorkloadSpec::traffic`] has set [`Traffic::OpenLoop`].
    ///
    /// # Panics
    ///
    /// Panics when the traffic is closed-loop — tenancy only exists at
    /// the admission gates of the open-loop driver.
    pub fn tenants(mut self, tenants: usize) -> WorkloadSpec {
        match &mut self.traffic {
            Traffic::OpenLoop(spec) => spec.tenants = tenants,
            Traffic::ClosedLoop { .. } => {
                panic!("tenants() requires open-loop traffic; call .traffic(Traffic::OpenLoop(..)) first")
            }
        }
        self
    }

    /// Sequential warm-up requests before the closed-loop burst; a
    /// non-zero warm-up selects the autoscaled bursty runner
    /// (in-process only).
    pub fn warmup(mut self, requests: usize) -> WorkloadSpec {
        self.warmup_requests = requests;
        self
    }

    /// How long the bursty runner keeps the drained runtime alive
    /// waiting for the cool-down-guarded scale-in.
    pub fn settle(mut self, settle: Duration) -> WorkloadSpec {
        self.settle = settle;
        self
    }

    /// Overrides the runtime tuning. Without this, each runner keeps
    /// its scenario-appropriate default (chaos knobs under
    /// [`FaultMode::ChaosCrashRestart`], orchestrated knobs under
    /// [`FaultMode::NodeLoss`], elastic knobs for bursty/skewed runs,
    /// stock knobs otherwise).
    pub fn config(mut self, rt: impl Into<ClusterRtConfig>) -> WorkloadSpec {
        self.rt = Some(rt.into());
        self
    }

    /// What goes wrong mid-run.
    pub fn faults(mut self, faults: FaultMode) -> WorkloadSpec {
        self.faults = faults;
        self
    }

    /// Seed of the fault plan / worker tags.
    pub fn fault_seed(mut self, seed: u64) -> WorkloadSpec {
        self.seed = seed;
        self
    }

    /// Outage length between crash and restart
    /// ([`FaultMode::ChaosCrashRestart`] only).
    pub fn outage(mut self, outage: Duration) -> WorkloadSpec {
        self.outage = outage;
        self
    }

    /// How long the fault runners hunt for a crash/kill/migration window
    /// before giving up.
    pub fn fault_deadline(mut self, deadline: Duration) -> WorkloadSpec {
        self.fault_deadline = deadline;
        self
    }

    /// Per-request completion deadline.
    pub fn timeout(mut self, timeout: Duration) -> WorkloadSpec {
        self.timeout = timeout;
        self
    }

    /// Records the run's deterministic trace (see
    /// [`dataflower_rt::trace`]) and writes it to `path` in the on-disk
    /// `DFTR` encoding. Plain in-process closed-loop runs only — the
    /// combination every other runner builds on.
    ///
    /// # Panics
    ///
    /// [`WorkloadSpec::run`] panics if tracing is combined with faults,
    /// warm-up, open-loop traffic or the TCP transport.
    pub fn record_trace(mut self, path: impl Into<std::path::PathBuf>) -> WorkloadSpec {
        self.record_trace = Some(path.into());
        self
    }

    /// Executes the spec and reports it.
    ///
    /// # Panics
    ///
    /// Panics on an unsupported combination (skewed fan-out or live
    /// migration over TCP, faults under open-loop traffic) and on every
    /// verification failure the underlying runner asserts (missed
    /// deadlines, outputs diverging from the reference, a fault story
    /// that did not happen).
    pub fn run(&self) -> WorkloadReport {
        if self.record_trace.is_some() {
            assert!(
                matches!(self.workload, Workload::Bench(_))
                    && self.faults == FaultMode::None
                    && self.warmup_requests == 0
                    && matches!(self.traffic, Traffic::ClosedLoop { .. })
                    && self.transport == Transport::Inproc,
                "record_trace requires a plain in-process closed-loop benchmark run"
            );
        }
        if let Workload::SkewedFanout {
            branches,
            zipf_exponent,
        } = self.workload
        {
            assert_eq!(
                self.transport,
                Transport::Inproc,
                "skewed_fanout runs in-process only"
            );
            assert_eq!(
                self.faults,
                FaultMode::None,
                "skewed_fanout does not compose with faults"
            );
            let report = run_skewed_fanout(&SkewedFanoutConfig {
                nodes: self.nodes,
                branches,
                zipf_exponent,
                requests: self.closed_loop_requests("skewed_fanout"),
                payload_bytes: self.payload_bytes,
                rt: self.rt.clone().unwrap_or_else(elastic_rt_config),
                timeout: self.timeout,
            });
            return WorkloadReport::from_elastic(report, self.transport);
        }
        let Workload::Bench(bench) = self.workload else {
            unreachable!("skewed fan-out handled above")
        };
        match self.faults {
            FaultMode::ChaosCrashRestart => {
                let cfg = ChaosClusterConfig {
                    nodes: self.nodes,
                    requests: self.closed_loop_requests("chaos"),
                    payload_bytes: self.payload_bytes,
                    seed: self.seed,
                    outage: self.outage,
                    rt: self
                        .rt
                        .clone()
                        .unwrap_or_else(|| crate::chaos::chaos_rt_config(self.seed)),
                    timeout: self.timeout,
                    crash_deadline: self.fault_deadline,
                };
                let report = match self.transport {
                    Transport::Inproc => run_chaos_cluster(bench, &cfg),
                    Transport::Tcp => run_chaos_cluster_tcp(bench, &cfg),
                };
                WorkloadReport {
                    scenario: format!("chaos_cluster/{}", report.benchmark),
                    transport: self.transport.name(),
                    nodes: report.nodes,
                    requests: report.requests,
                    elapsed: report.elapsed,
                    output_bytes: report.output_bytes as u64,
                    stats: report.stats.clone(),
                    detail: ReportDetail::Crash {
                        victim: report.victim,
                        crash: report.crash,
                    },
                }
            }
            FaultMode::NodeLoss => {
                let report = run_node_loss(
                    bench,
                    &NodeLossConfig {
                        transport: match self.transport {
                            Transport::Inproc => NodeLossTransport::Inproc,
                            Transport::Tcp => NodeLossTransport::Tcp,
                        },
                        nodes: self.nodes,
                        requests: self.closed_loop_requests("node_loss"),
                        payload_bytes: self.payload_bytes,
                        seed: self.seed,
                        timeout: self.timeout,
                        kill_deadline: self.fault_deadline,
                    },
                );
                WorkloadReport::from_node_loss("node_loss_relocation", report)
            }
            FaultMode::LiveMigration => {
                assert_eq!(
                    self.transport,
                    Transport::Inproc,
                    "live migration runs in-process only"
                );
                let report = run_live_migration(
                    bench,
                    &NodeLossConfig {
                        transport: NodeLossTransport::Inproc,
                        nodes: self.nodes,
                        requests: self.closed_loop_requests("live_migration"),
                        payload_bytes: self.payload_bytes,
                        seed: self.seed,
                        timeout: self.timeout,
                        kill_deadline: self.fault_deadline,
                    },
                );
                WorkloadReport::from_node_loss("live_migration", report)
            }
            FaultMode::None => match &self.traffic {
                Traffic::OpenLoop(spec) => {
                    let cell = loadgen::LoadgenCell {
                        label: format!("{}-{}", bench.name(), self.transport.name()),
                        benchmarks: vec![bench],
                        nodes: self.nodes,
                        transport: self.transport,
                        payload_bytes: self.payload_bytes,
                        traffic: spec.clone(),
                        timeout: self.timeout,
                    };
                    let report = loadgen::run_cell(&cell);
                    WorkloadReport {
                        scenario: format!("open_loop/{}", bench.name()),
                        transport: self.transport.name(),
                        nodes: report.nodes,
                        requests: report.completed as usize,
                        elapsed: report.elapsed,
                        output_bytes: report.output_bytes,
                        stats: report.stats.clone(),
                        detail: ReportDetail::OpenLoop(Box::new(report)),
                    }
                }
                Traffic::ClosedLoop { requests } => {
                    if self.warmup_requests > 0 {
                        assert_eq!(
                            self.transport,
                            Transport::Inproc,
                            "the bursty (warmed-up) runner is in-process only"
                        );
                        let report = run_bursty_cluster(
                            bench,
                            &BurstyClusterConfig {
                                nodes: self.nodes,
                                base_requests: self.warmup_requests,
                                burst_requests: *requests,
                                payload_bytes: self.payload_bytes,
                                rt: self.rt.clone().unwrap_or_else(elastic_rt_config),
                                timeout: self.timeout,
                                settle: self.settle,
                            },
                        );
                        return WorkloadReport::from_elastic(report, self.transport);
                    }
                    let cfg = LiveClusterConfig {
                        nodes: self.nodes,
                        placement: self.placement,
                        requests: *requests,
                        payload_bytes: self.payload_bytes,
                        rt: self.rt.clone().unwrap_or_default(),
                        timeout: self.timeout,
                    };
                    let report = match self.transport {
                        Transport::Inproc => run_live_cluster_traced(
                            bench,
                            &cfg,
                            self.placement.policy(),
                            self.record_trace.as_deref(),
                        ),
                        Transport::Tcp => run_live_tcp(bench, &cfg, self.seed),
                    };
                    WorkloadReport {
                        scenario: format!("live_cluster/{}", report.benchmark),
                        transport: self.transport.name(),
                        nodes: report.nodes,
                        requests: report.requests,
                        elapsed: report.elapsed,
                        output_bytes: report.output_bytes as u64,
                        stats: report.stats,
                        detail: ReportDetail::Plain,
                    }
                }
            },
        }
    }

    fn closed_loop_requests(&self, what: &str) -> usize {
        match &self.traffic {
            Traffic::ClosedLoop { requests } => *requests,
            Traffic::OpenLoop(_) => {
                panic!("{what} drives closed-loop traffic; open-loop arrivals require FaultMode::None on a plain benchmark")
            }
        }
    }
}

/// Scenario-specific extras of a [`WorkloadReport`].
#[derive(Debug, Clone)]
pub enum ReportDetail {
    /// A clean closed-loop run — the common counters say it all.
    Plain,
    /// An autoscaled run (bursty or skewed fan-out).
    Elastic {
        /// Every scale event, in time order.
        events: Vec<ScaleEvent>,
        /// Per-function replica counts over time.
        timeline: Timeline,
    },
    /// A crash-and-restart run.
    Crash {
        /// The node that was crashed and restarted.
        victim: usize,
        /// What the crash interrupted.
        crash: CrashReport,
    },
    /// A permanent node loss or a voluntary live migration.
    NodeLoss {
        /// The node that was killed (or migrated away from).
        victim: usize,
        /// Functions the control plane moved off the victim.
        relocated: u64,
    },
    /// An open-loop load run (per-benchmark latency tables, timeline,
    /// fairness).
    OpenLoop(Box<CellReport>),
}

/// The uniform outcome of a [`WorkloadSpec::run`]: the counters every
/// scenario shares, plus a [`ReportDetail`] with the scenario-specific
/// story.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Scenario identifier, e.g. `live_cluster/wc`, `chaos_cluster/svd`.
    pub scenario: String,
    /// Transport name (`inproc` / `tcp`).
    pub transport: &'static str,
    /// Worker nodes in the topology.
    pub nodes: usize,
    /// Requests completed (closed loop: all of them; open loop: the
    /// admitted completions).
    pub requests: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Total verified client-output bytes.
    pub output_bytes: u64,
    /// Aggregated runtime counters.
    pub stats: RtStats,
    /// The scenario-specific story.
    pub detail: ReportDetail,
}

impl WorkloadReport {
    fn from_elastic(report: crate::elastic::ElasticReport, transport: Transport) -> WorkloadReport {
        WorkloadReport {
            scenario: report.scenario,
            transport: transport.name(),
            nodes: report.nodes,
            requests: report.requests,
            elapsed: report.elapsed,
            output_bytes: report.output_bytes as u64,
            stats: report.stats,
            detail: ReportDetail::Elastic {
                events: report.events,
                timeline: report.timeline,
            },
        }
    }

    fn from_node_loss(kind: &str, report: crate::node_loss::NodeLossReport) -> WorkloadReport {
        WorkloadReport {
            scenario: format!("{kind}/{}", report.benchmark),
            transport: report.transport,
            nodes: report.nodes,
            requests: report.requests,
            elapsed: report.elapsed,
            output_bytes: report.output_bytes as u64,
            stats: report.stats,
            detail: ReportDetail::NodeLoss {
                victim: report.victim,
                relocated: report.relocated,
            },
        }
    }

    /// The open-loop cell report, when this was an open-loop run.
    pub fn open_loop(&self) -> Option<&CellReport> {
        match &self.detail {
            ReportDetail::OpenLoop(cell) => Some(cell),
            _ => None,
        }
    }

    /// The crashed / killed / migrated-from node, when a fault ran.
    pub fn victim(&self) -> Option<usize> {
        match &self.detail {
            ReportDetail::Crash { victim, .. } | ReportDetail::NodeLoss { victim, .. } => {
                Some(*victim)
            }
            _ => None,
        }
    }

    /// Functions moved off the victim, when the orchestrator healed a
    /// loss (or performed a migration).
    pub fn relocated(&self) -> Option<u64> {
        match &self.detail {
            ReportDetail::NodeLoss { relocated, .. } => Some(*relocated),
            _ => None,
        }
    }

    /// The scale events, when the autoscaler ran.
    pub fn scale_events(&self) -> Option<&[ScaleEvent]> {
        match &self.detail {
            ReportDetail::Elastic { events, .. } => Some(events),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_inproc_is_the_default_path() {
        let report = WorkloadSpec::new()
            .benchmark(Benchmark::Wc)
            .payload_bytes(64 * 1024)
            .requests(2)
            .run();
        assert_eq!(report.scenario, "live_cluster/wc");
        assert_eq!(report.transport, "inproc");
        assert_eq!(report.requests, 2);
        assert!(matches!(report.detail, ReportDetail::Plain));
        assert!(report.victim().is_none() && report.open_loop().is_none());
    }

    #[test]
    fn open_loop_traffic_reaches_the_load_driver() {
        let report = WorkloadSpec::new()
            .benchmark(Benchmark::Wc)
            .nodes(2)
            .payload_bytes(4 * 1024)
            .traffic(Traffic::OpenLoop(TrafficSpec {
                requests: 200,
                rate_per_sec: 400.0,
                tenants: 10,
                ..TrafficSpec::default()
            }))
            .tenants(8)
            .run();
        let cell = report.open_loop().expect("open-loop detail");
        assert_eq!(cell.tenants, 8);
        assert_eq!(cell.offered, 200);
        assert_eq!(cell.offered, cell.admitted + cell.rejected);
        assert!(cell.completed > 0);
    }

    #[test]
    #[should_panic(expected = "tenants() requires open-loop traffic")]
    fn tenants_on_closed_loop_traffic_panics() {
        let _ = WorkloadSpec::new().requests(1).tenants(4);
    }

    #[test]
    fn record_trace_writes_a_decodable_file() {
        let path =
            std::env::temp_dir().join(format!("df-spec-trace-{}.dftrace", std::process::id()));
        let report = WorkloadSpec::new()
            .payload_bytes(64 * 1024)
            .record_trace(&path)
            .run();
        assert!(report.requests >= 1);
        let bytes = std::fs::read(&path).expect("trace file written");
        let events = dataflower_rt::trace::decode_trace(&bytes).expect("trace decodes");
        assert!(
            events.len() > 1,
            "trace must carry the Meta preamble plus run events"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "record_trace requires a plain in-process closed-loop")]
    fn record_trace_rejects_faulted_runs() {
        let _ = WorkloadSpec::new()
            .record_trace("/tmp/never-written.dftrace")
            .faults(FaultMode::ChaosCrashRestart)
            .run();
    }
}
