//! The systems under evaluation, as a uniform factory.

use dataflower::{DataFlowerConfig, DataFlowerEngine};
use dataflower_baselines::{ControlFlowConfig, ControlFlowEngine};
use dataflower_cluster::{ContainerSpec, Orchestrator, SpreadPlacement};

/// Every system the evaluation compares (Figs. 10–19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// DataFlower with all mechanisms enabled.
    DataFlower,
    /// The Fig. 12 ablation: pressure-aware scaling disabled.
    DataFlowerNonAware,
    /// FaaSFlow-style decentralized control flow.
    FaaSFlow,
    /// SONIC-style local-storage data passing.
    Sonic,
    /// Production-style centralized orchestrator (Fig. 2).
    Centralized,
    /// Stateful state-machine deployment (Fig. 19).
    StateMachine,
}

impl SystemKind {
    /// The three systems of the headline comparisons (Figs. 10, 11, 18).
    pub const HEADLINE: [SystemKind; 3] = [
        SystemKind::DataFlower,
        SystemKind::FaaSFlow,
        SystemKind::Sonic,
    ];

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::DataFlower => "DataFlower",
            SystemKind::DataFlowerNonAware => "DataFlower-Non-aware",
            SystemKind::FaaSFlow => "FaaSFlow",
            SystemKind::Sonic => "SONIC",
            SystemKind::Centralized => "Centralized",
            SystemKind::StateMachine => "StateMachine",
        }
    }

    /// Builds the system's engine with the default container spec.
    pub fn engine(&self) -> Box<dyn Orchestrator> {
        self.engine_with_spec(ContainerSpec::default())
    }

    /// Builds the system's engine with containers of the given spec
    /// (the Fig. 17 scale-up sweep).
    pub fn engine_with_spec(&self, spec: ContainerSpec) -> Box<dyn Orchestrator> {
        match self {
            SystemKind::DataFlower => Box::new(DataFlowerEngine::new(
                DataFlowerConfig::default().with_container_spec(spec),
                SpreadPlacement,
            )),
            SystemKind::DataFlowerNonAware => Box::new(DataFlowerEngine::new(
                DataFlowerConfig::non_aware().with_container_spec(spec),
                SpreadPlacement,
            )),
            SystemKind::FaaSFlow => Box::new(ControlFlowEngine::new(
                ControlFlowConfig::faasflow().with_container_spec(spec),
                SpreadPlacement,
            )),
            SystemKind::Sonic => Box::new(ControlFlowEngine::new(
                ControlFlowConfig::sonic().with_container_spec(spec),
                SpreadPlacement,
            )),
            SystemKind::Centralized => Box::new(ControlFlowEngine::new(
                ControlFlowConfig::centralized().with_container_spec(spec),
                SpreadPlacement,
            )),
            SystemKind::StateMachine => Box::new(ControlFlowEngine::new(
                ControlFlowConfig::state_machine().with_container_spec(spec),
                SpreadPlacement,
            )),
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_factories_agree() {
        for sys in [
            SystemKind::DataFlower,
            SystemKind::DataFlowerNonAware,
            SystemKind::FaaSFlow,
            SystemKind::Sonic,
            SystemKind::Centralized,
            SystemKind::StateMachine,
        ] {
            let engine = sys.engine();
            assert_eq!(engine.name(), sys.label());
        }
    }
}
