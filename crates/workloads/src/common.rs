//! Benchmark-construction and verification helpers shared by every live
//! scenario runner.
//!
//! The chaos, socket, elastic, node-loss and plain live runners all
//! follow the same skeleton: build the canonical client input, compute
//! the straight-line reference output, drive N requests through a
//! cluster, optionally disturb the cluster mid-flight, then assert every
//! output is **byte-identical** to the reference. That skeleton — and
//! the pure input/reference computations it rests on — lives here once,
//! so a new scenario (or a change to a benchmark body) cannot drift the
//! runners apart.

use std::time::{Duration, Instant};

use dataflower_rt::{Bytes, FluContext};

use crate::benchmarks::Benchmark;

/// Number of fan-out branches the default benchmark workflows use (see
/// [`Benchmark::workflow`]): wordcount splits into 4, video transcodes 4
/// chunks, SVD factorizes 8 tiles.
pub(crate) const WC_FAN_OUT: usize = 4;
pub(crate) const VID_BRANCHES: usize = 4;
pub(crate) const SVD_BLOCKS: usize = 8;

// --- the shared run-and-verify skeleton ------------------------------

/// What [`run_verified`] measured about one validated run.
#[derive(Debug, Clone)]
pub(crate) struct VerifiedRun {
    /// Requests completed (all of them — a failed request panics).
    pub requests: usize,
    /// Total client-output bytes received, all validated byte-for-byte.
    pub output_bytes: usize,
    /// Wall-clock time from first invoke to last verified result.
    pub elapsed: Duration,
}

/// Drives `requests` copies of `bench`'s canonical input through a
/// cluster and asserts every output byte-identical to the straight-line
/// reference computation.
///
/// `invoke` submits one request (name/payload pair) and returns its
/// handle; `mid` runs once after all requests are in flight (crash the
/// victim, migrate a function, or do nothing); `wait` blocks on one
/// handle. Generic over the handle and error types so the in-process
/// [`ClusterRuntime`](dataflower_rt::ClusterRuntime) and the
/// worker-process [`TcpCluster`](dataflower_rt::TcpCluster) share it.
///
/// # Panics
///
/// Panics if a request fails or misses its deadline, a request yields
/// more than one client output, or any output diverges from the
/// reference — the runtime dropping, duplicating or reordering data is
/// a bug, not a data point.
#[allow(clippy::too_many_arguments)] // one scalar knob per skeleton stage; a config struct would just rename them
pub(crate) fn run_verified<Req, E: std::fmt::Display>(
    label: &str,
    bench: Benchmark,
    requests: usize,
    payload_bytes: usize,
    timeout: Duration,
    mut invoke: impl FnMut(String, Bytes) -> Req,
    mid: impl FnOnce(),
    mut wait: impl FnMut(Req, Duration) -> Result<Vec<(String, Bytes)>, E>,
) -> VerifiedRun {
    let (input_name, input, expected) = bench_vectors(bench, payload_bytes);

    let t0 = Instant::now();
    let reqs: Vec<Req> = (0..requests.max(1))
        .map(|_| invoke(input_name.to_owned(), input.clone()))
        .collect();
    mid();
    let mut output_bytes = 0;
    let requests = reqs.len();
    for req in reqs {
        let outputs =
            wait(req, timeout).unwrap_or_else(|e| panic!("{label} {bench} request failed: {e}"));
        assert_eq!(
            outputs.len(),
            1,
            "{label} {bench}: expected one client output"
        );
        assert_eq!(
            &*outputs[0].1,
            &expected[..],
            "{label} {bench} output diverged from the reference computation"
        );
        output_bytes += outputs[0].1.len();
    }
    VerifiedRun {
        requests,
        output_bytes,
        elapsed: t0.elapsed(),
    }
}

// --- canonical inputs and reference outputs --------------------------

/// The canonical `(data name, input payload, reference output)` triple
/// for one benchmark at one payload size, memoized process-wide: both
/// are deterministic pure functions of `(bench, payload_bytes)`, so
/// every verified run past the first reuses the same immutable vectors
/// instead of regenerating the corpus and re-running the straight-line
/// reference — the runs then measure the cluster, not the test-vector
/// generator.
pub(crate) fn bench_vectors(
    bench: Benchmark,
    payload_bytes: usize,
) -> (&'static str, Bytes, Bytes) {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type Vectors = (&'static str, Bytes, Bytes);
    static CACHE: OnceLock<Mutex<HashMap<(Benchmark, usize), Vectors>>> = OnceLock::new();
    let mut cache = CACHE.get_or_init(Default::default).lock().unwrap();
    cache
        .entry((bench, payload_bytes))
        .or_insert_with(|| {
            let (name, input) = live_input(bench, payload_bytes);
            let expected = reference_output(bench, &input);
            (name, Bytes::from(input), Bytes::from(expected))
        })
        .clone()
}

/// The client input `(data name, payload)` a live run of `bench` feeds
/// in: a deterministic pseudo-text corpus for wordcount, deterministic
/// pseudo-random bytes for the binary pipelines.
pub(crate) fn live_input(bench: Benchmark, payload_bytes: usize) -> (&'static str, Vec<u8>) {
    match bench {
        Benchmark::Wc => ("text", corpus(payload_bytes)),
        Benchmark::Vid => ("video", noise(payload_bytes, 0x1005_8f1d)),
        Benchmark::Svd => ("matrix", noise(payload_bytes, 0x2eb7_4a1b)),
        Benchmark::Img => ("image", noise(payload_bytes, 0x3c6e_f372)),
    }
}

/// The straight-line (single-threaded) computation each live benchmark
/// must reproduce byte-for-byte through the runtime.
pub(crate) fn reference_output(bench: Benchmark, input: &[u8]) -> Vec<u8> {
    match bench {
        Benchmark::Wc => count_table(input),
        Benchmark::Vid => even_spans(input.len(), VID_BRANCHES)
            .into_iter()
            .flat_map(|(lo, hi)| transcode(&input[lo..hi]))
            .collect(),
        Benchmark::Svd => even_spans(input.len(), SVD_BLOCKS)
            .into_iter()
            .flat_map(|(lo, hi)| factorize(&input[lo..hi]))
            .collect(),
        Benchmark::Img => {
            let raw = input.to_vec();
            let scaled = downsample(&raw);
            let labels = digest_expand(&scaled, 24 * 1024, 0x9e3779b97f4a7c15);
            let boxes = digest_expand(&scaled, 32 * 1024, 0xd1b54a32d192ed03);
            let blurred = blur(&labels, &boxes);
            render(&blurred)
        }
    }
}

// --- pure per-benchmark transforms (used by the live function bodies
// --- and the reference computation alike) ----------------------------

/// Word-frequency table of `text`, ascending by word, `word\tcount`
/// lines. Words are maximal runs of non-ASCII-whitespace bytes, so
/// merging per-shard tables cut at whitespace reproduces this exactly
/// without ever copying or re-encoding the text.
pub(crate) fn count_table(text: &[u8]) -> Vec<u8> {
    let mut counts: std::collections::HashMap<
        &[u8],
        u64,
        std::hash::BuildHasherDefault<FnvHasher>,
    > = Default::default();
    for word in text
        .split(|b| b.is_ascii_whitespace())
        .filter(|w| !w.is_empty())
    {
        *counts.entry(word).or_default() += 1;
    }
    let sorted: std::collections::BTreeMap<&[u8], u64> = counts.into_iter().collect();
    render_counts(&sorted)
}

/// FNV-1a: a cheap, dependency-free hasher for the short word keys of
/// `count_table`, where SipHash's per-key setup cost dominates.
#[derive(Default)]
pub(crate) struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// Serializes a word-frequency map as ascending `word\tcount` lines —
/// the shared output format of `count_table` and the wc merge stage.
pub(crate) fn render_counts(counts: &std::collections::BTreeMap<&[u8], u64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(counts.len() * 16);
    for (word, count) in counts {
        if !out.is_empty() {
            out.push(b'\n');
        }
        out.extend_from_slice(word);
        out.push(b'\t');
        out.extend_from_slice(count.to_string().as_bytes());
    }
    out
}

/// Stand-in re-encode: an invertibility-free byte transform that shrinks
/// the stream to 85 % (the benchmark's calibrated encoded/chunk ratio).
pub(crate) fn transcode(chunk: &[u8]) -> Vec<u8> {
    let keep = chunk.len() * 85 / 100;
    chunk[..keep]
        .iter()
        .map(|b| b.wrapping_mul(31).wrapping_add(7))
        .collect()
}

/// Stand-in block factorization: a rolling-checksum mix shrinking the
/// tile to 60 % (the benchmark's calibrated factors/tile ratio).
pub(crate) fn factorize(tile: &[u8]) -> Vec<u8> {
    let keep = tile.len() * 60 / 100;
    let mut acc: u8 = 0x5a;
    tile[..keep]
        .iter()
        .map(|b| {
            acc = acc.wrapping_mul(13).wrapping_add(*b);
            *b ^ acc
        })
        .collect()
}

/// Stand-in resize: keep every other byte.
pub(crate) fn downsample(raw: &[u8]) -> Vec<u8> {
    raw.iter().step_by(2).copied().collect()
}

/// Deterministic fixed-size "model output": an FNV-1a stream over the
/// input, expanded to `out_len` bytes from `seed`.
pub(crate) fn digest_expand(input: &[u8], out_len: usize, seed: u64) -> Vec<u8> {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for b in input {
        h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
    }
    let mut out = Vec::with_capacity(out_len);
    let mut s = h;
    while out.len() < out_len {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&s.to_le_bytes());
    }
    out.truncate(out_len);
    out
}

/// Stand-in blur: mixes the label vector cyclically into the box tensor.
pub(crate) fn blur(labels: &[u8], boxes: &[u8]) -> Vec<u8> {
    boxes
        .iter()
        .enumerate()
        .map(|(i, b)| b ^ labels[i % labels.len().max(1)])
        .collect()
}

/// Stand-in render pass.
pub(crate) fn render(blurred: &[u8]) -> Vec<u8> {
    blurred.iter().map(|b| b.wrapping_add(1)).collect()
}

// --- shared input/split helpers --------------------------------------

/// Fan-in payloads of data `name`, ordered by the **numeric branch
/// suffix** of the producer (`name@fn_3` → 3). `inputs_named` orders
/// lexicographically, which would put branch 10 before branch 2 — a
/// concatenating merge needs the numeric order to reproduce the
/// partitioner's span order at any fan-out.
pub(crate) fn branch_ordered<'a>(ctx: &'a FluContext, name: &str) -> Vec<&'a Bytes> {
    let prefix = format!("{name}@");
    let mut keyed: Vec<(usize, &Bytes)> = ctx
        .inputs()
        .filter(|(k, _)| k.starts_with(&prefix))
        .map(|(k, v)| (branch_index(k), v))
        .collect();
    keyed.sort_by_key(|(n, _)| *n);
    keyed.into_iter().map(|(_, v)| v).collect()
}

/// The trailing decimal of a sink key (`count@wc_count_12` → 12; no
/// trailing digits → 0).
fn branch_index(key: &str) -> usize {
    let digits = key.bytes().rev().take_while(u8::is_ascii_digit).count();
    key[key.len() - digits..].parse().unwrap_or(0)
}

/// Splits `len` bytes into `n` contiguous spans whose sizes differ by at
/// most one byte (the partitioners of vid and svd).
pub(crate) fn even_spans(len: usize, n: usize) -> Vec<(usize, usize)> {
    let base = len / n;
    let extra = len % n;
    let mut spans = Vec::with_capacity(n);
    let mut lo = 0;
    for i in 0..n {
        let hi = lo + base + usize::from(i < extra);
        spans.push((lo, hi));
        lo = hi;
    }
    spans
}

/// A deterministic pseudo-text corpus of roughly `bytes` bytes with a
/// skewed word-frequency distribution.
fn corpus(bytes: usize) -> Vec<u8> {
    const VOCAB: [&str; 12] = [
        "serverless",
        "workflow",
        "dataflow",
        "function",
        "container",
        "latency",
        "throughput",
        "pipe",
        "sink",
        "engine",
        "node",
        "fabric",
    ];
    let mut out = Vec::with_capacity(bytes + 16);
    let mut s = 0x243f6a8885a308d3u64;
    while out.len() < bytes {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Square the draw so low indices dominate (Zipf-ish skew).
        let r = ((s >> 33) as f64 / (1u64 << 31) as f64).powi(2);
        let w = VOCAB[(r * VOCAB.len() as f64) as usize % VOCAB.len()];
        out.extend_from_slice(w.as_bytes());
        out.push(b' ');
    }
    out.truncate(bytes);
    out
}

/// Deterministic pseudo-random payload bytes.
pub(crate) fn noise(bytes: usize, seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes + 8);
    let mut s = seed | 1;
    while out.len() < bytes {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&s.to_le_bytes());
    }
    out.truncate(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_index_orders_double_digit_branches_numerically() {
        let mut keys = vec![
            "factors@svd_block_10",
            "factors@svd_block_2",
            "factors@svd_block_0",
            "factors@svd_block_11",
        ];
        keys.sort_by_key(|k| branch_index(k));
        assert_eq!(
            keys,
            vec![
                "factors@svd_block_0",
                "factors@svd_block_2",
                "factors@svd_block_10",
                "factors@svd_block_11",
            ]
        );
        assert_eq!(branch_index("out@merge"), 0);
    }

    #[test]
    fn even_spans_cover_exactly() {
        for (len, n) in [(0usize, 3usize), (10, 3), (16, 4), (17, 4), (100, 8)] {
            let spans = even_spans(len, n);
            assert_eq!(spans.len(), n);
            assert_eq!(spans.first().unwrap().0, 0);
            assert_eq!(spans.last().unwrap().1, len);
            for w in spans.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }
}
