//! Permanent node loss and voluntary live migration on the live
//! cluster runtime, driven by the orchestrator control plane.
//!
//! [`FaultMode::NodeLoss`](crate::FaultMode::NodeLoss) kills one node **permanently**
//! mid-run — no restart, ever — and relies entirely on the two-level
//! orchestrator to heal the cluster: heartbeats stop, the controller
//! (in-process) or the coordinator (TCP) counts the missed beats,
//! declares the node lost, relocates its functions to the
//! least-pressured survivors, re-patches the routing tables and replays
//! the in-flight transfers. The run is validated byte-for-byte against
//! a straight-line reference computation, over both the in-process
//! fabric and the worker-process TCP transport.
//!
//! [`FaultMode::LiveMigration`](crate::FaultMode::LiveMigration) exercises the same rehome machinery
//! voluntarily: a hot function is migrated to the least-pressured node
//! while its payloads are in flight, and the outputs must not diverge
//! by a byte.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dataflower_rt::{
    ByLevel, ClusterConfig, ClusterRtConfig, LinkConfig, PlacementPolicy, RtStats, TcpCluster,
};
use dataflower_workflow::Workflow;

use crate::benchmarks::Benchmark;
use crate::common::run_verified;
use crate::live::live_runtime;
use crate::socket::{launch_bench_cluster, TcpProfile};

/// Runtime tuning of the node-loss scenarios, built through the fluent
/// [`ClusterConfig`] front door: the chaos streaming knobs (4 KiB
/// direct threshold and chunks, 8 KiB checkpoint intervals, 4 MiB/s
/// links) so a kill reliably lands mid-stream, §6.2 recovery with a
/// 50 ms retransmit timeout, and the orchestrator control plane with
/// 10 ms heartbeats and a 3-miss loss threshold. No frame chaos — the
/// scenario isolates the relocation story.
pub(crate) fn orchestrated_rt_config() -> ClusterRtConfig {
    ClusterConfig::new()
        .direct_threshold_bytes(4 * 1024)
        .chunk_bytes(4 * 1024)
        .checkpoint_interval_bytes(8 * 1024)
        .link(LinkConfig {
            bandwidth_bytes_per_sec: Some(4.0 * 1024.0 * 1024.0),
            ..LinkConfig::default()
        })
        .recovery(Duration::from_millis(50))
        .heartbeat(Duration::from_millis(10), 3)
        .build()
}

/// Which transport a node-loss run executes
/// over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLossTransport {
    /// The in-process fabric: one
    /// [`ClusterRuntime`](dataflower_rt::ClusterRuntime), heartbeat
    /// responder threads, a crash that fences the node's data plane.
    Inproc,
    /// One OS process per node over real localhost TCP sockets: the
    /// coordinator pings workers over the control channel, and the kill
    /// is a real `kill -9`.
    Tcp,
}

impl NodeLossTransport {
    fn name(self) -> &'static str {
        match self {
            NodeLossTransport::Inproc => "inproc",
            NodeLossTransport::Tcp => "tcp",
        }
    }
}

/// Parameters of a node-loss or live-migration run.
#[derive(Debug, Clone)]
pub struct NodeLossConfig {
    /// Transport the cluster runs over (live migration is in-process
    /// only and ignores this field).
    pub transport: NodeLossTransport,
    /// Worker nodes in the topology (by-level spread).
    pub nodes: usize,
    /// Concurrent requests to drive through the workflow.
    pub requests: usize,
    /// Client input payload size in bytes.
    pub payload_bytes: usize,
    /// Seed recorded in the worker tag (TCP mode); reserved for fault
    /// plans in-process.
    pub seed: u64,
    /// Per-request completion deadline, node-loss detection and
    /// relocation included.
    pub timeout: Duration,
    /// How long the runner hunts for a kill window with an in-flight
    /// transfer toward the victim before giving up.
    pub kill_deadline: Duration,
}

impl Default for NodeLossConfig {
    /// In-process transport, 3 nodes, 1 request of 256 KiB, seed 7,
    /// 60 s deadline, 20 s kill hunt.
    fn default() -> Self {
        NodeLossConfig {
            transport: NodeLossTransport::Inproc,
            nodes: 3,
            requests: 1,
            payload_bytes: 256 * 1024,
            seed: 7,
            timeout: Duration::from_secs(60),
            kill_deadline: Duration::from_secs(20),
        }
    }
}

/// Outcome of one node-loss (or live-migration) run. Produced by
/// the node-loss and live-migration runners.
#[derive(Debug, Clone)]
pub struct NodeLossReport {
    /// Short benchmark name (`wc`, `vid`, `svd`, `img`).
    pub benchmark: &'static str,
    /// Transport the run executed over (`inproc`, `tcp`).
    pub transport: &'static str,
    /// Worker nodes in the topology.
    pub nodes: usize,
    /// Requests completed (all of them — a failed request panics).
    pub requests: usize,
    /// Wall-clock time from first invoke to last verified result,
    /// loss detection and relocation included.
    pub elapsed: Duration,
    /// Total client-output bytes received, all validated byte-for-byte.
    pub output_bytes: usize,
    /// The node that was killed (or the migration source).
    pub victim: usize,
    /// Functions the control plane moved off the victim.
    pub relocated: u64,
    /// Aggregated runtime counters, including the control-plane story
    /// (`heartbeats`, `heartbeat_misses`, `node_losses`,
    /// `relocated_functions`, `live_migrations`).
    pub stats: RtStats,
}

/// The functions the by-level spread hosts on `victim` — the set whose
/// relocation the scenario asserts.
fn hosted_on(wf: &Workflow, nodes: usize, victim: usize) -> Vec<String> {
    let placement = ByLevel.initial(wf, nodes);
    wf.function_ids()
        .map(|f| wf.function(f).name.clone())
        .filter(|name| placement.node_of(name) == victim)
        .collect()
}

/// The permanent-node-loss runner — dispatches on the transport; the
/// body behind [`WorkloadSpec`](crate::WorkloadSpec) with
/// [`FaultMode::NodeLoss`](crate::FaultMode::NodeLoss).
pub(crate) fn run_node_loss(bench: Benchmark, cfg: &NodeLossConfig) -> NodeLossReport {
    assert!(
        cfg.nodes >= 2,
        "node_loss_relocation needs a surviving node"
    );
    match cfg.transport {
        NodeLossTransport::Inproc => node_loss_inproc(bench, cfg),
        NodeLossTransport::Tcp => node_loss_tcp(bench, cfg),
    }
}

/// The voluntary live-migration runner (in-process only) — the body
/// behind [`WorkloadSpec`](crate::WorkloadSpec) with
/// [`FaultMode::LiveMigration`](crate::FaultMode::LiveMigration).
pub(crate) fn run_live_migration(bench: Benchmark, cfg: &NodeLossConfig) -> NodeLossReport {
    assert!(cfg.nodes >= 2, "live_migration needs a second node");
    let wf = bench.workflow();
    let placement = ByLevel.initial(&wf, cfg.nodes);
    let rt = live_runtime(bench, Arc::clone(&wf), placement, orchestrated_rt_config());
    let from = 1;
    let moved = hosted_on(&wf, cfg.nodes, from);
    let subject = moved.first().expect("level 1 hosts a function").clone();

    let run = run_verified(
        "migration",
        bench,
        cfg.requests,
        cfg.payload_bytes,
        cfg.timeout,
        |name, payload| rt.invoke(vec![(name, payload)]),
        || {
            // Wait for payloads to be in flight toward the subject's
            // node so the move really happens mid-stream.
            let give_up = Instant::now() + cfg.kill_deadline;
            while rt.node(from).inflight_transfers() == 0 && Instant::now() < give_up {
                std::thread::sleep(Duration::from_micros(200));
            }
            let mut to = rt.least_pressured_node();
            if to == from {
                to = (from + 1) % cfg.nodes;
            }
            rt.migrate_function(&subject, to)
                .expect("migrate a known function to a live node");
        },
        |req, timeout| rt.wait(req, timeout),
    );
    let stats = rt.stats();
    assert!(
        stats.live_migrations >= 1,
        "migration {bench}: no live migration was recorded"
    );
    assert_ne!(
        rt.node_of(&subject),
        from,
        "migration {bench}: `{subject}` still routes to its old node"
    );
    let nodes = rt.node_count();
    rt.shutdown();
    NodeLossReport {
        benchmark: bench.name(),
        transport: NodeLossTransport::Inproc.name(),
        nodes,
        requests: run.requests,
        elapsed: run.elapsed,
        output_bytes: run.output_bytes,
        victim: from,
        relocated: stats.live_migrations,
        stats,
    }
}

/// In-process node loss: crash the victim permanently and let the
/// controller thread detect the heartbeat silence and relocate.
fn node_loss_inproc(bench: Benchmark, cfg: &NodeLossConfig) -> NodeLossReport {
    let wf = bench.workflow();
    let placement = ByLevel.initial(&wf, cfg.nodes);
    let rt = live_runtime(bench, Arc::clone(&wf), placement, orchestrated_rt_config());
    // Node 1 hosts the first post-entry level under the by-level
    // spread — the node receiving the large fan-out intermediates, so
    // the kill always lands on checkpoint-marked streams.
    let victim = 1;
    let moved = hosted_on(&wf, cfg.nodes, victim);

    let run = run_verified(
        "node-loss",
        bench,
        cfg.requests,
        cfg.payload_bytes,
        cfg.timeout,
        |name, payload| rt.invoke(vec![(name, payload)]),
        || {
            let give_up = Instant::now() + cfg.kill_deadline;
            loop {
                assert!(
                    Instant::now() < give_up,
                    "node_loss_relocation: no kill window with an in-flight transfer \
                     opened on node {victim} — slow the links or grow the payload"
                );
                if rt.node(victim).inflight_transfers() > 0 {
                    // Permanent: the node is never restarted. Its
                    // heartbeat responder falls silent here, and the
                    // controller does the rest.
                    rt.crash_node(victim);
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        },
        |req, timeout| rt.wait(req, timeout),
    );
    let stats = rt.stats();
    assert!(
        stats.heartbeats > 0,
        "node-loss {bench}: no heartbeats were recorded"
    );
    assert!(
        stats.node_losses >= 1,
        "node-loss {bench}: the controller never declared the loss"
    );
    assert!(
        stats.relocated_functions > 0,
        "node-loss {bench}: nothing was relocated"
    );
    for name in &moved {
        assert_ne!(
            rt.node_of(name),
            victim,
            "node-loss {bench}: `{name}` still routes to the dead node"
        );
    }
    let nodes = rt.node_count();
    rt.shutdown();
    NodeLossReport {
        benchmark: bench.name(),
        transport: NodeLossTransport::Inproc.name(),
        nodes,
        requests: run.requests,
        elapsed: run.elapsed,
        output_bytes: run.output_bytes,
        victim,
        relocated: stats.relocated_functions,
        stats,
    }
}

/// Worker-process node loss: `kill -9` the victim's OS process and let
/// the coordinator's control-channel pings detect the death and
/// broadcast the relocation.
fn node_loss_tcp(bench: Benchmark, cfg: &NodeLossConfig) -> NodeLossReport {
    let wf = bench.workflow();
    let cluster = launch_bench_cluster(bench, cfg.nodes, cfg.seed, TcpProfile::Orchestrated)
        .expect("launch orchestrated TCP cluster");
    let victim = 1;
    let moved = hosted_on(&wf, cfg.nodes, victim);

    let run = run_verified(
        "tcp node-loss",
        bench,
        cfg.requests,
        cfg.payload_bytes,
        cfg.timeout,
        |name, payload| cluster.invoke(vec![(name, payload)]),
        || {
            hunt_kill_permanent(&cluster, victim, cfg.kill_deadline);
        },
        |req, timeout| cluster.wait(req, timeout),
    );
    let stats = cluster.stats();
    assert!(
        stats.node_losses >= 1,
        "tcp node-loss {bench}: the coordinator never declared the loss"
    );
    assert!(
        stats.relocated_functions > 0,
        "tcp node-loss {bench}: no survivor activated a relocated function"
    );
    assert!(
        cluster.worker_lost(victim),
        "tcp node-loss {bench}: the victim is not marked lost"
    );
    for name in &moved {
        assert_ne!(
            cluster.node_of(name),
            victim,
            "tcp node-loss {bench}: `{name}` still routes to the dead worker"
        );
    }
    let nodes = cluster.node_count();
    cluster.shutdown();
    NodeLossReport {
        benchmark: bench.name(),
        transport: NodeLossTransport::Tcp.name(),
        nodes,
        requests: run.requests,
        elapsed: run.elapsed,
        output_bytes: run.output_bytes,
        victim,
        relocated: stats.relocated_functions,
        stats,
    }
}

/// `kill -9`s `victim` once an inbound transfer is in flight toward it,
/// and **never restarts it** — the permanent twin of the chaos hunt.
fn hunt_kill_permanent(cluster: &TcpCluster, victim: usize, deadline: Duration) {
    let give_up = Instant::now() + deadline;
    loop {
        assert!(
            Instant::now() < give_up,
            "node_loss_relocation: no kill window with an in-flight transfer \
             opened on worker {victim} — slow the links or grow the payload"
        );
        if let Some((inflight, _)) = cluster.probe_worker(victim) {
            if inflight > 0 {
                cluster.kill_worker(victim);
                return;
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_survive_permanent_node_loss_inproc() {
        for bench in Benchmark::ALL {
            let cfg = NodeLossConfig {
                payload_bytes: 128 * 1024,
                ..NodeLossConfig::default()
            };
            let report = run_node_loss(bench, &cfg);
            assert_eq!(report.requests, 1);
            assert!(report.output_bytes > 0, "{bench}: empty output");
            assert!(report.relocated > 0);
            assert!(report.stats.heartbeat_misses > 0);
        }
    }

    /// A slow-but-alive cluster must never trip the loss detector: under
    /// real load with tight heartbeats, individual beats may read stale
    /// (misses below the threshold are fine) but no node is ever
    /// declared lost and nothing relocates.
    #[test]
    fn heartbeat_misses_below_threshold_never_relocate() {
        let bench = Benchmark::Wc;
        let wf = bench.workflow();
        let nodes = 3;
        let placement = ByLevel.initial(&wf, nodes);
        // 2 ms beats with a generous threshold: scheduling hiccups under
        // load can stale a read or two, never five in a row.
        let mut cfg = orchestrated_rt_config();
        cfg.heartbeat_interval = Duration::from_millis(2);
        cfg.heartbeat_miss_threshold = 5;
        let rt = live_runtime(bench, Arc::clone(&wf), placement, cfg);
        let (input_name, input) = crate::common::live_input(bench, 128 * 1024);
        let reqs: Vec<_> = (0..3)
            .map(|_| {
                rt.invoke(vec![(
                    input_name.to_owned(),
                    dataflower_rt::Bytes::from(input.clone()),
                )])
            })
            .collect();
        for req in reqs {
            rt.wait(req, Duration::from_secs(60))
                .expect("healthy cluster completes");
        }
        let stats = rt.stats();
        assert!(stats.heartbeats > 0, "the control plane never beat");
        assert_eq!(
            stats.node_losses, 0,
            "a live node was declared lost (false positive)"
        );
        assert_eq!(
            stats.relocated_functions, 0,
            "functions relocated off a live node"
        );
        rt.shutdown();
    }

    /// Killing the same node twice (and re-declaring it lost by hand)
    /// relocates its functions exactly once — the `lost` fence makes the
    /// relocation idempotent.
    #[test]
    fn double_kill_does_not_double_relocate() {
        let bench = Benchmark::Wc;
        let wf = bench.workflow();
        let cfg = NodeLossConfig::default();
        let placement = ByLevel.initial(&wf, cfg.nodes);
        let rt = live_runtime(bench, Arc::clone(&wf), placement, orchestrated_rt_config());
        let victim = 1;
        let moved = hosted_on(&wf, cfg.nodes, victim);
        rt.crash_node(victim);
        let give_up = Instant::now() + Duration::from_secs(10);
        while rt.stats().relocated_functions < moved.len() as u64 && Instant::now() < give_up {
            std::thread::sleep(Duration::from_millis(1));
        }
        let first = rt.stats();
        assert_eq!(first.node_losses, 1);
        assert_eq!(first.relocated_functions, moved.len() as u64);
        // Second kill + manual re-declarations: all no-ops.
        rt.crash_node(victim);
        rt.declare_node_lost(victim);
        rt.declare_node_lost(victim);
        std::thread::sleep(Duration::from_millis(50));
        let second = rt.stats();
        assert_eq!(second.node_losses, 1, "the loss was declared twice");
        assert_eq!(
            second.relocated_functions,
            moved.len() as u64,
            "a second kill relocated again"
        );
        rt.shutdown();
    }

    #[test]
    fn live_migration_is_invisible_in_the_outputs() {
        let cfg = NodeLossConfig {
            payload_bytes: 128 * 1024,
            requests: 2,
            ..NodeLossConfig::default()
        };
        let report = run_live_migration(Benchmark::Svd, &cfg);
        assert_eq!(report.requests, 2);
        assert!(report.output_bytes > 0);
        assert!(report.stats.live_migrations >= 1);
    }
}
