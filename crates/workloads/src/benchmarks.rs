//! The four best-practice serverless workflow benchmarks of §9.1:
//! Video-FFmpeg (*vid*), ML-based Image Processing (*img*), Singular
//! Value Decomposition (*svd*) and WordCount (*wc*).
//!
//! Each benchmark is a [`Workflow`] whose DAG shape follows the original
//! application and whose work/size coefficients are calibrated so that,
//! under the centralized control-flow orchestrator, the per-benchmark
//! communication share of end-to-end time matches Fig. 2a
//! (img ≈ 26 %, vid ≈ 49.5 %, svd ≈ 35.3 %, wc ≈ 89.2 %). The
//! calibration is asserted by `tests/calibration.rs`.

use std::sync::Arc;

use dataflower_workflow::{SizeModel, WorkModel, Workflow, WorkflowBuilder, KB, MB};

/// One of the paper's four benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// ML-based image processing: a compute-heavy six-stage pipeline.
    Img,
    /// Video-FFmpeg: split → parallel transcode → merge, data-heavy.
    Vid,
    /// Singular value decomposition over matrix blocks.
    Svd,
    /// WordCount: FOREACH fan-out with tiny compute, communication-bound.
    Wc,
}

impl Benchmark {
    /// All four benchmarks in the paper's figure order.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::Img,
        Benchmark::Vid,
        Benchmark::Svd,
        Benchmark::Wc,
    ];

    /// The short name used throughout the figures.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Img => "img",
            Benchmark::Vid => "vid",
            Benchmark::Svd => "svd",
            Benchmark::Wc => "wc",
        }
    }

    /// Builds the benchmark's workflow with its default parameters.
    pub fn workflow(&self) -> Arc<Workflow> {
        match self {
            Benchmark::Img => image_pipeline(),
            Benchmark::Vid => video_ffmpeg(4),
            Benchmark::Svd => svd(8),
            Benchmark::Wc => wordcount(WcParams::default()),
        }
    }

    /// Default request payload in bytes.
    pub fn default_payload(&self) -> f64 {
        match self {
            Benchmark::Img => 900.0 * KB,
            Benchmark::Vid => 8.0 * MB,
            Benchmark::Svd => 6.0 * MB,
            Benchmark::Wc => WcParams::default().input_mb * MB,
        }
    }

    /// The open-loop request rates (rpm) swept in Fig. 10, matching the
    /// paper's x-axes.
    pub fn fig10_rpms(&self) -> &'static [f64] {
        match self {
            Benchmark::Img => &[10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0],
            Benchmark::Vid => &[4.0, 8.0, 12.0, 16.0, 20.0, 40.0, 80.0],
            Benchmark::Svd => &[10.0, 20.0, 40.0, 60.0, 80.0, 100.0],
            Benchmark::Wc => &[10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0],
        }
    }

    /// The closed-loop client counts swept in Fig. 11.
    pub fn fig11_clients(&self) -> &'static [usize] {
        match self {
            Benchmark::Img => &[1, 2, 4, 6, 8, 10, 11],
            Benchmark::Vid => &[1, 2, 4, 8, 16, 24, 32, 36],
            Benchmark::Svd => &[1, 2, 4, 8, 12, 16, 20, 24],
            Benchmark::Wc => &[1, 2, 4, 8, 16, 20, 24],
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of the WordCount benchmark (swept in Figs. 16 and 17).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WcParams {
    /// Number of FOREACH count branches.
    pub fan_out: usize,
    /// Input text size in MiB.
    pub input_mb: f64,
}

impl Default for WcParams {
    /// 4 branches over 1 MiB of text (the Fig. 10/11 operating point; the
    /// Fig. 16 sweeps use 4 MiB explicitly).
    fn default() -> Self {
        WcParams {
            fan_out: 4,
            input_mb: 1.0,
        }
    }
}

/// WordCount (Fig. 7's running example): `start` splits the text into
/// `fan_out` files, each `count_k` counts words, `merge` folds the count
/// tables.
///
/// # Panics
///
/// Panics if `fan_out` is zero.
pub fn wordcount(params: WcParams) -> Arc<Workflow> {
    assert!(params.fan_out > 0, "wordcount needs at least one branch");
    let n = params.fan_out;
    let input = params.input_mb * MB;
    let mut b = WorkflowBuilder::new("wc");
    // Splitting is nearly free; counting is a single pass; merging is a
    // hash-fold over small tables. Communication dominates by design.
    let start = b.function("wc_start", WorkModel::new(0.001, 0.0006));
    let merge = b.function("wc_merge", WorkModel::new(0.001, 0.002));
    b.client_input(start, "text", SizeModel::Fixed(input));
    for i in 0..n {
        let count = b.function(format!("wc_count_{i}"), WorkModel::new(0.0005, 0.0035));
        b.edge(
            start,
            count,
            "file",
            SizeModel::ScaleOfInput(1.0 / n as f64),
        );
        b.edge(count, merge, "count", SizeModel::ScaleOfInput(0.30));
    }
    b.client_output(merge, "output", SizeModel::Fixed(8.0 * KB));
    Arc::new(b.build().expect("wordcount workflow is valid"))
}

/// ML-based image processing: extract → resize → classify → detect →
/// blur → render, a compute-dominated pipeline with modest intermediate
/// data (per §9.3, "the intermediate data between functions in img is
/// small").
pub fn image_pipeline() -> Arc<Workflow> {
    let mut b = WorkflowBuilder::new("img");
    let extract = b.function("img_extract", WorkModel::new(0.012, 0.008));
    let resize = b.function("img_resize", WorkModel::new(0.015, 0.012));
    let classify = b.function("img_classify", WorkModel::new(0.120, 0.020));
    let detect = b.function("img_detect", WorkModel::new(0.065, 0.015));
    let blur = b.function("img_blur", WorkModel::new(0.030, 0.015));
    let render = b.function("img_render", WorkModel::new(0.018, 0.008));
    b.client_input(extract, "image", SizeModel::ScaleOfInput(1.0));
    b.edge(extract, resize, "raw", SizeModel::ScaleOfInput(1.0));
    b.edge(resize, classify, "scaled", SizeModel::ScaleOfInput(0.55));
    b.edge(resize, detect, "scaled2", SizeModel::ScaleOfInput(0.55));
    b.edge(
        classify,
        blur,
        "labels",
        SizeModel::Affine {
            fixed: 24.0 * KB,
            factor: 0.0,
        },
    );
    b.edge(
        detect,
        blur,
        "boxes",
        SizeModel::Affine {
            fixed: 32.0 * KB,
            factor: 0.1,
        },
    );
    b.edge(blur, render, "blurred", SizeModel::ScaleOfInput(0.8));
    b.client_output(render, "final", SizeModel::ScaleOfInput(0.6));
    Arc::new(b.build().expect("img workflow is valid"))
}

/// Video-FFmpeg: `split` cuts the video into `branches` chunks, each
/// `transcode_k` re-encodes one chunk, `merge` concatenates. Data-heavy:
/// the chunks are as large as the input.
///
/// # Panics
///
/// Panics if `branches` is zero.
pub fn video_ffmpeg(branches: usize) -> Arc<Workflow> {
    assert!(branches > 0, "vid needs at least one transcode branch");
    let mut b = WorkflowBuilder::new("vid");
    let split = b.function("vid_split", WorkModel::new(0.010, 0.012));
    let merge = b.function("vid_merge", WorkModel::new(0.010, 0.014));
    b.client_input(split, "video", SizeModel::ScaleOfInput(1.0));
    for i in 0..branches {
        let transcode = b.function(format!("vid_transcode_{i}"), WorkModel::new(0.020, 0.085));
        b.edge(
            split,
            transcode,
            "chunk",
            SizeModel::ScaleOfInput(1.0 / branches as f64),
        );
        b.edge(transcode, merge, "encoded", SizeModel::ScaleOfInput(0.85));
    }
    b.client_output(merge, "video_out", SizeModel::ScaleOfInput(0.85));
    Arc::new(b.build().expect("vid workflow is valid"))
}

/// Singular value decomposition: `partition` tiles the matrix into
/// `blocks`, each `block_svd_k` factorizes one tile, `compose` assembles
/// the factors.
///
/// # Panics
///
/// Panics if `blocks` is zero.
pub fn svd(blocks: usize) -> Arc<Workflow> {
    assert!(blocks > 0, "svd needs at least one block");
    let mut b = WorkflowBuilder::new("svd");
    let partition = b.function("svd_partition", WorkModel::new(0.008, 0.010));
    let compose = b.function("svd_compose", WorkModel::new(0.012, 0.022));
    b.client_input(partition, "matrix", SizeModel::ScaleOfInput(1.0));
    for i in 0..blocks {
        let block = b.function(format!("svd_block_{i}"), WorkModel::new(0.015, 0.135));
        b.edge(
            partition,
            block,
            "tile",
            SizeModel::ScaleOfInput(1.0 / blocks as f64),
        );
        b.edge(block, compose, "factors", SizeModel::ScaleOfInput(0.60));
    }
    b.client_output(compose, "usv", SizeModel::ScaleOfInput(0.4));
    Arc::new(b.build().expect("svd workflow is valid"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_applications() {
        assert_eq!(
            wordcount(WcParams {
                fan_out: 4,
                input_mb: 4.0
            })
            .function_count(),
            6
        );
        assert_eq!(image_pipeline().function_count(), 6);
        assert_eq!(video_ffmpeg(4).function_count(), 6);
        assert_eq!(svd(8).function_count(), 10);
    }

    #[test]
    fn all_benchmarks_build_and_name() {
        for b in Benchmark::ALL {
            let wf = b.workflow();
            assert_eq!(wf.name(), b.name());
            assert!(b.default_payload() > 0.0);
            assert!(!b.fig10_rpms().is_empty());
            assert!(!b.fig11_clients().is_empty());
        }
    }

    #[test]
    fn wc_fan_out_is_parametric() {
        for n in [2, 8, 16] {
            let wf = wordcount(WcParams {
                fan_out: n,
                input_mb: 4.0,
            });
            assert_eq!(wf.function_count(), n + 2);
            let start = wf.function_by_name("wc_start").unwrap();
            assert_eq!(wf.successors(start).len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn zero_fanout_rejected() {
        wordcount(WcParams {
            fan_out: 0,
            input_mb: 1.0,
        });
    }
}
