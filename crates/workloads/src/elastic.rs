//! Elastic-scaling scenarios on the live cluster runtime: open-loop
//! bursts and Zipf-skewed fan-outs that exercise the pressure-aware
//! autoscaler end to end.
//!
//! Both scenarios run **live** — real threads, real bytes, shaped
//! inter-node links — with the runtime's [`AutoscaleConfig`] enabled, and
//! validate every output byte-for-byte against a straight-line reference
//! computation: scaling that loses, duplicates or reorders data makes the
//! runner panic, not a data point. The per-function scaling history comes
//! back as a [`dataflower_metrics::Timeline`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use dataflower_metrics::Timeline;
use dataflower_rt::{
    AutoscaleConfig, ByLevel, Bytes, ClusterRtConfig, ClusterRuntime, ClusterRuntimeBuilder,
    LinkConfig, LoadAware, PlacementPolicy, RtConfig, RtStats, ScaleEvent,
};
use dataflower_workflow::{SizeModel, WorkModel, Workflow, WorkflowBuilder};

use crate::benchmarks::Benchmark;
use crate::common::{branch_ordered, live_input, noise, reference_output};
use crate::live::live_runtime;

/// Runtime tuning shared by the elastic scenarios: short DLU and fabric
/// queues behind an 8 MiB/s shaped fabric (so a burst visibly backs the
/// DLUs up instead of hiding in channel buffers), and an aggressive
/// autoscaler (1–3 replicas, 2 ms pressure threshold, a conservative
/// 2 MiB/s drain-bandwidth estimate, 30 ms cool-down, 1 ms sampling).
pub(crate) fn elastic_rt_config() -> ClusterRtConfig {
    ClusterRtConfig {
        rt: RtConfig {
            dlu_queue_capacity: 8,
            ..RtConfig::default()
        },
        link: LinkConfig {
            bandwidth_bytes_per_sec: Some(8.0 * 1024.0 * 1024.0),
            queue_capacity: 4,
            ..LinkConfig::default()
        },
        autoscale: AutoscaleConfig {
            enabled: true,
            min_replicas: 1,
            max_replicas: 3,
            pressure_threshold_secs: 0.002,
            drain_bw_bytes_per_sec: 2.0 * 1024.0 * 1024.0,
            cooldown: Duration::from_millis(30),
            sample_interval: Duration::from_millis(1),
            ..AutoscaleConfig::default()
        },
        ..ClusterRtConfig::default()
    }
}

/// Parameters of a warmed-up burst run
/// ([`WorkloadSpec::warmup`](crate::WorkloadSpec::warmup) plus a
/// request burst).
#[derive(Debug, Clone)]
pub struct BurstyClusterConfig {
    /// Worker nodes in the topology (by-level spread).
    pub nodes: usize,
    /// Sequential warm-up requests before the burst (the paper's base
    /// rate, Fig. 15's first minute shrunk to a trickle).
    pub base_requests: usize,
    /// Requests fired concurrently as the burst.
    pub burst_requests: usize,
    /// Client input payload size in bytes.
    pub payload_bytes: usize,
    /// Runtime tuning; the default pairs shaped links with an enabled,
    /// aggressive autoscaler (see the module docs).
    pub rt: ClusterRtConfig,
    /// Per-request completion deadline.
    pub timeout: Duration,
    /// How long to keep the drained runtime alive waiting for the
    /// cool-down-guarded scale-in before giving up.
    pub settle: Duration,
}

impl Default for BurstyClusterConfig {
    /// 3 nodes, 2 warm-up requests, a 12-request burst of 192 KiB each,
    /// elastic runtime knobs, 60 s deadline, 5 s settle window.
    fn default() -> Self {
        BurstyClusterConfig {
            nodes: 3,
            base_requests: 2,
            burst_requests: 12,
            payload_bytes: 192 * 1024,
            rt: elastic_rt_config(),
            timeout: Duration::from_secs(60),
            settle: Duration::from_secs(5),
        }
    }
}

/// Parameters of a Zipf-skewed fan-out run
/// ([`WorkloadSpec::skewed_fanout`](crate::WorkloadSpec::skewed_fanout)).
#[derive(Debug, Clone)]
pub struct SkewedFanoutConfig {
    /// Worker nodes; functions are placed with the [`LoadAware`] policy
    /// over the modeled branch costs.
    pub nodes: usize,
    /// Fan-out branches of the split.
    pub branches: usize,
    /// Zipf exponent of the shard-size skew: branch *i* receives a share
    /// proportional to `(i+1)^-s`. Zero means even shards.
    pub zipf_exponent: f64,
    /// Concurrent requests to drive through the workflow.
    pub requests: usize,
    /// Client input payload size in bytes.
    pub payload_bytes: usize,
    /// Runtime tuning; same elastic default as [`BurstyClusterConfig`].
    pub rt: ClusterRtConfig,
    /// Per-request completion deadline.
    pub timeout: Duration,
}

impl Default for SkewedFanoutConfig {
    /// 3 nodes, 8 branches with a 1.2 Zipf exponent, 6 concurrent
    /// requests of 256 KiB, elastic runtime knobs, 60 s deadline.
    fn default() -> Self {
        SkewedFanoutConfig {
            nodes: 3,
            branches: 8,
            zipf_exponent: 1.2,
            requests: 6,
            payload_bytes: 256 * 1024,
            rt: elastic_rt_config(),
            timeout: Duration::from_secs(60),
        }
    }
}

/// Outcome of an elastic scenario: the usual live counters plus the
/// scaling story.
#[derive(Debug, Clone)]
pub struct ElasticReport {
    /// Scenario identifier, e.g. `bursty_cluster/wc`.
    pub scenario: String,
    /// Worker nodes in the topology.
    pub nodes: usize,
    /// Requests completed (all of them — a failed request panics).
    pub requests: usize,
    /// Wall-clock time from first invoke to last validated result.
    pub elapsed: Duration,
    /// Total client-output bytes received.
    pub output_bytes: usize,
    /// Aggregated runtime counters, including scale-event counts.
    pub stats: RtStats,
    /// Every scale event, in time order.
    pub events: Vec<ScaleEvent>,
    /// Per-function replica counts over time.
    pub timeline: Timeline,
}

impl ElasticReport {
    /// Scale-outs the autoscaler performed.
    pub fn scale_outs(&self) -> u64 {
        self.stats.scale_out_events
    }

    /// Scale-ins the autoscaler performed.
    pub fn scale_ins(&self) -> u64 {
        self.stats.scale_in_events
    }

    /// Largest replica count any function reached.
    pub fn peak_replicas(&self) -> usize {
        self.timeline
            .keys()
            .map(|k| self.timeline.max_value(k) as usize)
            .max()
            .unwrap_or(0)
    }
}

/// The warmed-up burst runner — the body behind
/// [`WorkloadSpec`](crate::WorkloadSpec) with a non-zero warm-up.
pub(crate) fn run_bursty_cluster(bench: Benchmark, cfg: &BurstyClusterConfig) -> ElasticReport {
    let wf = bench.workflow();
    let placement = ByLevel.initial(&wf, cfg.nodes);
    let rt = live_runtime(bench, Arc::clone(&wf), placement, cfg.rt.clone());
    let (input_name, input) = live_input(bench, cfg.payload_bytes);
    let expected = reference_output(bench, &input);
    let input = Bytes::from(input);

    let t0 = Instant::now();
    let mut output_bytes = 0;
    // Warm-up trickle: sequential, so the pools stay at minimum.
    for _ in 0..cfg.base_requests {
        output_bytes += validate_one(
            &rt,
            rt.invoke(vec![(input_name.to_owned(), input.clone())]),
            cfg.timeout,
            &expected,
            "bursty_cluster warm-up",
        );
    }
    // The burst: everything at once.
    let reqs: Vec<_> = (0..cfg.burst_requests.max(1))
        .map(|_| rt.invoke(vec![(input_name.to_owned(), input.clone())]))
        .collect();
    let requests = cfg.base_requests + reqs.len();
    for req in reqs {
        output_bytes += validate_one(&rt, req, cfg.timeout, &expected, "bursty_cluster burst");
    }
    let elapsed = t0.elapsed();

    // Drained: hold the runtime open until the cool-down-guarded
    // scale-in fires (or the settle window closes).
    let settle_deadline = Instant::now() + cfg.settle;
    while rt.stats().scale_in_events == 0 && Instant::now() < settle_deadline {
        std::thread::sleep(Duration::from_millis(2));
    }

    finish_report(
        rt,
        format!("bursty_cluster/{}", bench.name()),
        cfg.nodes,
        requests,
        elapsed,
        output_bytes,
    )
}

/// The Zipf-skewed fan-out runner — the body behind
/// [`WorkloadSpec::skewed_fanout`](crate::WorkloadSpec::skewed_fanout).
pub(crate) fn run_skewed_fanout(cfg: &SkewedFanoutConfig) -> ElasticReport {
    assert!(cfg.branches > 0, "skewed fan-out needs at least one branch");
    let shares = zipf_shares(cfg.branches, cfg.zipf_exponent);
    let wf = skewed_workflow(&shares);
    let placement = LoadAware::idle().initial(&wf, cfg.nodes);

    let mut builder = ClusterRuntimeBuilder::new(Arc::clone(&wf))
        .placement(placement)
        .config(cfg.rt.clone());
    let split_shares = shares.clone();
    builder = builder.register("skew_split", move |ctx| {
        let blob = ctx.input("blob").expect("client blob").clone();
        for (i, (lo, hi)) in zipf_spans(blob.len(), &split_shares)
            .into_iter()
            .enumerate()
        {
            ctx.put_to(
                "shard",
                format!("skew_work_{i}"),
                Bytes::copy_from_slice(&blob[lo..hi]),
            );
        }
    });
    for i in 0..cfg.branches {
        builder = builder.register(format!("skew_work_{i}"), move |ctx| {
            let shard = ctx.input("shard").expect("shard");
            ctx.put("piece", Bytes::from(skew_transform(shard, i)));
        });
    }
    let rt = builder
        .register("skew_merge", |ctx| {
            let joined: Vec<u8> = branch_ordered(ctx, "piece")
                .into_iter()
                .flat_map(|b| b.iter().copied())
                .collect();
            ctx.put("joined", Bytes::from(joined));
        })
        .start()
        .expect("skewed fan-out bodies cover the DAG");

    let input = noise(cfg.payload_bytes, 0x5ca1_ab1e);
    let expected: Vec<u8> = zipf_spans(input.len(), &shares)
        .into_iter()
        .enumerate()
        .flat_map(|(i, (lo, hi))| skew_transform(&input[lo..hi], i))
        .collect();
    let input = Bytes::from(input);

    let t0 = Instant::now();
    let reqs: Vec<_> = (0..cfg.requests.max(1))
        .map(|_| rt.invoke(vec![("blob".to_owned(), input.clone())]))
        .collect();
    let requests = reqs.len();
    let mut output_bytes = 0;
    for req in reqs {
        output_bytes += validate_one(&rt, req, cfg.timeout, &expected, "skewed_fanout");
    }
    let elapsed = t0.elapsed();

    finish_report(
        rt,
        format!("skewed_fanout/{}branches", cfg.branches),
        cfg.nodes,
        requests,
        elapsed,
        output_bytes,
    )
}

/// Waits for one request and asserts its single output equals `expected`.
fn validate_one(
    rt: &ClusterRuntime,
    req: dataflower_rt::ReqId,
    timeout: Duration,
    expected: &[u8],
    what: &str,
) -> usize {
    let outputs = rt
        .wait(req, timeout)
        .unwrap_or_else(|e| panic!("{what} request failed: {e}"));
    assert_eq!(outputs.len(), 1, "{what}: expected one client output");
    assert_eq!(
        &*outputs[0].1, expected,
        "{what} output diverged from the reference computation"
    );
    outputs[0].1.len()
}

/// Collects the scaling story and tears the runtime down.
fn finish_report(
    rt: ClusterRuntime,
    scenario: String,
    nodes: usize,
    requests: usize,
    elapsed: Duration,
    output_bytes: usize,
) -> ElasticReport {
    let stats = rt.stats();
    let events = rt.scaling_timeline();
    let timeline = rt.replica_timeline();
    rt.shutdown();
    ElasticReport {
        scenario,
        nodes,
        requests,
        elapsed,
        output_bytes,
        stats,
        events,
        timeline,
    }
}

/// The skewed fan-out workflow: `skew_split` → `skew_work_i` →
/// `skew_merge`, with each worker's modeled cost proportional to its
/// Zipf share so the [`LoadAware`] policy sees the skew.
fn skewed_workflow(shares: &[f64]) -> Arc<Workflow> {
    let mut b = WorkflowBuilder::new("skewed_fanout");
    let split = b.function("skew_split", WorkModel::fixed(0.001));
    let merge = b.function("skew_merge", WorkModel::fixed(0.001));
    b.client_input(split, "blob", SizeModel::Fixed(256.0 * 1024.0));
    for (i, share) in shares.iter().enumerate() {
        let work = b.function(format!("skew_work_{i}"), WorkModel::new(0.0, *share));
        b.edge(split, work, "shard", SizeModel::ScaleOfInput(*share));
        b.edge(work, merge, "piece", SizeModel::ScaleOfInput(1.0));
    }
    b.client_output(merge, "joined", SizeModel::ScaleOfInput(1.0));
    Arc::new(b.build().expect("skewed fan-out DAG is valid"))
}

/// Normalized Zipf shares: branch `i` gets weight `(i+1)^-s`.
fn zipf_shares(branches: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..branches).map(|i| ((i + 1) as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / total).collect()
}

/// Cuts `len` bytes into one contiguous span per share, boundaries at the
/// rounded cumulative shares — covering `0..len` exactly.
fn zipf_spans(len: usize, shares: &[f64]) -> Vec<(usize, usize)> {
    let mut spans = Vec::with_capacity(shares.len());
    let mut cum = 0.0;
    let mut lo = 0;
    for (i, share) in shares.iter().enumerate() {
        cum += share;
        let hi = if i + 1 == shares.len() {
            len // immune to cumulative rounding drift
        } else {
            ((cum * len as f64).round() as usize).clamp(lo, len)
        };
        spans.push((lo, hi));
        lo = hi;
    }
    spans
}

/// The deterministic per-branch shard transform both the workers and the
/// straight-line reference apply.
fn skew_transform(shard: &[u8], branch: usize) -> Vec<u8> {
    let salt = (branch as u8).wrapping_mul(29).wrapping_add(11);
    shard
        .iter()
        .map(|b| b.wrapping_mul(167).wrapping_add(salt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_spans_cover_exactly_and_skew_downward() {
        for (len, n, s) in [(0usize, 3usize, 1.0f64), (10, 3, 1.2), (100_000, 8, 1.2)] {
            let shares = zipf_shares(n, s);
            assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            let spans = zipf_spans(len, &shares);
            assert_eq!(spans.len(), n);
            assert_eq!(spans.first().unwrap().0, 0);
            assert_eq!(spans.last().unwrap().1, len);
            for w in spans.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            // Head branch carries at least as much as the tail branch.
            let head = spans[0].1 - spans[0].0;
            let tail = spans[n - 1].1 - spans[n - 1].0;
            assert!(head >= tail, "zipf head {head} < tail {tail}");
        }
    }

    #[test]
    fn bursty_cluster_scales_out_and_back_in_with_identical_bytes() {
        let report = run_bursty_cluster(Benchmark::Wc, &BurstyClusterConfig::default());
        assert_eq!(report.requests, 14);
        assert!(report.output_bytes > 0);
        assert!(
            report.scale_outs() >= 1,
            "the burst must trigger at least one scale-out"
        );
        assert!(
            report.scale_ins() >= 1,
            "the drained pools must trigger at least one scale-in"
        );
        assert!(report.peak_replicas() >= 2);
        // Events arrive in time order and stay inside the bounds.
        assert!(report.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(report
            .events
            .iter()
            .all(|e| (1..=3).contains(&e.to_replicas)));
    }

    #[test]
    fn skewed_fanout_reproduces_reference_bytes_across_nodes() {
        let report = run_skewed_fanout(&SkewedFanoutConfig::default());
        assert_eq!(report.requests, 6);
        assert!(report.output_bytes > 0);
        assert!(
            report.stats.remote_bytes > 0,
            "load-aware placement must spread the skewed branches"
        );
    }

    #[test]
    fn skewed_fanout_single_branch_degenerates_cleanly() {
        let cfg = SkewedFanoutConfig {
            branches: 1,
            requests: 1,
            payload_bytes: 32 * 1024,
            ..SkewedFanoutConfig::default()
        };
        let report = run_skewed_fanout(&cfg);
        assert_eq!(report.requests, 1);
        assert_eq!(report.output_bytes, 32 * 1024);
    }
}
