//! Sim↔live differential fuzzing over seeded random workflow DAGs.
//!
//! Each seed deterministically generates a layered random workflow
//! (1–3 functions per layer, 2–4 layers, forward edges only, transfer
//! sizes straddling the §7 pipe thresholds), runs it on a real
//! multi-node [`ClusterRuntime`](dataflower_rt::ClusterRuntime) with
//! trace recording on, then replays the recorded trace through the
//! *simulated* engine and diffs the two timelines
//! ([`dataflower_rt::trace`]). A healthy implementation produces **zero
//! divergences** on every seed: invocations, §7 pipe choices and
//! streaming chunk/checkpoint-mark counts are pure functions of the
//! workflow, the placement and the transfer sizes, so sim and live must
//! agree exactly.
//!
//! Function bodies are digest-chained: every payload's first 8 bytes
//! carry a little-endian FNV-folded digest of the producing function and
//! its inputs, and the expected client outputs are computed by mirroring
//! the same fold over the DAG — so each run is also checked
//! byte-for-byte end to end, independent of the trace.
//!
//! A failing seed dumps its trace to `seed-N.dftrace` in the configured
//! dump directory; `bench fuzz --seed N --dump-dir d` reproduces it in
//! one command.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use dataflower_rt::trace::{bytes_per_event, decode_trace, diff, encode_trace, replay, TraceEvent};
use dataflower_rt::{Bytes, ClusterRuntimeBuilder, Placement};
use dataflower_sim::SimRng;
use dataflower_workflow::{
    Endpoint, SizeModel, WorkModel, Workflow, WorkflowBuilder, WorkflowSpec,
};

/// Transfer-size buckets of the generator, chosen to straddle the §7
/// decision points: well under the 16 KiB direct-socket threshold, one
/// byte either side of it, and remote-pipe sizes spanning one to several
/// chunks and checkpoint intervals.
const SIZE_BUCKETS: [f64; 8] = [
    64.0, 2048.0, 16383.0, 16384.0, 20000.0, 65536.0, 150000.0, 300000.0,
];

/// One differential-fuzz campaign: which seeds to run and where to dump
/// failing traces.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of consecutive seeds to run.
    pub seeds: u64,
    /// First seed of the range.
    pub start_seed: u64,
    /// Directory failing traces are dumped into as `seed-N.dftrace`
    /// (`None` disables dumping).
    pub dump_dir: Option<PathBuf>,
    /// Per-request completion deadline of each live run.
    pub timeout: Duration,
    /// Whole-seed watchdog deadline: a seed whose worker thread produces
    /// no verdict within this window is reported as **hung** (and its
    /// thread abandoned) instead of wedging the campaign. `None` derives
    /// a generous bound from `timeout` (enough for every request plus
    /// teardown and replay).
    pub seed_deadline: Option<Duration>,
}

impl FuzzConfig {
    /// The effective per-seed watchdog deadline.
    fn effective_seed_deadline(&self) -> Duration {
        self.seed_deadline
            .unwrap_or_else(|| self.timeout.saturating_mul(6) + Duration::from_secs(30))
    }
}

impl Default for FuzzConfig {
    /// 64 seeds from 0, no dump directory, 30 s per-request deadline.
    fn default() -> Self {
        FuzzConfig {
            seeds: 64,
            start_seed: 0,
            dump_dir: None,
            timeout: Duration::from_secs(30),
            seed_deadline: None,
        }
    }
}

/// One seed that failed the differential check.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The failing seed.
    pub seed: u64,
    /// Human-readable description: the first divergence, or the
    /// byte-identity mismatch.
    pub what: String,
    /// Where the failing trace was dumped, if a dump directory was set.
    pub trace_path: Option<PathBuf>,
    /// True when the seed never produced a verdict before the watchdog
    /// deadline — a wedged run, distinct from a divergence.
    pub hung: bool,
}

/// Outcome of a [`run_diff_fuzz`] campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seeds executed.
    pub seeds_run: u64,
    /// Live requests driven across all seeds.
    pub requests: u64,
    /// Trace events recorded across all seeds.
    pub events: u64,
    /// Mean encoded bytes per event (Meta preambles excluded), averaged
    /// over every recorded trace.
    pub bytes_per_event: f64,
    /// Every seed that diverged or failed byte identity.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether every seed passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// 64-bit FNV-1a over a byte string — the digest primitive of the
/// chained payloads.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic payload of `size` bytes: the digest little-endian in
/// the first 8 bytes, then an xorshift stream seeded by it. The receiver
/// reads the digest back from the prefix; the tail makes full-content
/// byte-identity checks meaningful.
fn make_payload(digest: u64, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    out.extend_from_slice(&digest.to_le_bytes());
    let mut x = digest | 1;
    while out.len() < size {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(size);
    out
}

/// The digest carried in a payload's first 8 bytes (0 for a short or
/// missing payload — chained into the fold, so corruption still shows
/// up at the client outputs).
fn read_digest(payload: &[u8]) -> u64 {
    payload
        .get(..8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
        .unwrap_or(0)
}

/// The deterministic random DAG of one fuzz seed, in the *canonical*
/// spec-compiled form (client inputs first, then per-function outputs),
/// so live edge indices match what [`replay`] derives from the embedded
/// spec. No switches: the live runtime and the simulator resolve them
/// differently by design, so they are outside the deterministic core
/// this fuzz target compares.
pub fn random_workflow(seed: u64) -> Arc<Workflow> {
    let mut rng = SimRng::seed_from(seed ^ 0xD1FF_0000_0000_F022);
    let mut b = WorkflowBuilder::new(format!("fuzz-{seed}"));
    let layers = 2 + rng.index(3); // 2–4 layers
    let mut by_layer: Vec<Vec<(dataflower_workflow::FnId, String)>> = Vec::new();
    let mut data = 0u32;
    let next_data = |data: &mut u32| {
        let name = format!("d{data}");
        *data += 1;
        name
    };
    for l in 0..layers {
        let count = 1 + rng.index(3); // 1–3 functions
        let mut layer = Vec::with_capacity(count);
        for i in 0..count {
            let name = format!("f{l}_{i}");
            let f = b.function(&name, WorkModel::fixed(0.0005));
            layer.push((f, name));
        }
        by_layer.push(layer);
    }
    // Client inputs: every layer-0 function gets one.
    for (f, _) in &by_layer[0] {
        b.client_input(
            *f,
            next_data(&mut data),
            SizeModel::Fixed(SIZE_BUCKETS[rng.index(SIZE_BUCKETS.len())]),
        );
    }
    // Forward bipartite wiring with both-side coverage: every function
    // below the top has at least one input, every function above the
    // bottom at least one output, plus random extra edges.
    for l in 1..layers {
        let (prev, cur) = {
            let (a, c) = by_layer.split_at(l);
            (&a[l - 1], &c[0])
        };
        let mut has_out = vec![false; prev.len()];
        for (f, _) in cur {
            let p = rng.index(prev.len());
            has_out[p] = true;
            b.edge(
                prev[p].0,
                *f,
                next_data(&mut data),
                SizeModel::Fixed(SIZE_BUCKETS[rng.index(SIZE_BUCKETS.len())]),
            );
            // Occasional second input from another producer.
            if prev.len() > 1 && rng.chance(0.4) {
                let q = (p + 1 + rng.index(prev.len() - 1)) % prev.len();
                has_out[q] = true;
                b.edge(
                    prev[q].0,
                    *f,
                    next_data(&mut data),
                    SizeModel::Fixed(SIZE_BUCKETS[rng.index(SIZE_BUCKETS.len())]),
                );
            }
        }
        for (p, covered) in has_out.iter().enumerate() {
            if !covered {
                let t = rng.index(cur.len());
                b.edge(
                    prev[p].0,
                    cur[t].0,
                    next_data(&mut data),
                    SizeModel::Fixed(SIZE_BUCKETS[rng.index(SIZE_BUCKETS.len())]),
                );
            }
        }
    }
    // Client outputs: every last-layer function reports one.
    for (f, _) in by_layer.last().expect("at least two layers") {
        b.client_output(
            *f,
            next_data(&mut data),
            SizeModel::Fixed(SIZE_BUCKETS[rng.index(SIZE_BUCKETS.len())]),
        );
    }
    let wf = b.build().expect("generated DAG is well-formed");
    // Canonicalize through the spec round-trip (identity on edge
    // *content*, canonical on edge *order*).
    Arc::new(
        WorkflowSpec::from_workflow(&wf)
            .compile()
            .expect("spec round-trip compiles"),
    )
}

/// The expected client outputs of one request of `wf`, computed by
/// mirroring the digest fold the live bodies perform — sorted by data
/// name for order-independent comparison.
fn expected_outputs(wf: &Workflow) -> Vec<(String, Vec<u8>)> {
    let mut fn_digest = vec![0u64; wf.function_count()];
    for &f in wf.topo_order().iter() {
        let mut d = fnv(&wf.function(f).name);
        for eid in wf.inputs(f) {
            let e = wf.edge(*eid);
            d ^= match e.source {
                Endpoint::Client => client_digest(&e.data_name),
                Endpoint::Function(src) => payload_digest(fn_digest[src.index()], &e.data_name),
            };
        }
        fn_digest[f.index()] = d;
    }
    let mut out: Vec<(String, Vec<u8>)> = wf
        .client_outputs()
        .map(|eid| {
            let e = wf.edge(eid);
            let Endpoint::Function(src) = e.source else {
                panic!("client output must come from a function");
            };
            let d = payload_digest(fn_digest[src.index()], &e.data_name);
            (
                e.data_name.clone(),
                make_payload(d, e.size.bytes(0.0) as usize),
            )
        })
        .collect();
    out.sort();
    out
}

fn client_digest(data_name: &str) -> u64 {
    fnv(data_name) ^ 0xC11E_57D1_6E57_0001
}

fn payload_digest(fn_digest: u64, data_name: &str) -> u64 {
    fn_digest ^ fnv(data_name)
}

/// Runs one seed: generate, run live with tracing, check byte identity,
/// replay, diff. Returns the recorded trace and the failure description,
/// if any.
fn run_seed(seed: u64, timeout: Duration) -> (Vec<TraceEvent>, u64, Option<String>) {
    let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF022);
    let wf = random_workflow(seed);
    let nodes = 2 + rng.index(3); // 2–4 nodes
    let mut placement = Placement::with_nodes(nodes);
    for f in wf.function_ids() {
        placement = placement.assign(&wf.function(f).name, rng.index(nodes));
    }

    let mut builder = ClusterRuntimeBuilder::new(Arc::clone(&wf))
        .placement(placement)
        .record_trace(true);
    for f in wf.function_ids() {
        let name = wf.function(f).name.clone();
        let inputs: Vec<String> = wf
            .inputs(f)
            .iter()
            .map(|eid| wf.edge(*eid).data_name.clone())
            .collect();
        let outs: Vec<(String, usize)> = wf
            .outputs(f)
            .iter()
            .map(|eid| {
                let e = wf.edge(*eid);
                (e.data_name.clone(), e.size.bytes(0.0) as usize)
            })
            .collect();
        let base = fnv(&name);
        builder = builder.register(name, move |ctx| {
            let mut d = base;
            for input in &inputs {
                d ^= ctx.input(input).map(|b| read_digest(b)).unwrap_or(0);
            }
            for (out, size) in &outs {
                ctx.put(
                    out.clone(),
                    Bytes::from(make_payload(payload_digest(d, out), *size)),
                );
            }
        });
    }
    let rt = builder.start().expect("fuzz bodies cover the DAG");

    let client_inputs: Vec<(String, Bytes)> = wf
        .client_inputs()
        .map(|eid| {
            let e = wf.edge(eid);
            let d = client_digest(&e.data_name);
            (
                e.data_name.clone(),
                Bytes::from(make_payload(d, e.size.bytes(0.0) as usize)),
            )
        })
        .collect();
    let expected = {
        // Client-input digests enter each consumer's fold through the
        // payload prefix, which `client_digest` already models.
        let mut want = expected_outputs(&wf);
        for (_, payload) in &mut want {
            payload.shrink_to_fit();
        }
        want
    };

    let requests = 2 + rng.index(3); // 2–5 requests
    let mut failure = None;
    for r in 0..requests {
        let req = rt.invoke(client_inputs.clone());
        match rt.wait(req, timeout) {
            Ok(mut got) => {
                got.sort_by(|a, b| a.0.cmp(&b.0));
                let got: Vec<(String, Vec<u8>)> =
                    got.into_iter().map(|(n, b)| (n, b.to_vec())).collect();
                if got != expected && failure.is_none() {
                    failure = Some(format!(
                        "seed {seed} request {r}: client outputs diverge from the digest chain"
                    ));
                }
            }
            Err(e) => {
                if failure.is_none() {
                    failure = Some(format!("seed {seed} request {r}: {e}"));
                }
            }
        }
    }
    // Read the trace only after teardown: a sibling branch off the
    // critical path can still be shipping (and recording) when the last
    // `wait` returns, and a short live snapshot would diff as a missing
    // event. Decoding the on-disk bytes also round-trips the codec on
    // every seed.
    let bytes = rt.shutdown_into_trace().expect("tracing was enabled");
    let live = decode_trace(&bytes).expect("self-recorded trace decodes");

    if failure.is_none() {
        match replay(&live) {
            Ok(sim) => {
                if let Some(d) = diff(&live, &sim) {
                    failure = Some(format!("seed {seed}: {d}"));
                }
            }
            Err(e) => failure = Some(format!("seed {seed}: replay failed: {e}")),
        }
    }
    (live, requests as u64, failure)
}

/// Runs the differential-fuzz campaign: for every seed in the range,
/// generate → run live → byte-identity check → replay → diff. Failing
/// seeds are collected (and their traces dumped when a dump directory is
/// configured); the campaign never panics on a divergence — gate on
/// [`FuzzReport::passed`].
///
/// Each seed runs on a watchdog-supervised worker thread: a seed that
/// wedges (a runtime deadlock, a shutdown that never returns) is
/// reported as a hung [`FuzzFailure`] after
/// [`FuzzConfig::seed_deadline`] and its thread abandoned, so the
/// campaign — and the `bench fuzz` exit code — always arrives.
pub fn run_diff_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    run_campaign(cfg, run_seed)
}

/// A per-seed verdict function; indirected so the watchdog path is
/// testable with a runner that deliberately never returns.
type SeedRunner = fn(u64, Duration) -> (Vec<TraceEvent>, u64, Option<String>);

/// Runs one seed under the watchdog: `None` means the runner produced no
/// verdict within `deadline` and its thread was abandoned.
fn run_seed_watched(
    seed: u64,
    timeout: Duration,
    deadline: Duration,
    runner: SeedRunner,
) -> Option<(Vec<TraceEvent>, u64, Option<String>)> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::Builder::new()
        .name(format!("fuzz-seed-{seed}"))
        .spawn(move || {
            let _ = tx.send(runner(seed, timeout));
        })
        .expect("spawn fuzz seed thread");
    rx.recv_timeout(deadline).ok()
}

fn run_campaign(cfg: &FuzzConfig, runner: SeedRunner) -> FuzzReport {
    let deadline = cfg.effective_seed_deadline();
    let mut failures = Vec::new();
    let mut events = 0u64;
    let mut requests = 0u64;
    let mut bpe_sum = 0.0;
    let mut bpe_count = 0u64;
    for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        let Some((live, reqs, failure)) = run_seed_watched(seed, cfg.timeout, deadline, runner)
        else {
            failures.push(FuzzFailure {
                seed,
                what: format!(
                    "hung: no verdict within {:.1}s; worker thread abandoned",
                    deadline.as_secs_f64()
                ),
                trace_path: None,
                hung: true,
            });
            continue;
        };
        events += live.len() as u64;
        requests += reqs;
        let bpe = bytes_per_event(&live);
        if bpe > 0.0 {
            bpe_sum += bpe;
            bpe_count += 1;
        }
        if let Some(what) = failure {
            let trace_path = cfg.dump_dir.as_ref().and_then(|dir| {
                let path = dir.join(format!("seed-{seed}.dftrace"));
                std::fs::create_dir_all(dir).ok()?;
                std::fs::write(&path, encode_trace(&live)).ok()?;
                Some(path)
            });
            failures.push(FuzzFailure {
                seed,
                what,
                trace_path,
                hung: false,
            });
        }
    }
    FuzzReport {
        seeds_run: cfg.seeds,
        requests,
        events,
        bytes_per_event: if bpe_count == 0 {
            0.0
        } else {
            bpe_sum / bpe_count as f64
        },
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_switch_free() {
        for seed in [0u64, 1, 17, 42] {
            let a = random_workflow(seed);
            let b = random_workflow(seed);
            assert_eq!(
                WorkflowSpec::from_workflow(&a).to_json(),
                WorkflowSpec::from_workflow(&b).to_json(),
                "seed {seed} must regenerate identically"
            );
            assert!(a.function_count() >= 2);
        }
    }

    #[test]
    fn payloads_carry_their_digest() {
        let p = make_payload(0xDEAD_BEEF, 300);
        assert_eq!(p.len(), 300);
        assert_eq!(read_digest(&p), 0xDEAD_BEEF);
        assert_eq!(p, make_payload(0xDEAD_BEEF, 300));
    }

    #[test]
    fn small_seed_batch_has_zero_divergences() {
        let report = run_diff_fuzz(&FuzzConfig {
            seeds: 6,
            start_seed: 0,
            dump_dir: None,
            timeout: Duration::from_secs(30),
            seed_deadline: None,
        });
        assert!(
            report.passed(),
            "differential fuzz failed: {:?}",
            report.failures
        );
        assert!(report.events > 0);
        assert!(report.bytes_per_event > 0.0 && report.bytes_per_event < 20.0);
    }

    /// Pins the watchdog: a seed whose runner never returns is reported
    /// as a named hung failure and the campaign still completes — it
    /// must never wedge waiting on the seed thread.
    #[test]
    fn hung_seed_is_reported_not_wedged() {
        fn runner(seed: u64, _timeout: Duration) -> (Vec<TraceEvent>, u64, Option<String>) {
            if seed == 1 {
                // A deliberate wedge; the watchdog abandons this thread
                // and the process exit reaps it.
                std::thread::sleep(Duration::from_secs(3600));
            }
            (Vec::new(), 1, None)
        }
        let cfg = FuzzConfig {
            seeds: 3,
            start_seed: 0,
            dump_dir: None,
            timeout: Duration::from_millis(10),
            seed_deadline: Some(Duration::from_millis(200)),
        };
        let started = std::time::Instant::now();
        let report = run_campaign(&cfg, runner);
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "campaign wedged behind the hung seed"
        );
        assert_eq!(report.seeds_run, 3);
        assert_eq!(report.requests, 2, "the two healthy seeds still ran");
        assert!(!report.passed());
        let [f] = report.failures.as_slice() else {
            panic!("expected exactly the hung seed, got {:?}", report.failures);
        };
        assert_eq!(f.seed, 1);
        assert!(f.hung);
        assert!(
            f.what.contains("hung"),
            "failure must name the wedge: {}",
            f.what
        );
    }
}
