//! The open-loop drive loop: paces a precomputed arrival schedule
//! against the wall clock, pushes every admitted request through a live
//! cluster, and folds completions into latency histograms and p50/p99/
//! p999 timelines.
//!
//! One dispatcher thread owns all randomness (tenant draws come from a
//! seeded [`SimRng`], arrival instants from a precomputed
//! [`ArrivalProcess`](super::ArrivalProcess) schedule) so the offered
//! load is bit-reproducible; a small pool of waiter threads retrieves
//! results and records latency **from the scheduled arrival instant**,
//! not the invoke instant — the coordinated-omission-aware measurement:
//! if the runtime falls behind, the queueing delay shows up in the tail
//! instead of silently vanishing.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use dataflower_metrics::{Histogram, QuantileTimeline, Timeline};
use dataflower_rt::channel::{self, Receiver, Sender};
use dataflower_rt::{
    AdmissionConfig, AdmissionGate, Bytes, ClusterRuntime, PlacementPolicy, Rejected, ReqId,
    RtStats, TcpCluster, TenantStats,
};
use dataflower_sim::SimRng;

use crate::common::{live_input, reference_output};
use crate::live::live_runtime;
use crate::socket::{launch_bench_cluster, TcpProfile};
use crate::spec::Transport;

use super::{ArrivalProcess, LoadgenCell, ZipfSampler};

/// One backend cluster serving a single benchmark, behind an admission
/// gate. The in-process runtime gates natively via
/// [`ClusterRuntime::try_invoke`]; the TCP cluster is fronted by a
/// client-side [`AdmissionGate`] (its coordinator has no reject path of
/// its own).
#[allow(clippy::large_enum_variant)] // a handful per cell, never collected in bulk
enum Target {
    Inproc(ClusterRuntime),
    Tcp {
        cluster: TcpCluster,
        gate: AdmissionGate,
    },
}

impl Target {
    fn try_invoke(&self, tenant: &str, inputs: Vec<(String, Bytes)>) -> Result<ReqId, Rejected> {
        match self {
            Target::Inproc(rt) => rt.try_invoke(tenant, inputs),
            Target::Tcp { cluster, gate } => {
                gate.try_admit(tenant)?;
                let req = cluster.invoke(inputs);
                gate.bind(req.id(), tenant);
                Ok(req)
            }
        }
    }

    /// Waits for `req` and releases its admission slot either way.
    fn wait(&self, req: ReqId, timeout: Duration) -> Result<Vec<(String, Bytes)>, String> {
        match self {
            Target::Inproc(rt) => match rt.wait(req, timeout) {
                Ok(outputs) => Ok(outputs), // wait's success path released the slot
                Err(e) => {
                    rt.forget(req); // drops request state and releases the slot
                    Err(e.to_string())
                }
            },
            Target::Tcp { cluster, gate } => {
                let out = cluster.wait(req, timeout);
                gate.finish(req.id(), out.is_ok());
                out.map_err(|e| e.to_string())
            }
        }
    }

    fn tenant_stats(&self) -> Vec<(String, TenantStats)> {
        match self {
            Target::Inproc(rt) => rt.tenant_stats(),
            Target::Tcp { gate, .. } => gate.tenant_stats(),
        }
    }

    fn stats(&self) -> RtStats {
        match self {
            Target::Inproc(rt) => rt.stats(),
            Target::Tcp { cluster, .. } => cluster.stats(),
        }
    }

    fn node_count(&self) -> usize {
        match self {
            Target::Inproc(rt) => rt.node_count(),
            Target::Tcp { cluster, .. } => cluster.node_count(),
        }
    }

    fn shutdown(self) {
        match self {
            Target::Inproc(rt) => rt.shutdown(),
            Target::Tcp { cluster, .. } => cluster.shutdown(),
        }
    }
}

/// Latency accounting of one benchmark's stream within a cell.
struct BenchTally {
    latency: Histogram,
    completed: u64,
    failed: u64,
    output_bytes: u64,
    /// Completions slower than the configured p99 SLO (0 without one).
    slo_violations: u64,
    /// First completion is verified byte-for-byte against the reference;
    /// the rest are length-checked (comparing 10⁶ payloads would turn
    /// the harness into a memcmp benchmark).
    verified: bool,
}

struct Shared {
    timeline: QuantileTimeline,
    tallies: Vec<BenchTally>,
    /// SLO violations per tenant index (empty without an SLO).
    tenant_violations: Vec<u64>,
}

/// A dispatched request travelling from the dispatcher to a waiter.
struct Job {
    bench: usize,
    /// Tenant index the arrival was drawn for (SLO attribution).
    tenant: usize,
    req: ReqId,
    /// Scheduled arrival offset (seconds since run start).
    scheduled: f64,
}

/// Aggregate of one benchmark's stream in a [`CellReport`].
#[derive(Debug, Clone)]
pub struct BenchLoad {
    /// Benchmark short name.
    pub benchmark: &'static str,
    /// Tenants whose home benchmark this is (with ≥ 1 arrival).
    pub tenants: usize,
    /// Arrivals offered to this stream.
    pub offered: u64,
    /// Arrivals admitted through the gate.
    pub admitted: u64,
    /// Arrivals rejected at the gate.
    pub rejected: u64,
    /// Admitted requests completing with verified output.
    pub completed: u64,
    /// Admitted requests that timed out or failed.
    pub failed: u64,
    /// Median latency in seconds (scheduled arrival → result in hand).
    pub p50: f64,
    /// 99th-percentile latency in seconds.
    pub p99: f64,
    /// 99.9th-percentile latency in seconds.
    pub p999: f64,
    /// Mean latency in seconds.
    pub mean: f64,
    /// Worst observed latency in seconds.
    pub max: f64,
    /// Completions slower than the traffic spec's p99 SLO (0 when no
    /// SLO is configured).
    pub slo_violations: u64,
}

/// Everything one load cell produced: per-benchmark latency tables, the
/// p50/p99/p999 timeline, admission totals and the fairness index.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Cell label from the config.
    pub label: String,
    /// Transport name (`inproc` / `tcp`).
    pub transport: &'static str,
    /// Worker nodes per benchmark cluster.
    pub nodes: usize,
    /// Tenants configured in the traffic spec.
    pub tenants: usize,
    /// Total arrivals offered (the configured request count).
    pub offered: u64,
    /// Arrivals admitted through the gates.
    pub admitted: u64,
    /// Arrivals rejected at the gates.
    pub rejected: u64,
    /// Admitted requests that completed with verified output.
    pub completed: u64,
    /// Admitted requests that timed out or failed.
    pub failed: u64,
    /// Wall-clock duration from first arrival to last retrieval.
    pub elapsed: Duration,
    /// The configured offered rate (requests/second).
    pub offered_rate: f64,
    /// Completions per second actually achieved.
    pub achieved_rps: f64,
    /// Jain's fairness index over per-tenant success ratios
    /// (`completed / offered`, tenants with ≥ 1 arrival). 1.0 = perfectly
    /// fair; `1/n` = one tenant got everything.
    pub fairness: f64,
    /// Total verified client-output bytes.
    pub output_bytes: u64,
    /// Per-benchmark latency and admission breakdown.
    pub per_bench: Vec<BenchLoad>,
    /// Windowed `p50`/`p99`/`p999`/`rate` series over the run.
    pub timeline: Timeline,
    /// Merged runtime counters across the benchmark clusters.
    pub stats: RtStats,
    /// Per-tenant admission counters (merged across clusters), sorted by
    /// tenant name.
    pub tenant_stats: Vec<(String, TenantStats)>,
    /// The configured p99 latency SLO in seconds, if any.
    pub slo_p99: Option<f64>,
    /// Per-tenant SLO violation counts, sorted by tenant name — only
    /// tenants with at least one violation appear. Empty without an SLO.
    pub slo_violations: Vec<(String, u64)>,
}

impl CellReport {
    /// Total SLO violations across tenants (0 without an SLO).
    pub fn slo_violation_total(&self) -> u64 {
        self.slo_violations.iter().map(|(_, n)| n).sum()
    }

    /// Rejected arrivals as a fraction of offered arrivals.
    pub fn reject_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }

    /// Whole-cell latency quantile in seconds (merged across benchmarks)
    /// — `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        // Completions are weighted by count when merging, so recomputing
        // from per-bench quantiles would be wrong; the merged histogram
        // is rebuilt from the per-bench ones instead. BenchLoad keeps
        // only the digest, so approximate with a completion-weighted
        // mean of per-bench quantiles — exact when one benchmark runs.
        let total: u64 = self.per_bench.iter().map(|b| b.completed).sum();
        if total == 0 {
            return 0.0;
        }
        self.per_bench
            .iter()
            .map(|b| {
                let v = if q >= 0.999 {
                    b.p999
                } else if q >= 0.99 {
                    b.p99
                } else {
                    b.p50
                };
                v * b.completed as f64 / total as f64
            })
            .sum()
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over per-tenant success
/// ratios. An empty slice reports 1.0 (nothing to be unfair about).
fn jain_fairness(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let sum: f64 = ratios.iter().sum();
    let sq: f64 = ratios.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (ratios.len() as f64 * sq)
}

/// Builds one gated backend per benchmark in the cell.
fn build_targets(cell: &LoadgenCell, bench_mix: &ZipfSampler) -> Vec<Target> {
    let spec = &cell.traffic;
    cell.benchmarks
        .iter()
        .enumerate()
        .map(|(i, &bench)| {
            // The total in-flight budget is split across the benchmark
            // clusters in proportion to their Zipf share of the traffic,
            // so the head benchmark is not starved by an even split.
            let total = if spec.max_inflight_total == 0 {
                0
            } else {
                ((spec.max_inflight_total as f64 * bench_mix.share(i)).round() as usize).max(1)
            };
            let admission = AdmissionConfig {
                max_inflight_per_tenant: spec.max_inflight_per_tenant,
                max_inflight_total: total,
            };
            match cell.transport {
                Transport::Inproc => {
                    let wf = bench.workflow();
                    let placement = dataflower_rt::ByLevel.initial(&wf, cell.nodes.max(1));
                    let rt_cfg = dataflower_rt::ClusterRtConfig {
                        admission,
                        ..Default::default()
                    };
                    Target::Inproc(live_runtime(bench, wf, placement, rt_cfg))
                }
                Transport::Tcp => {
                    let cluster = launch_bench_cluster(
                        bench,
                        cell.nodes.max(1),
                        spec.seed ^ i as u64,
                        TcpProfile::Plain,
                    )
                    .expect("loadgen TCP cluster failed to launch");
                    Target::Tcp {
                        cluster,
                        gate: AdmissionGate::new(admission),
                    }
                }
            }
        })
        .collect()
}

/// Runs one load cell to completion and reports it. This is the entry
/// the [`WorkloadSpec`](crate::WorkloadSpec) open-loop path and the
/// bench binary's `loadgen` subcommand share.
///
/// # Panics
///
/// Panics when a completed request's output diverges from the reference
/// computation (first completion per benchmark is compared
/// byte-for-byte, the rest by length) — an open-loop run that corrupts
/// data is a bug, not a data point.
pub fn run_cell(cell: &LoadgenCell) -> CellReport {
    assert!(!cell.benchmarks.is_empty(), "load cell needs a benchmark");
    let spec = &cell.traffic;
    assert!(spec.requests > 0, "load cell needs arrivals");
    assert!(spec.tenants > 0, "load cell needs tenants");

    let bench_mix = ZipfSampler::new(cell.benchmarks.len(), spec.benchmark_zipf);
    let tenant_mix = ZipfSampler::new(spec.tenants, spec.tenant_zipf);
    let arrivals =
        ArrivalProcess::new(spec.arrival, spec.rate_per_sec).schedule(spec.seed, spec.requests);

    // Deterministic tenant → home-benchmark assignment: tenant t always
    // calls the same workflow, drawn from the benchmark mix.
    let mut assign_rng = SimRng::seed_from(spec.seed ^ 0x7e4a_4174_0000_0001);
    let homes: Vec<usize> = (0..spec.tenants)
        .map(|_| bench_mix.sample(&mut assign_rng))
        .collect();
    let tenant_names: Vec<String> = (0..spec.tenants).map(|t| format!("t{t:05}")).collect();

    // Canonical input and reference output per benchmark.
    let inputs: Vec<(&'static str, Bytes)> = cell
        .benchmarks
        .iter()
        .map(|&b| {
            let (name, payload) = live_input(b, cell.payload_bytes);
            (name, Bytes::from(payload))
        })
        .collect();
    let expected: Vec<Vec<u8>> = cell
        .benchmarks
        .iter()
        .zip(&inputs)
        .map(|(&b, (_, payload))| reference_output(b, payload))
        .collect();

    let targets = build_targets(cell, &bench_mix);

    let shared = Mutex::new(Shared {
        timeline: QuantileTimeline::new(spec.window_secs),
        tallies: cell
            .benchmarks
            .iter()
            .map(|_| BenchTally {
                latency: Histogram::new(),
                completed: 0,
                failed: 0,
                output_bytes: 0,
                slo_violations: 0,
                verified: false,
            })
            .collect(),
        tenant_violations: vec![0; spec.tenants],
    });

    let (tx, rx): (Sender<Job>, Receiver<Job>) = channel::unbounded();
    let t0 = Instant::now();

    std::thread::scope(|s| {
        for _ in 0..spec.waiters.max(1) {
            let rx = rx.clone();
            let targets = &targets;
            let shared = &shared;
            let expected = &expected;
            s.spawn(move || {
                while let Ok(job) = rx.recv() {
                    let outcome = targets[job.bench].wait(job.req, cell.timeout);
                    let done = t0.elapsed().as_secs_f64();
                    let mut sh = shared.lock().expect("loadgen metrics lock poisoned");
                    let tally = &mut sh.tallies[job.bench];
                    match outcome {
                        Ok(outputs) => {
                            let want = &expected[job.bench];
                            assert_eq!(outputs.len(), 1, "expected one client output");
                            if tally.verified {
                                assert_eq!(
                                    outputs[0].1.len(),
                                    want.len(),
                                    "loadgen output length diverged from the reference"
                                );
                            } else {
                                assert_eq!(
                                    &*outputs[0].1,
                                    &want[..],
                                    "loadgen output diverged from the reference computation"
                                );
                                tally.verified = true;
                            }
                            tally.completed += 1;
                            tally.output_bytes += outputs[0].1.len() as u64;
                            let latency = (done - job.scheduled).max(0.0);
                            tally.latency.record(latency);
                            if cell.traffic.slo_p99.is_some_and(|slo| latency > slo) {
                                tally.slo_violations += 1;
                                sh.tenant_violations[job.tenant] += 1;
                            }
                            sh.timeline.record(done, latency);
                        }
                        Err(_) => tally.failed += 1,
                    }
                }
            });
        }
        drop(rx);

        // The dispatcher: pace the schedule against the wall clock and
        // draw each arrival's tenant. Rejections are absorbed here —
        // open-loop means the schedule never slows down.
        let mut draw_rng = SimRng::seed_from(spec.seed ^ 0x7e4a_4174_0000_0002);
        for &at in &arrivals {
            loop {
                let now = t0.elapsed().as_secs_f64();
                if now >= at {
                    break;
                }
                let ahead = at - now;
                if ahead > 0.002 {
                    std::thread::sleep(Duration::from_secs_f64(ahead - 0.001));
                } else {
                    std::thread::yield_now();
                }
            }
            let tenant = tenant_mix.sample(&mut draw_rng);
            let bench = homes[tenant];
            let (input_name, payload) = &inputs[bench];
            if let Ok(req) = targets[bench].try_invoke(
                &tenant_names[tenant],
                vec![(input_name.to_string(), payload.clone())],
            ) {
                // Send can only fail if every waiter panicked; propagate.
                let job = Job {
                    bench,
                    tenant,
                    req,
                    scheduled: at,
                };
                if tx.send(job).is_err() {
                    panic!("loadgen waiter pool died");
                }
            }
        }
        drop(tx);
    });

    let elapsed = t0.elapsed();
    let shared = shared.into_inner().expect("loadgen metrics lock poisoned");
    let timeline = shared.timeline.finish(elapsed.as_secs_f64());

    // Merge per-tenant admission counters across the benchmark clusters
    // (each tenant lives on exactly one, so this is a concatenation).
    let mut tenant_stats: Vec<(String, TenantStats)> = Vec::new();
    let mut per_target_tenants: Vec<Vec<(String, TenantStats)>> = Vec::new();
    for target in &targets {
        let ts = target.tenant_stats();
        tenant_stats.extend(ts.iter().cloned());
        per_target_tenants.push(ts);
    }
    tenant_stats.sort_by(|a, b| a.0.cmp(&b.0));

    let ratios: Vec<f64> = tenant_stats
        .iter()
        .filter(|(_, s)| s.admitted + s.rejected > 0)
        .map(|(_, s)| s.completed as f64 / (s.admitted + s.rejected) as f64)
        .collect();
    let fairness = jain_fairness(&ratios);

    let mut per_bench = Vec::with_capacity(cell.benchmarks.len());
    for (i, &bench) in cell.benchmarks.iter().enumerate() {
        let tally = &shared.tallies[i];
        let ts = &per_target_tenants[i];
        let offered: u64 = ts.iter().map(|(_, s)| s.admitted + s.rejected).sum();
        let admitted: u64 = ts.iter().map(|(_, s)| s.admitted).sum();
        let rejected: u64 = ts.iter().map(|(_, s)| s.rejected).sum();
        per_bench.push(BenchLoad {
            benchmark: bench.name(),
            tenants: ts.len(),
            offered,
            admitted,
            rejected,
            completed: tally.completed,
            failed: tally.failed,
            p50: tally.latency.p50(),
            p99: tally.latency.p99(),
            p999: tally.latency.p999(),
            mean: tally.latency.mean(),
            max: tally.latency.max(),
            slo_violations: tally.slo_violations,
        });
    }

    let mut stats = RtStats::default();
    let nodes = targets.first().map(Target::node_count).unwrap_or(0);
    for target in targets {
        stats.merge(&target.stats());
        target.shutdown();
    }

    let offered = spec.requests as u64;
    let admitted: u64 = per_bench.iter().map(|b| b.admitted).sum();
    let rejected: u64 = per_bench.iter().map(|b| b.rejected).sum();
    let completed: u64 = per_bench.iter().map(|b| b.completed).sum();
    let failed: u64 = per_bench.iter().map(|b| b.failed).sum();
    let output_bytes: u64 = per_bench
        .iter()
        .enumerate()
        .map(|(i, _)| shared.tallies[i].output_bytes)
        .sum();

    let slo_violations: Vec<(String, u64)> = shared
        .tenant_violations
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(t, n)| (tenant_names[t].clone(), *n))
        .collect();

    CellReport {
        label: cell.label.clone(),
        transport: cell.transport.name(),
        nodes,
        tenants: spec.tenants,
        offered,
        admitted,
        rejected,
        completed,
        failed,
        elapsed,
        offered_rate: spec.rate_per_sec,
        achieved_rps: if elapsed.as_secs_f64() > 0.0 {
            completed as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        fairness,
        output_bytes,
        per_bench,
        timeline,
        stats,
        tenant_stats,
        slo_p99: cell.traffic.slo_p99,
        slo_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::super::TrafficSpec;
    use super::*;

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert!((jain_fairness(&[0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    /// Per-tenant offered counts (admitted + rejected) of one run. The
    /// offered traffic is a pure function of the seed, so two runs of
    /// the same cell must agree on it exactly — only completion timing
    /// is allowed to differ.
    fn offered_by_tenant(report: &CellReport) -> Vec<(String, u64)> {
        report
            .tenant_stats
            .iter()
            .map(|(t, s)| (t.clone(), s.admitted + s.rejected))
            .collect()
    }

    #[test]
    fn slo_violations_are_tallied_per_tenant_and_per_benchmark() {
        // An impossible 0-second SLO makes every completion a violation,
        // so the per-tenant and per-benchmark tallies must both sum to
        // the completion count exactly.
        let cell = LoadgenCell {
            nodes: 1,
            traffic: TrafficSpec {
                requests: 200,
                rate_per_sec: 2_000.0,
                tenants: 4,
                waiters: 2,
                slo_p99: Some(0.0),
                ..TrafficSpec::default()
            },
            ..LoadgenCell::default()
        };
        let report = run_cell(&cell);
        assert!(report.completed > 0, "nothing completed");
        assert_eq!(report.slo_p99, Some(0.0));
        assert_eq!(report.slo_violation_total(), report.completed);
        let per_bench: u64 = report.per_bench.iter().map(|b| b.slo_violations).sum();
        assert_eq!(per_bench, report.completed);
        assert!(!report.slo_violations.is_empty());

        // Without an SLO nothing is tallied.
        let mut no_slo = cell;
        no_slo.traffic.slo_p99 = None;
        let report = run_cell(&no_slo);
        assert_eq!(report.slo_p99, None);
        assert!(report.slo_violations.is_empty());
        assert!(report.per_bench.iter().all(|b| b.slo_violations == 0));
    }

    #[test]
    fn small_cell_is_seed_deterministic_and_tracks_the_tenant_mix() {
        let cell = LoadgenCell {
            nodes: 1,
            traffic: TrafficSpec {
                requests: 2_000,
                rate_per_sec: 4_000.0,
                tenants: 5,
                tenant_zipf: 1.0,
                waiters: 2,
                ..TrafficSpec::default()
            },
            ..LoadgenCell::default()
        };
        let a = run_cell(&cell);
        let b = run_cell(&cell);

        assert_eq!(a.offered, 2_000);
        assert_eq!(a.completed + a.failed, a.admitted);
        assert!(a.completed > 0, "nothing completed");
        assert_eq!(offered_by_tenant(&a), offered_by_tenant(&b));

        // The head tenant's share of the offered load tracks its Zipf
        // weight (2 000 draws put the binomial σ at ~0.011, so ±0.05 is
        // a five-sigma envelope, not flakiness budget).
        let mix = ZipfSampler::new(5, 1.0);
        let head = a
            .tenant_stats
            .iter()
            .find(|(t, _)| t == "t00000")
            .map(|(_, s)| s.admitted + s.rejected)
            .unwrap_or(0);
        let got = head as f64 / a.offered as f64;
        assert!(
            (got - mix.share(0)).abs() < 0.05,
            "head tenant offered share {got:.3}, zipf share {:.3}",
            mix.share(0)
        );
    }
}
