//! Seeded arrival processes and Zipf samplers — the deterministic core
//! of the load generator.
//!
//! Everything random about a load run (arrival instants, which tenant
//! fires, which benchmark a tenant calls home) is drawn here from a
//! [`SimRng`] seeded by the traffic spec, so two runs of the same spec
//! offer the *identical* request sequence — only the service times
//! differ. The property tests pin this down.

use dataflower_sim::SimRng;

/// The shape of the inter-arrival distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Exponential gaps — a Poisson process (the paper's §9.1 open-loop
    /// invocation pattern).
    Poisson,
    /// Gaps drawn uniformly from `[0, 2/rate]` — same mean rate, bounded
    /// burstiness.
    Uniform,
}

/// A seeded open-loop arrival process at a fixed mean rate.
///
/// # Examples
///
/// ```
/// use dataflower_workloads::loadgen::{ArrivalKind, ArrivalProcess};
///
/// let p = ArrivalProcess::new(ArrivalKind::Poisson, 100.0);
/// let a = p.schedule(7, 1000);
/// let b = p.schedule(7, 1000);
/// assert_eq!(a, b); // same seed → identical schedule
/// assert!(a.windows(2).all(|w| w[0] <= w[1]));
/// // Mean rate within 10 % over 1000 arrivals:
/// let rate = 1000.0 / a.last().unwrap();
/// assert!((rate - 100.0).abs() / 100.0 < 0.1, "rate={rate}");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ArrivalProcess {
    kind: ArrivalKind,
    rate_per_sec: f64,
}

impl ArrivalProcess {
    /// An arrival process of the given shape and mean rate.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec` is positive and finite.
    pub fn new(kind: ArrivalKind, rate_per_sec: f64) -> ArrivalProcess {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive"
        );
        ArrivalProcess { kind, rate_per_sec }
    }

    /// The first `count` arrival instants (seconds since the run start,
    /// non-decreasing), drawn deterministically from `seed`.
    pub fn schedule(&self, seed: u64, count: usize) -> Vec<f64> {
        let mut rng = SimRng::seed_from(seed ^ 0xa17e_a150_0e55_0000);
        let mean_gap = 1.0 / self.rate_per_sec;
        let mut at = 0.0;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            at += match self.kind {
                ArrivalKind::Poisson => rng.exp(mean_gap),
                ArrivalKind::Uniform => rng.uniform(0.0, 2.0 * mean_gap),
            };
            out.push(at);
        }
        out
    }
}

/// A seeded sampler over `{0, …, n-1}` with Zipf weights: index `i` is
/// drawn with probability proportional to `(i+1)^-s`. Exponent 0 is
/// uniform; larger exponents concentrate the mass on the low indices —
/// the classic skew of tenant popularity and workflow mix.
///
/// # Examples
///
/// ```
/// use dataflower_sim::SimRng;
/// use dataflower_workloads::loadgen::ZipfSampler;
///
/// let z = ZipfSampler::new(100, 1.1);
/// let mut rng = SimRng::seed_from(3);
/// let mut head = 0;
/// for _ in 0..1000 {
///     if z.sample(&mut rng) == 0 {
///         head += 1;
///     }
/// }
/// // Index 0 holds ~23 % of the mass at s=1.1, n=100.
/// assert!(head > 150, "head={head}");
/// assert!((z.share(0) - 0.234).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative shares; `cdf[i]` is the probability of drawing ≤ i.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` indices with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `s` is not finite.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf sampler needs at least one index");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut cum = 0.0;
        for w in &weights {
            cum += w / total;
            cdf.push(cum);
        }
        cdf[n - 1] = 1.0; // immune to rounding drift
        ZipfSampler { cdf }
    }

    /// Number of indices.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True only for the degenerate empty sampler (never constructible —
    /// present for clippy's `len`-without-`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The probability share of index `i`.
    pub fn share(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draws one index from `rng`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform(0.0, 1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedule_is_seed_deterministic_and_monotone() {
        let p = ArrivalProcess::new(ArrivalKind::Poisson, 500.0);
        let a = p.schedule(1, 10_000);
        let b = p.schedule(1, 10_000);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let c = p.schedule(2, 10_000);
        assert_ne!(a, c, "distinct seeds must draw distinct schedules");
    }

    #[test]
    fn uniform_schedule_tracks_the_mean_rate() {
        let p = ArrivalProcess::new(ArrivalKind::Uniform, 200.0);
        let a = p.schedule(9, 20_000);
        let rate = a.len() as f64 / a.last().unwrap();
        assert!((rate - 200.0).abs() / 200.0 < 0.05, "rate={rate}");
    }

    #[test]
    fn zipf_shares_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(1000, 1.2);
        let sum: f64 = (0..1000).map(|i| z.share(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for i in 1..1000 {
            assert!(z.share(i) <= z.share(i - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        for i in 0..4 {
            assert!((z.share(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_shares_within_tolerance() {
        let z = ZipfSampler::new(8, 1.0);
        let mut rng = SimRng::seed_from(11);
        let n = 200_000;
        let mut counts = [0u64; 8];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let got = count as f64 / n as f64;
            let want = z.share(i);
            assert!(
                (got - want).abs() < 0.01,
                "index {i}: got {got:.4}, want {want:.4}"
            );
        }
    }
}
