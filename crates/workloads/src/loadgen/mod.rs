//! Open-loop, multi-tenant load generation against the live cluster
//! runtime — the million-request harness behind `bench loadgen`.
//!
//! A [`LoadgenConfig`] names a set of [`LoadgenCell`]s; each cell drives
//! one [`TrafficSpec`] (seeded Poisson or uniform arrivals at a fixed
//! rate, thousands of tenants under a Zipf popularity skew, each tenant
//! pinned to a home benchmark drawn from a second Zipf over the workflow
//! mix) against one cluster per benchmark, over the in-process fabric or
//! the worker-process TCP transport. Per-tenant admission caps shed
//! overload at the gate ([`dataflower_rt::AdmissionGate`]); latency is
//! measured from the *scheduled* arrival instant (coordinated-omission-
//! aware) into log-bucketed [`Histogram`](dataflower_metrics::Histogram)s
//! and a windowed p50/p99/p999 [`QuantileTimeline`]
//! [`Timeline`](dataflower_metrics::Timeline); fairness under overload is
//! summarized by Jain's index over per-tenant success ratios.
//!
//! The offered load is bit-reproducible: all randomness derives from the
//! spec's seed, so two runs of the same config offer the identical
//! arrival sequence — the property tests pin this down.
//!
//! [`QuantileTimeline`]: dataflower_metrics::QuantileTimeline
//!
//! # Examples
//!
//! ```
//! use dataflower_workloads::loadgen::{self, LoadgenConfig};
//!
//! let cfg = LoadgenConfig::smoke();
//! let report = loadgen::run(&cfg);
//! let cell = &report.cells[0];
//! assert_eq!(cell.offered, cell.admitted + cell.rejected);
//! assert!(cell.completed > 0 && cell.fairness > 0.0);
//! ```

mod arrival;
mod driver;
mod report;

pub use arrival::{ArrivalKind, ArrivalProcess, ZipfSampler};
pub use driver::{run_cell, BenchLoad, CellReport};
pub use report::{GateRow, LoadgenReport};

use std::time::Duration;

use crate::benchmarks::Benchmark;
use crate::spec::Transport;

/// An open-loop traffic specification: how many arrivals, how fast, how
/// skewed, and how hard the admission gates push back.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Total arrivals to offer (the open-loop schedule length).
    pub requests: usize,
    /// Mean offered rate in requests per second.
    pub rate_per_sec: f64,
    /// Inter-arrival distribution.
    pub arrival: ArrivalKind,
    /// Number of tenants sharing the cluster.
    pub tenants: usize,
    /// Zipf exponent of tenant popularity (0 = uniform).
    pub tenant_zipf: f64,
    /// Zipf exponent of the benchmark mix tenants are assigned to.
    pub benchmark_zipf: f64,
    /// Seed for every random draw (arrivals, tenant picks, assignment).
    pub seed: u64,
    /// Per-tenant in-flight cap at the admission gate (0 = unlimited).
    pub max_inflight_per_tenant: usize,
    /// Total in-flight cap, split across benchmark clusters in
    /// proportion to their traffic share (0 = unlimited).
    pub max_inflight_total: usize,
    /// Width of each latency-timeline window in seconds.
    pub window_secs: f64,
    /// Waiter threads retrieving results.
    pub waiters: usize,
    /// Optional p99 latency SLO in seconds: every completion slower than
    /// this counts as a violation, tallied per tenant and per benchmark
    /// in the [`CellReport`]. `None` disables SLO accounting.
    pub slo_p99: Option<f64>,
}

impl Default for TrafficSpec {
    /// 2 000 Poisson arrivals at 1 000 req/s from 50 Zipf(1.1) tenants,
    /// per-tenant cap 8, total cap 512, 0.5 s windows, 4 waiters, no
    /// latency SLO.
    fn default() -> Self {
        TrafficSpec {
            requests: 2_000,
            rate_per_sec: 1_000.0,
            arrival: ArrivalKind::Poisson,
            tenants: 50,
            tenant_zipf: 1.1,
            benchmark_zipf: 0.8,
            seed: 42,
            max_inflight_per_tenant: 8,
            max_inflight_total: 512,
            window_secs: 0.5,
            waiters: 4,
            slo_p99: None,
        }
    }
}

/// One load cell: a traffic spec aimed at a benchmark mix on a topology
/// and transport. A config's report carries one table per cell.
#[derive(Debug, Clone)]
pub struct LoadgenCell {
    /// Cell label used in reports and baseline entry names.
    pub label: String,
    /// The benchmark mix tenants are assigned across (Zipf-weighted by
    /// [`TrafficSpec::benchmark_zipf`]).
    pub benchmarks: Vec<Benchmark>,
    /// Worker nodes per benchmark cluster.
    pub nodes: usize,
    /// In-process fabric or worker-process TCP.
    pub transport: Transport,
    /// Client payload size in bytes.
    pub payload_bytes: usize,
    /// The offered traffic.
    pub traffic: TrafficSpec,
    /// Per-request retrieval deadline.
    pub timeout: Duration,
}

impl Default for LoadgenCell {
    /// A single-benchmark (wordcount) inproc cell on 2 nodes with 4 KiB
    /// payloads and the default traffic spec.
    fn default() -> Self {
        LoadgenCell {
            label: "wc-inproc".to_string(),
            benchmarks: vec![Benchmark::Wc],
            nodes: 2,
            transport: Transport::Inproc,
            payload_bytes: 4 * 1024,
            traffic: TrafficSpec::default(),
            timeout: Duration::from_secs(30),
        }
    }
}

/// A named set of load cells — what `bench loadgen --config <name>` runs
/// and what one committed `reports/loadgen-<name>.md` documents.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Config name (`smoke`, `soak`, `full`); names the report file and
    /// prefixes baseline entries.
    pub name: &'static str,
    /// The cells to run, in order.
    pub cells: Vec<LoadgenCell>,
}

impl LoadgenConfig {
    /// The tiny PR-gate config: one wordcount cell, 2 000 offered
    /// requests, seconds of wall clock, with a 250 ms p99 SLO so the
    /// violation column is exercised on every push. This is what
    /// `ci.sh` and the workflow's bench-smoke job run.
    pub fn smoke() -> LoadgenConfig {
        LoadgenConfig {
            name: "smoke",
            cells: vec![LoadgenCell {
                label: "wc-inproc".to_string(),
                traffic: TrafficSpec {
                    requests: 2_000,
                    rate_per_sec: 1_000.0,
                    tenants: 50,
                    slo_p99: Some(0.25),
                    ..TrafficSpec::default()
                },
                ..LoadgenCell::default()
            }],
        }
    }

    /// The scheduled-CI soak config: 10⁵ offered requests across the
    /// full four-benchmark mix plus a TCP cell.
    pub fn soak() -> LoadgenConfig {
        LoadgenConfig {
            name: "soak",
            cells: vec![
                LoadgenCell {
                    label: "mix-inproc".to_string(),
                    benchmarks: Benchmark::ALL.to_vec(),
                    nodes: 3,
                    traffic: TrafficSpec {
                        requests: 90_000,
                        rate_per_sec: 4_000.0,
                        tenants: 500,
                        max_inflight_total: 1_024,
                        window_secs: 1.0,
                        waiters: 8,
                        ..TrafficSpec::default()
                    },
                    ..LoadgenCell::default()
                },
                LoadgenCell {
                    label: "wc-tcp".to_string(),
                    transport: Transport::Tcp,
                    nodes: 2,
                    traffic: TrafficSpec {
                        requests: 10_000,
                        rate_per_sec: 1_000.0,
                        tenants: 100,
                        window_secs: 1.0,
                        ..TrafficSpec::default()
                    },
                    ..LoadgenCell::default()
                },
            ],
        }
    }

    /// The full committed-report config: ≥ 10⁶ offered requests — a
    /// sustained four-benchmark multi-tenant cell in the 10⁶ range plus
    /// a TCP cell so the transport column is measured, not assumed.
    pub fn full() -> LoadgenConfig {
        LoadgenConfig {
            name: "full",
            cells: vec![
                LoadgenCell {
                    label: "mix-inproc".to_string(),
                    benchmarks: Benchmark::ALL.to_vec(),
                    nodes: 3,
                    traffic: TrafficSpec {
                        requests: 1_000_000,
                        rate_per_sec: 12_000.0,
                        tenants: 2_000,
                        max_inflight_total: 2_048,
                        window_secs: 2.0,
                        waiters: 8,
                        ..TrafficSpec::default()
                    },
                    ..LoadgenCell::default()
                },
                LoadgenCell {
                    label: "wc-tcp".to_string(),
                    transport: Transport::Tcp,
                    nodes: 2,
                    traffic: TrafficSpec {
                        requests: 20_000,
                        rate_per_sec: 1_500.0,
                        tenants: 200,
                        window_secs: 1.0,
                        waiters: 8,
                        ..TrafficSpec::default()
                    },
                    ..LoadgenCell::default()
                },
            ],
        }
    }

    /// Looks a stock config up by name.
    pub fn by_name(name: &str) -> Option<LoadgenConfig> {
        match name {
            "smoke" => Some(LoadgenConfig::smoke()),
            "soak" => Some(LoadgenConfig::soak()),
            "full" => Some(LoadgenConfig::full()),
            _ => None,
        }
    }
}

/// Runs every cell of `cfg` in order and assembles the report.
pub fn run(cfg: &LoadgenConfig) -> LoadgenReport {
    let cells = cfg.cells.iter().map(run_cell).collect();
    LoadgenReport {
        config: cfg.name.to_string(),
        cells,
    }
}
