//! Experiment runners shared by the figure harness, the examples and the
//! integration tests.

use std::sync::Arc;

use dataflower_cluster::{run, ClusterConfig, ContainerSpec, RunReport, World};
use dataflower_sim::{SimDuration, SimTime};
use dataflower_workflow::Workflow;

use crate::system::SystemKind;

/// A fully specified experiment: cluster, container spec, system, and the
/// workloads to apply.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Cluster layout and timing constants.
    pub cluster: ClusterConfig,
    /// Container spec handed to the engine (Fig. 17 varies this).
    pub container_spec: ContainerSpec,
    /// Margin after the load window before the run is cut off (lets
    /// in-flight requests drain; unfinished ones count as timeouts).
    pub drain: SimDuration,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            cluster: ClusterConfig::default(),
            container_spec: ContainerSpec::default(),
            drain: SimDuration::from_secs(120),
        }
    }
}

impl Scenario {
    /// Scenario with a specific RNG seed.
    pub fn seeded(seed: u64) -> Self {
        Scenario {
            cluster: ClusterConfig::default().with_seed(seed),
            ..Scenario::default()
        }
    }

    /// Runs `system` under an **open-loop** (asynchronous) Poisson load of
    /// `rpm` requests/minute for `duration_secs`, then lets the cluster
    /// drain (§9.1's asynchronous invocation pattern).
    pub fn open_loop(
        &self,
        system: SystemKind,
        wf: Arc<Workflow>,
        payload: f64,
        rpm: f64,
        duration_secs: u64,
    ) -> RunReport {
        let mut world = World::new(self.cluster.clone());
        let id = world.add_workflow(wf);
        world.schedule_open_loop(id, payload, rpm, SimDuration::from_secs(duration_secs));
        let mut engine = system.engine_with_spec(self.container_spec);
        let deadline = SimTime::from_secs(duration_secs) + self.drain;
        run(&mut world, &mut *engine, deadline)
    }

    /// Runs `system` under a **closed-loop** (synchronous) load of
    /// `clients` concurrent clients for `horizon_secs` (§9.1's
    /// synchronous invocation pattern; throughput comes from the report).
    pub fn closed_loop(
        &self,
        system: SystemKind,
        wf: Arc<Workflow>,
        payload: f64,
        clients: usize,
        horizon_secs: u64,
    ) -> RunReport {
        let mut world = World::new(self.cluster.clone());
        let id = world.add_workflow(wf);
        world.spawn_clients(id, payload, clients);
        let mut engine = system.engine_with_spec(self.container_spec);
        run(&mut world, &mut *engine, SimTime::from_secs(horizon_secs))
    }

    /// Runs several workflows side by side, each with its own open-loop
    /// rate (the Fig. 18 co-location setup). `loads` pairs each workflow
    /// with `(payload, rpm)`.
    pub fn colocated(
        &self,
        system: SystemKind,
        loads: &[(Arc<Workflow>, f64, f64)],
        duration_secs: u64,
    ) -> RunReport {
        let mut world = World::new(self.cluster.clone());
        for (wf, payload, rpm) in loads {
            let id = world.add_workflow(Arc::clone(wf));
            world.schedule_open_loop(id, *payload, *rpm, SimDuration::from_secs(duration_secs));
        }
        let mut engine = system.engine_with_spec(self.container_spec);
        let deadline = SimTime::from_secs(duration_secs) + self.drain;
        run(&mut world, &mut *engine, deadline)
    }

    /// The Fig. 15 bursty pattern: `base_rpm` for the first minute, then a
    /// sudden jump to `burst_rpm` for the second minute (110 requests at
    /// the paper's 10→100 rpm operating point).
    pub fn bursty(
        &self,
        system: SystemKind,
        wf: Arc<Workflow>,
        payload: f64,
        base_rpm: f64,
        burst_rpm: f64,
    ) -> RunReport {
        let mut world = World::new(self.cluster.clone());
        let id = world.add_workflow(wf);
        schedule_window(&mut world, id, payload, base_rpm, 0.0, 60.0);
        schedule_window(&mut world, id, payload, burst_rpm, 60.0, 60.0);
        let mut engine = system.engine_with_spec(self.container_spec);
        let deadline = SimTime::from_secs(120) + self.drain;
        run(&mut world, &mut *engine, deadline)
    }
}

/// Schedules a Poisson arrival window starting at `start_s` lasting
/// `dur_s` seconds.
fn schedule_window(
    world: &mut World,
    id: dataflower_cluster::WfId,
    payload: f64,
    rpm: f64,
    start_s: f64,
    dur_s: f64,
) {
    assert!(rpm > 0.0);
    let mut t = start_s;
    loop {
        t += world.rng().exp(60.0 / rpm);
        if t >= start_s + dur_s {
            break;
        }
        world.submit_request(id, payload, SimTime::from_micros((t * 1e6) as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;

    #[test]
    fn open_loop_all_systems_complete_wc() {
        let s = Scenario::seeded(11);
        for sys in SystemKind::HEADLINE {
            let r = s.open_loop(
                sys,
                Benchmark::Wc.workflow(),
                Benchmark::Wc.default_payload(),
                20.0,
                30,
            );
            assert!(r.primary().completed > 0, "{sys} completed none");
            assert_eq!(r.primary().unfinished, 0, "{sys} timed out");
        }
    }

    #[test]
    fn closed_loop_produces_throughput() {
        let s = Scenario::seeded(12);
        let r = s.closed_loop(
            SystemKind::DataFlower,
            Benchmark::Wc.workflow(),
            Benchmark::Wc.default_payload(),
            2,
            60,
        );
        assert!(r.primary().throughput_rpm > 0.0);
    }

    #[test]
    fn colocated_reports_all_workflows() {
        let s = Scenario::seeded(13);
        let loads: Vec<_> = [Benchmark::Img, Benchmark::Wc]
            .iter()
            .map(|b| (b.workflow(), b.default_payload(), 6.0))
            .collect();
        let r = s.colocated(SystemKind::DataFlower, &loads, 30);
        assert_eq!(r.per_workflow.len(), 2);
        assert!(r.workflow("img").is_some());
        assert!(r.workflow("wc").is_some());
    }

    #[test]
    fn bursty_issues_roughly_110_requests() {
        let s = Scenario::seeded(14);
        let r = s.bursty(
            SystemKind::DataFlower,
            Benchmark::Wc.workflow(),
            Benchmark::Wc.default_payload(),
            10.0,
            100.0,
        );
        let total = r.primary().completed + r.primary().unfinished;
        assert!((80..=150).contains(&total), "total={total}");
    }
}
