//! # dataflower-workloads
//!
//! The evaluation workloads of the DataFlower paper (§9.1) and the
//! harness that drives them:
//!
//! * [`Benchmark`] — the four best-practice serverless workflows
//!   (Video-FFmpeg, ML image processing, SVD, WordCount) with
//!   calibrated DAGs, plus parametric builders ([`wordcount`],
//!   [`video_ffmpeg`], [`svd`], [`image_pipeline`]) for the fan-out and
//!   input-size sweeps of Fig. 16;
//! * [`SystemKind`] — a uniform factory over every system under test
//!   (DataFlower, its non-aware ablation, FaaSFlow, SONIC, the
//!   centralized platform and the Fig. 19 state machine);
//! * [`Scenario`] — open-loop, closed-loop, co-located and bursty
//!   experiment runners matching the paper's load patterns, plus
//!   [`Scenario::live_cluster`], which *executes* (rather than
//!   simulates) the four benchmarks on a multi-node
//!   [`ClusterRuntime`](dataflower_rt::ClusterRuntime) with real
//!   threads, real bytes, and the paper's three-way pipe selection, and
//!   the elastic-scaling scenarios [`Scenario::bursty_cluster`] /
//!   [`Scenario::skewed_fanout`], which drive open-loop bursts and
//!   Zipf-skewed fan-outs through the live runtime with the
//!   pressure-aware autoscaler enabled, and the fault-tolerance
//!   scenario [`Scenario::chaos_cluster`], which crashes a node
//!   mid-flight under a seeded fault plan and asserts byte-identical
//!   recovery from the §6.2 checkpoint marks, and its worker-process
//!   twin [`Scenario::chaos_cluster_tcp`], which runs the same contract
//!   with one OS process per node over real localhost TCP sockets and a
//!   `kill -9` as the crash (see [`serve_worker_if_spawned`]), and the
//!   orchestrator scenarios [`Scenario::node_loss_relocation`] (a node
//!   dies **permanently** mid-run; heartbeat silence is detected, its
//!   functions relocate to the least-pressured survivors, and the
//!   outputs stay byte-identical — over both the in-process fabric and
//!   the worker-process TCP transport) and [`Scenario::live_migration`]
//!   (a hot function voluntarily moved mid-stream with zero output
//!   divergence).
//!
//! # Examples
//!
//! ```
//! use dataflower_workloads::{Benchmark, Scenario, SystemKind};
//!
//! let scenario = Scenario::seeded(42);
//! let report = scenario.open_loop(
//!     SystemKind::DataFlower,
//!     Benchmark::Wc.workflow(),
//!     Benchmark::Wc.default_payload(),
//!     20.0, // rpm
//!     30,   // seconds of load
//! );
//! assert!(report.primary().completed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmarks;
mod chaos;
mod common;
mod elastic;
mod harness;
mod live;
mod node_loss;
mod socket;
mod system;

pub use benchmarks::{image_pipeline, svd, video_ffmpeg, wordcount, Benchmark, WcParams};
pub use chaos::{ChaosClusterConfig, ChaosClusterReport};
pub use elastic::{BurstyClusterConfig, ElasticReport, SkewedFanoutConfig};
pub use harness::Scenario;
pub use live::{LiveClusterConfig, LiveClusterReport, LivePlacement};
pub use node_loss::{NodeLossConfig, NodeLossReport, NodeLossTransport};
pub use socket::{bench_input, launch_bench_cluster, serve_worker_if_spawned, TcpProfile};
pub use system::SystemKind;
