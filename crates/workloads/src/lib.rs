//! # dataflower-workloads
//!
//! The evaluation workloads of the DataFlower paper (§9.1) and the
//! harness that drives them:
//!
//! * [`Benchmark`] — the four best-practice serverless workflows
//!   (Video-FFmpeg, ML image processing, SVD, WordCount) with
//!   calibrated DAGs, plus parametric builders ([`wordcount`],
//!   [`video_ffmpeg`], [`svd`], [`image_pipeline`]) for the fan-out and
//!   input-size sweeps of Fig. 16;
//! * [`SystemKind`] — a uniform factory over every system under test
//!   (DataFlower, its non-aware ablation, FaaSFlow, SONIC, the
//!   centralized platform and the Fig. 19 state machine);
//! * [`Scenario`] — the *simulated* open-loop, closed-loop, co-located
//!   and bursty experiment runners matching the paper's load patterns;
//! * [`WorkloadSpec`] — the composable builder over every **live**
//!   scenario: pick a benchmark (or the Zipf-skewed fan-out), a
//!   [`Transport`] (in-process fabric or one OS process per node over
//!   TCP — see [`serve_worker_if_spawned`]), a [`FaultMode`] (seeded
//!   chaos with crash-and-restart, permanent node loss healed by the
//!   orchestrator, voluntary live migration), and a [`Traffic`] shape
//!   (closed-loop bursts, optionally warmed up for the autoscaler, or
//!   the seeded open-loop multi-tenant arrivals of [`loadgen`]) — every
//!   combination validated byte-for-byte against a straight-line
//!   reference computation;
//! * [`loadgen`] — the open-loop load harness behind
//!   [`Traffic::OpenLoop`] and the `bench loadgen` subcommand:
//!   million-request arrival schedules, Zipf tenant and workflow mixes,
//!   per-tenant admission control, p50/p99/p999 latency timelines and
//!   committed markdown run reports.

//!
//! # Examples
//!
//! ```
//! use dataflower_workloads::{Benchmark, Scenario, SystemKind};
//!
//! let scenario = Scenario::seeded(42);
//! let report = scenario.open_loop(
//!     SystemKind::DataFlower,
//!     Benchmark::Wc.workflow(),
//!     Benchmark::Wc.default_payload(),
//!     20.0, // rpm
//!     30,   // seconds of load
//! );
//! assert!(report.primary().completed > 0);
//! ```
//!
//! And live, through the composable spec:
//!
//! ```
//! use dataflower_workloads::{Benchmark, WorkloadSpec};
//!
//! let report = WorkloadSpec::new()
//!     .benchmark(Benchmark::Wc)
//!     .payload_bytes(64 * 1024)
//!     .run();
//! assert!(report.stats.remote_pipe_transfers > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmarks;
mod chaos;
mod common;
mod elastic;
pub mod fuzz;
mod harness;
mod live;
pub mod loadgen;
mod node_loss;
mod socket;
mod spec;
mod system;

pub use benchmarks::{image_pipeline, svd, video_ffmpeg, wordcount, Benchmark, WcParams};
pub use chaos::{ChaosClusterConfig, ChaosClusterReport};
pub use elastic::{BurstyClusterConfig, ElasticReport, SkewedFanoutConfig};
pub use fuzz::{run_diff_fuzz, FuzzConfig, FuzzFailure, FuzzReport};
pub use harness::Scenario;
pub use live::{LiveClusterConfig, LiveClusterReport, LivePlacement};
pub use loadgen::{LoadgenCell, LoadgenConfig, LoadgenReport, TrafficSpec};
pub use node_loss::{NodeLossConfig, NodeLossReport, NodeLossTransport};
pub use socket::{bench_input, launch_bench_cluster, serve_worker_if_spawned, TcpProfile};
pub use spec::{
    FaultMode, ReportDetail, Traffic, Transport, Workload, WorkloadReport, WorkloadSpec,
};
pub use system::SystemKind;
